#!/usr/bin/env python3
"""Validating a synthetic workload generator against its source.

Synthetic workloads are only useful if they match the source in the
dimensions that matter.  This example holds two generators to the paper's
standard using :func:`repro.core.validate.compare_workloads`:

* **GISMO-live**, calibrated from a simulated measurement — should pass;
* the **stored-media baseline** — the classic pre-live GISMO model, which
  must *fail* against a live workload (that failure is the paper's
  central argument for live-specific generation).

Bootstrap confidence intervals (``repro.distributions.fitting.bootstrap_ci``)
are attached to the headline parameters, showing how tight the
calibration actually is.

Run:  python examples/validate_generator.py
"""

from repro import (
    LiveShowScenario,
    LiveWorkloadGenerator,
    ScenarioConfig,
    calibrate_model,
    sanitize_trace,
)
from repro.baselines.stored_media import StoredMediaConfig, StoredMediaGenerator
from repro.core.validate import compare_workloads
from repro.distributions import fit_lognormal
from repro.distributions.fitting import bootstrap_ci
from repro.simulation.population import PopulationConfig
from repro.units import log_display_time


def main() -> None:
    print("== measuring the source workload ==")
    config = ScenarioConfig(days=7.0, mean_session_rate=0.05,
                            population=PopulationConfig(n_clients=20_000))
    measured, _ = sanitize_trace(LiveShowScenario(config).run(seed=404).trace)
    calibration = calibrate_model(measured)
    model = calibration.model

    lengths = log_display_time(measured.duration)
    mu_ci = bootstrap_ci(lengths, lambda s: fit_lognormal(s).mu,
                         n_resamples=100, seed=1)
    sigma_ci = bootstrap_ci(lengths, lambda s: fit_lognormal(s).sigma,
                            n_resamples=100, seed=2)
    print(f"   transfer-length mu    = {mu_ci.point:.4f} "
          f"[{mu_ci.lower:.4f}, {mu_ci.upper:.4f}] (95% bootstrap)")
    print(f"   transfer-length sigma = {sigma_ci.point:.4f} "
          f"[{sigma_ci.lower:.4f}, {sigma_ci.upper:.4f}]")

    print("\n== candidate 1: GISMO-live, calibrated from the source ==")
    synthetic = LiveWorkloadGenerator(model).generate(days=7, seed=405)
    report = compare_workloads(measured, synthetic.trace)
    print("\n".join(report.summary_lines()))
    verdict = report.within(rtol=0.25, ks_max=0.1, corr_min=0.85)
    print(f"   verdict: {'FAITHFUL' if verdict else 'NOT FAITHFUL'}")

    print("\n== candidate 2: stored-media GISMO (the pre-live model) ==")
    stored = StoredMediaGenerator(StoredMediaConfig(
        n_clients=20_000, request_rate=0.08)).generate(days=7, seed=406)
    report = compare_workloads(measured, stored.trace)
    print("\n".join(report.summary_lines()))
    verdict = report.within(rtol=0.25, ks_max=0.1, corr_min=0.85)
    print(f"   verdict: {'FAITHFUL' if verdict else 'NOT FAITHFUL'}")
    print("\nthe stored-media model fails on exactly the axes the paper "
          "identified:\nclient-interest skew, diurnal arrivals, and "
          "stickiness-driven lengths.")


if __name__ == "__main__":
    main()
