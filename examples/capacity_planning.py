#!/usr/bin/env python3
"""Capacity planning for a live streaming server.

The paper's motivating argument (Section 1): for *stored* content an
overloaded server can reject requests and users come back later; for *live*
content a rejection denies the live moment outright.  Accurate workload
characterization therefore feeds capacity planning directly.

This example generates a live workload with GISMO-live, measures its peak
concurrent-transfer demand, then sweeps admission-control limits through
the event-driven replay server, printing the fraction of live requests a
given provisioning level would deny — and when those denials happen (they
concentrate exactly at the moments users most want to watch).

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import LiveWorkloadGenerator, LiveWorkloadModel
from repro.simulation.replay import demand_peak, provisioning_sweep
from repro.units import HOUR


def main() -> None:
    model = LiveWorkloadModel.paper_defaults(mean_session_rate=0.08,
                                             n_clients=30_000)
    workload = LiveWorkloadGenerator(model).generate(days=7, seed=7)
    trace = workload.trace
    peak = demand_peak(trace)

    print(f"workload: {trace.n_transfers} transfers over 7 days, "
          f"peak demand {peak} concurrent transfers")
    print()
    print(f"{'capacity':>10} {'% of peak':>10} {'denied':>10} "
          f"{'denial rate':>12}")

    limits = [max(int(peak * f), 1)
              for f in (0.25, 0.50, 0.75, 0.90, 1.00)]
    sweep = provisioning_sweep(trace, limits)
    for limit, result in sweep:
        print(f"{limit:>10} {limit / peak:>9.0%} "
              f"{result.n_rejected:>10} {result.rejection_rate:>11.2%}")

    # Where do the denials land?  Fold rejected-request times by hour.
    _, half = sweep[1]
    if half.rejected_times:
        hours = (np.asarray(half.rejected_times) % (24 * HOUR)
                 / HOUR).astype(int)
        counts = np.bincount(hours, minlength=24)
        top = np.argsort(counts)[::-1][:3]
        print()
        print("at 50% of peak capacity, denials concentrate at hours "
              + ", ".join(f"{h:02d}:00 ({counts[h]})" for h in sorted(top)))
        print("-> exactly prime time: the audience is denied the live "
              "moments it came for, which is why admission control is not "
              "viable for live content (Section 1).")


if __name__ == "__main__":
    main()
