#!/usr/bin/env python3
"""Parameterizing GISMO-live for a different application: a soccer match.

Section 6 of the paper notes that live-media characteristics "are likely to
depend heavily on the application at hand — e.g., the periodicity observed
in our reality TV application is likely to be very different from that
observed in (say) live feeds associated with a soccer game", and that the
generative processes are easily adjusted.  This example does exactly that:

* the arrival-rate profile is not diurnal but *event-driven* — a huge ramp
  before kickoff, sustained load through each half, a dip at halftime, and
  an exodus at the final whistle;
* viewers are much stickier (they stay for the half), so the transfer
  length lognormal is shifted up;
* sessions hold fewer transfers (one feed; nothing to flip between).

The example generates match-day workloads, characterizes them with the very
same pipeline, and contrasts the fitted variables against the reality-show
defaults.

Run:  python examples/soccer_broadcast.py
"""

import numpy as np

from repro import LiveWorkloadGenerator, LiveWorkloadModel, characterize
from repro.distributions import DiurnalProfile
from repro.units import HOUR, MINUTE


def soccer_rate_profile(mean_rate: float) -> DiurnalProfile:
    """Arrival-rate shape of a 21:00 kickoff match day, in 5-minute bins.

    One "day" of the profile is a match day; generating N days yields N
    match days (a group stage, say).
    """
    bins_per_day = 24 * 12  # 5-minute resolution
    shape = np.full(bins_per_day, 0.02)  # trickle all day

    def slot(hhmm: float) -> int:
        return int(hhmm * 12)

    # Pre-match ramp from 20:15, surging at kickoff 21:00.
    shape[slot(20.25):slot(21.0)] = np.linspace(0.2, 3.0,
                                                slot(21.0) - slot(20.25))
    # First half 21:00-21:45: arrivals keep pouring in (latecomers).
    shape[slot(21.0):slot(21.75)] = 2.0
    # Halftime 21:45-22:00: small re-join bump at the restart.
    shape[slot(21.75):slot(22.0)] = 0.8
    # Second half 22:00-22:45, tense finish boosts late arrivals.
    shape[slot(22.0):slot(22.75)] = 2.4
    # Final whistle: the audience leaves; almost no new arrivals.
    shape[slot(22.75):slot(23.25)] = 0.1
    return DiurnalProfile(shape).scaled_to_mean(mean_rate)


def soccer_model(mean_rate: float = 0.08) -> LiveWorkloadModel:
    """A GISMO-live model tuned for match coverage."""
    return LiveWorkloadModel(
        arrival_profile=soccer_rate_profile(mean_rate),
        n_clients=40_000,
        interest_alpha=0.35,        # broader audience, less skew
        transfers_alpha=3.2,        # almost everyone sticks to one transfer
        gap_log_mu=5.5,             # rare rejoins, spaced widely
        gap_log_sigma=1.0,
        length_log_mu=6.9,          # median ~17 min, halves are ~45 min
        length_log_sigma=1.0,
        n_feeds=1,
        feed_switch_prob=0.0,
        feed_preference=(1.0,),
    )


def main() -> None:
    matches = soccer_model()
    reality = LiveWorkloadModel.paper_defaults(mean_session_rate=0.08,
                                               n_clients=40_000)

    print("generating 7 match days and 7 reality-show days...")
    soccer = LiveWorkloadGenerator(matches).generate(days=7, seed=10)
    show = LiveWorkloadGenerator(reality).generate(days=7, seed=10)

    soccer_char = characterize(soccer.trace)
    show_char = characterize(show.trace)

    def peak_to_mean(char) -> float:
        samples = char.client.concurrency_samples
        return float(samples.max() / max(samples.mean(), 1e-9))

    print()
    print(f"{'':<38}{'soccer':>12}{'reality show':>14}")
    print(f"{'sessions':<38}{soccer_char.summary.n_sessions:>12}"
          f"{show_char.summary.n_sessions:>14}")
    print(f"{'peak/mean concurrency':<38}{peak_to_mean(soccer_char):>12.1f}"
          f"{peak_to_mean(show_char):>14.1f}")
    print(f"{'median transfer length (s)':<38}"
          f"{np.median(soccer.trace.duration):>12.0f}"
          f"{np.median(show.trace.duration):>14.0f}")
    print(f"{'transfers per session (fit alpha)':<38}"
          f"{soccer_char.session.transfers_fit.alpha:>12.2f}"
          f"{show_char.session.transfers_fit.alpha:>14.2f}")
    print(f"{'ON-time variance explained by hour':<38}"
          f"{soccer_char.session.on_by_hour.variance_explained:>12.2%}"
          f"{show_char.session.on_by_hour.variance_explained:>14.2%}")
    print()
    print("the soccer workload is far burstier (kickoff surge) and far")
    print("stickier (whole halves watched) — the same pipeline quantifies")
    print("both, which is the point of the Section 6 generative framework.")


if __name__ == "__main__":
    main()
