#!/usr/bin/env python3
"""Quickstart: the full pipeline of the paper in five steps.

1. Simulate the live-show world (the stand-in for the proprietary trace).
2. Sanitize the log (Section 2.4).
3. Run the three-layer hierarchical characterization (Sections 3-5).
4. Calibrate the Table 2 generative model from the trace.
5. Generate a fresh synthetic workload with GISMO-live (Section 6).

Run:  python examples/quickstart.py
"""

from repro import (
    LiveShowScenario,
    LiveWorkloadGenerator,
    ScenarioConfig,
    calibrate_model,
    characterize,
    render_report,
    sanitize_trace,
)
from repro.simulation.population import PopulationConfig


def main() -> None:
    # A small scenario so the quickstart finishes in seconds; drop the
    # arguments for the full 28-day scale model.
    config = ScenarioConfig(
        days=7.0,
        mean_session_rate=0.05,
        population=PopulationConfig(n_clients=20_000),
    )

    print("== 1. simulate the live-show world ==")
    result = LiveShowScenario(config).run(seed=2002)
    print(f"   {result.trace.n_transfers} transfers, "
          f"{result.n_sessions} sessions, "
          f"{result.trace.active_client_count()} active clients")

    print("== 2. sanitize (Section 2.4) ==")
    trace, report = sanitize_trace(result.trace)
    print(f"   removed {report.n_removed} entries "
          f"({report.n_spanning} spanning multiple log harvests)")

    print("== 3. characterize (Sections 3-5) ==")
    characterization = characterize(trace)
    print(render_report(characterization))

    print("== 4. calibrate the Table 2 model ==")
    model = calibrate_model(trace).model
    print(f"   interest Zipf alpha      {model.interest_alpha:.4f} "
          f"(paper: 0.4704)")
    print(f"   transfers/session alpha  {model.transfers_alpha:.4f} "
          f"(paper: 2.7042)")
    print(f"   transfer length          lognormal(mu={model.length_log_mu:.3f}, "
          f"sigma={model.length_log_sigma:.3f})  (paper: 4.384, 1.427)")

    print("== 5. generate a synthetic workload with GISMO-live ==")
    workload = LiveWorkloadGenerator(model).generate(days=7, seed=42)
    print(f"   generated {workload.trace.n_transfers} transfers in "
          f"{workload.n_sessions} sessions over 7 days")
    print(f"   re-characterized length mu: "
          f"{characterize(workload.trace).transfer.length_fit.mu:.3f}")


if __name__ == "__main__":
    main()
