#!/usr/bin/env python3
"""Scaling out: sharded generation and map-reduce characterization.

Paper-scale runs (28 days, millions of transfers) outgrow a single
process.  This example exercises the ``repro.parallel`` subsystem and its
determinism contract:

1. Generate the same workload serially and in 4 shards across 2 worker
   processes; verify the traces are bit-for-bit identical.
2. Write the workload to daily WMS log harvests and characterize them
   with the map-reduce reader, again checking the parallel result equals
   the single-process one exactly.

Run:  PYTHONPATH=src python examples/parallel_generate.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import LiveWorkloadGenerator, LiveWorkloadModel
from repro.parallel import characterize_logs, generate_sharded
from repro.trace.streaming import StreamingCharacterizer
from repro.trace.transform import daily_slices
from repro.trace.wms_log import write_wms_log


def main() -> None:
    model = LiveWorkloadModel.paper_defaults(mean_session_rate=0.05,
                                             n_clients=2_000)

    print("== 1. sharded generation is bit-identical to serial ==")
    t0 = time.perf_counter()
    serial = LiveWorkloadGenerator(model).generate(days=2, seed=2002)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = generate_sharded(model, 2, seed=2002, shards=4, jobs=2)
    sharded_s = time.perf_counter() - t0

    identical = (
        np.array_equal(serial.trace.start, sharded.trace.start)
        and np.array_equal(serial.trace.duration, sharded.trace.duration)
        and np.array_equal(serial.trace.client_index,
                           sharded.trace.client_index)
        and np.array_equal(serial.transfer_session, sharded.transfer_session)
    )
    print(f"   serial:              {serial.trace.n_transfers} transfers "
          f"in {serial_s:.2f}s")
    print(f"   shards=4, jobs=2:    {sharded.trace.n_transfers} transfers "
          f"in {sharded_s:.2f}s")
    print(f"   bit-identical:       {identical}")
    assert identical

    print("== 2. map-reduce log characterization ==")
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for day, harvest in enumerate(daily_slices(serial.trace), start=1):
            path = Path(tmp) / f"harvest-{day:02d}.log"
            write_wms_log(harvest, path)
            paths.append(path)
        print(f"   wrote {len(paths)} daily harvests")

        one_pass = StreamingCharacterizer()
        for path in paths:
            with open(path, encoding="ascii") as stream:
                one_pass.consume(stream)
        expected = one_pass.summary()

        parallel = characterize_logs(paths, jobs=2, chunk_bytes=256 * 1024)
        print(f"   single process: {expected.n_entries} entries, "
              f"length mu {expected.length_log_mu:.6f}")
        print(f"   jobs=2:         {parallel.n_entries} entries, "
              f"length mu {parallel.length_log_mu:.6f}")
        match = (parallel.n_entries == expected.n_entries
                 and parallel.length_log_mu == expected.length_log_mu
                 and parallel.length_log_sigma == expected.length_log_sigma
                 and parallel.bytes_served == expected.bytes_served)
        print(f"   exact match:    {match}")
        assert match


if __name__ == "__main__":
    main()
