#!/usr/bin/env python3
"""Bounded-memory streaming: generate, sessionize and resume in one pass.

The batch pipeline materializes the whole transfer table before it can
sessionize or write a log; at the paper's scale (28 days, millions of
transfers) that is hundreds of megabytes.  ``repro.stream`` instead
k-way-merges the generation plan's seed blocks into bounded
time-ordered batches and pushes them through an online sessionizer and
an incremental WMS log writer, keeping only open-session state and a
small reorder buffer resident.  This example exercises the contract:

1. Stream a workload to a WMS log and verify the bytes are identical
   to the batch writer's, and the finalized sessions identical to the
   batch sessionizer's.
2. Interrupt a checkpointed run partway, resume it, and verify the
   resumed artifacts are bit-for-bit the same.
3. Characterize the streamed log resumably, in checkpointed legs.

The default scale runs in seconds; pass ``--days 28 --rate 1.4`` (see
``benchmarks/bench_stream.py``) for a true paper-scale run.

Run:  PYTHONPATH=src python examples/stream_paper_scale.py
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import LiveWorkloadModel
from repro.core.sessionizer import sessionize
from repro.parallel import generate_sharded
from repro.stream import characterize_logs_resumable, run_streaming_generation
from repro.trace.wms_log import write_wms_log


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--rate", type=float, default=0.02)
    parser.add_argument("--clients", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=2002)
    args = parser.parse_args()

    model = LiveWorkloadModel.paper_defaults(mean_session_rate=args.rate,
                                             n_clients=args.clients)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        print("== 1. streaming matches the batch pipeline exactly ==")
        workload = generate_sharded(model, args.days, seed=args.seed)
        batch_log = root / "batch.log"
        write_wms_log(workload.trace, batch_log)

        stream_log = root / "stream.log"
        result = run_streaming_generation(model, args.days, seed=args.seed,
                                          log_path=stream_log)
        client, start, end, count = sessionize(workload.trace).session_columns()
        same_log = stream_log.read_bytes() == batch_log.read_bytes()
        same_sessions = (
            np.array_equal(result.sessions.client_index, client)
            and np.array_equal(result.sessions.start, start)
            and np.array_equal(result.sessions.end, end)
            and np.array_equal(result.sessions.n_transfers, count)
        )
        print(f"   {result.n_transfers} transfers, "
              f"{result.n_sessions} sessions streamed")
        print(f"   log bytes identical:  {same_log}")
        print(f"   sessions identical:   {same_sessions}")
        print(f"   peak in-flight state: {result.peak_open_sessions} open "
              f"sessions, {result.peak_log_buffered} buffered log entries")
        assert same_log and same_sessions

        print("== 2. kill-and-resume is bit-transparent ==")
        resumed_log = root / "resumed.log"
        checkpoint = root / "ck.npz"
        legs = 0
        while True:
            leg = run_streaming_generation(
                model, args.days, seed=args.seed, log_path=resumed_log,
                checkpoint_path=checkpoint, resume=True, max_blocks=17)
            legs += 1
            if leg.completed:
                break
        same = resumed_log.read_bytes() == batch_log.read_bytes()
        print(f"   completed in {legs} interrupted legs")
        print(f"   log bytes identical:  {same}")
        assert same

        print("== 3. resumable characterization ==")
        ck = root / "characterize.npz"
        summary = None
        while summary is None:
            summary = characterize_logs_resumable(
                stream_log, checkpoint_path=ck, resume=True,
                chunk_bytes=256 * 1024, max_chunks=2)
        print(f"   {summary.n_entries} entries from "
              f"{summary.n_clients} clients, "
              f"length mu {summary.length_log_mu:.6f}")
        assert summary.n_entries == result.n_entries


if __name__ == "__main__":
    main()
