#!/usr/bin/env python3
"""Monitoring a live server's log with one-pass statistics.

A production operator wants the paper's headline statistics *while the
show is on air*, not after a month of harvests.  This example plays that
scenario: the simulated server writes daily log harvests; the monitor
consumes each harvest as it lands (constant memory, one pass) and prints
the rolling picture — transfer counts, the stickiness fit drifting toward
its steady state, the congestion share, and the busiest clients.

Run:  python examples/streaming_monitor.py
"""

import io

import numpy as np

from repro import LiveShowScenario, ScenarioConfig
from repro.simulation.population import PopulationConfig
from repro.trace.streaming import StreamingCharacterizer
from repro.trace.transform import daily_slices
from repro.trace.wms_log import write_wms_log


def main() -> None:
    config = ScenarioConfig(days=7.0, mean_session_rate=0.04,
                            population=PopulationConfig(n_clients=15_000),
                            inject_spanning_entries=0)
    world = LiveShowScenario(config).run(seed=777)

    # The server's daily harvests (timestamps within each day, like the
    # paper's midnight log rotation).
    harvests = daily_slices(world.trace)
    monitor = StreamingCharacterizer()

    print(f"{'day':>4} {'entries':>9} {'clients':>9} {'length mu':>10} "
          f"{'length sigma':>13} {'congested':>10} {'TB served':>10}")
    for day, harvest in enumerate(harvests, start=1):
        buffer = io.StringIO()
        write_wms_log(harvest, buffer)
        buffer.seek(0)
        monitor.consume(buffer)
        s = monitor.summary()
        print(f"{day:>4} {s.n_entries:>9} {s.n_clients:>9} "
              f"{s.length_log_mu:>10.4f} {s.length_log_sigma:>13.4f} "
              f"{s.congestion_bound_fraction:>9.1%} "
              f"{s.bytes_served / 1e12:>10.4f}")

    s = monitor.summary(top_k=3)
    print()
    print(f"after one week: length fit lognormal(mu={s.length_log_mu:.3f}, "
          f"sigma={s.length_log_sigma:.3f})  (paper: 4.384, 1.427)")
    print("busiest clients:",
          ", ".join(f"{pid} ({count} transfers)"
                    for pid, count in s.top_clients))
    peak_hour = int(np.argmax(s.diurnal_counts) / (s.diurnal_counts.size / 24))
    print(f"busiest time of day: around {peak_hour:02d}:00 "
          "(the prime-time peak of Figure 4)")


if __name__ == "__main__":
    main()
