#!/usr/bin/env python3
"""Analyzing a Windows-Media-Server-style log file end to end.

The downstream-user story: you operate a live streaming server, you have
its request log, and you want (a) the paper's hierarchical
characterization of your workload and (b) a calibrated generator for load
testing.

Since real logs of this kind are proprietary, the example first *writes*
one from a simulation — the same format the paper's server produced
(one-second timestamps, one entry per request/response) — then forgets the
simulation and works purely from the file, exactly as you would:

1. parse the log (with an IP-to-AS resolver, standing in for the external
   routing data the paper used);
2. sanitize it;
3. sweep the session timeout to pick ``T_o`` (Figure 9's methodology);
4. characterize and report;
5. calibrate a model and save it as JSON for ``repro generate``.

Run:  python examples/log_analysis.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    LiveShowScenario,
    ScenarioConfig,
    calibrate_model,
    characterize,
    read_wms_log,
    render_report,
    sanitize_trace,
    session_count_for_timeouts,
    write_wms_log,
)
from repro.simulation.population import PopulationConfig


def make_log(directory: Path) -> tuple[Path, object]:
    """Produce a server log (and the resolver a real operator would have)."""
    config = ScenarioConfig(days=5.0, mean_session_rate=0.04,
                            population=PopulationConfig(n_clients=15_000))
    result = LiveShowScenario(config).run(seed=555)
    path = directory / "wms-server.log"
    entries = write_wms_log(result.trace, path)
    print(f"wrote {entries} log entries to {path}")
    return path, result.population.resolver()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        log_path, resolver = make_log(directory)

        print("\n== 1. parse the log ==")
        trace = read_wms_log(log_path, resolver=resolver)
        print(f"   parsed {trace.n_transfers} transfers from "
              f"{trace.active_client_count()} clients")

        print("== 2. sanitize ==")
        trace, report = sanitize_trace(trace)
        print(f"   removed {report.n_removed} entries "
              f"({report.n_spanning} spanning)")

        print("== 3. pick the session timeout (Figure 9) ==")
        grid = np.arange(250.0, 4_001.0, 250.0)
        counts = session_count_for_timeouts(trace, grid)
        for timeout, count in list(zip(grid, counts))[::4]:
            print(f"   T_o = {timeout:5.0f}s -> {count} sessions")
        knee = 1_500.0
        print(f"   the curve flattens near {knee:.0f}s — the paper's choice")

        print("== 4. characterize ==")
        print(render_report(characterize(trace, timeout=knee)))

        print("== 5. calibrate and export the model ==")
        model = calibrate_model(trace, timeout=knee).model
        model_path = directory / "model.json"
        model_path.write_text(json.dumps(model.to_dict(), indent=2))
        print(f"   model written to {model_path}")
        print("   regenerate synthetic load with:")
        print(f"     repro generate --model {model_path.name} "
              f"--days 7 --out synthetic.npz")


if __name__ == "__main__":
    main()
