"""Time and size unit constants and helpers.

All trace timestamps inside the library are expressed in *seconds since the
start of the trace* as floats; the Windows-Media-Server-style logs of the
paper record them at one-second resolution, which :mod:`repro.trace.wms_log`
reproduces by flooring on output.

The paper displays time measurements on logarithmic axes using the
``floor(t) + 1`` convention (Section 2.3) so that zero-second intervals are
representable; :func:`log_display_time` implements it.
"""

from __future__ import annotations

import numpy as np

from ._typing import ArrayLike, FloatArray, as_float_array

#: Number of seconds in one minute.
MINUTE = 60.0
#: Number of seconds in one hour.
HOUR = 3600.0
#: Number of seconds in one day.
DAY = 86400.0
#: Number of seconds in one week.
WEEK = 7 * DAY

#: The paper's default session timeout T_o, in seconds (Section 4.1).
DEFAULT_SESSION_TIMEOUT = 1500.0

#: The paper's 15-minute aggregation bin, in seconds (Figures 4, 16, 18).
FIFTEEN_MINUTES = 15 * MINUTE

#: Bits per byte, for bandwidth conversions (Figure 20 is in bits/second).
BITS_PER_BYTE = 8


def log_display_time(t: ArrayLike) -> FloatArray:
    """Apply the paper's ``floor(t) + 1`` convention for log-scale display.

    The server log has one-second resolution, so measured intervals of zero
    seconds are common; the paper maps a measurement of ``t`` seconds to
    ``floor(t) + 1`` so that every value is positive and displayable on a
    logarithmic axis.

    Parameters
    ----------
    t:
        Raw time measurements in seconds (must be non-negative).

    Returns
    -------
    numpy.ndarray
        ``floor(t) + 1`` elementwise.
    """
    arr = as_float_array(t, name="t")
    if arr.size and float(arr.min()) < 0:
        raise ValueError("time measurements must be non-negative")
    return np.floor(arr) + 1.0


def seconds_to_days(t: float) -> float:
    """Convert seconds to days."""
    return t / DAY


def days(n: float) -> float:
    """Return ``n`` days expressed in seconds."""
    return n * DAY


def hours(n: float) -> float:
    """Return ``n`` hours expressed in seconds."""
    return n * HOUR


def minutes(n: float) -> float:
    """Return ``n`` minutes expressed in seconds."""
    return n * MINUTE


def format_duration(t: float) -> str:
    """Render a duration in seconds as a compact human-readable string.

    Examples
    --------
    >>> format_duration(42.0)
    '42s'
    >>> format_duration(3661.0)
    '1h1m1s'
    >>> format_duration(2 * 86400.0)
    '2d'
    """
    if t < 0:
        return "-" + format_duration(-t)
    t = int(round(t))
    parts = []
    for label, span in (("d", int(DAY)), ("h", int(HOUR)), ("m", int(MINUTE))):
        if t >= span:
            parts.append(f"{t // span}{label}")
            t %= span
    if t or not parts:
        parts.append(f"{t}s")
    return "".join(parts)
