"""Seedable random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument of type
:data:`repro._typing.SeedLike` and normalizes it through :func:`make_rng`.
Components that own several independent stochastic sub-processes derive
per-purpose child generators with :func:`spawn`, so adding a new consumer of
randomness does not perturb the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

from ._typing import SeedLike


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    ``None`` yields a non-deterministic generator, an ``int`` or
    :class:`~numpy.random.SeedSequence` a deterministic one, and an existing
    :class:`~numpy.random.Generator` is passed through unchanged (shared,
    not copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_sequences(rng: np.random.Generator,
                    n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    Children come from the generator's underlying seed sequence
    (``SeedSequence.spawn``), which carries NumPy's independence guarantee
    and leaves the parent's random stream untouched.  For exotic bit
    generators without a seed sequence, a fresh ``SeedSequence`` is built
    from entropy drawn from ``rng`` and spawned the same way — drawing
    entropy (rather than raw child seeds) keeps the spawned children
    collision-resistant even in the fallback.

    Seed sequences are picklable, which makes them the right currency for
    handing deterministic randomness to worker processes (see
    :mod:`repro.parallel`).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:
        entropy = [int(word) for word in
                   rng.integers(0, 2**32, size=4, dtype=np.uint64)]
        seed_seq = np.random.SeedSequence(entropy=entropy)
    return list(seed_seq.spawn(n))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    A thin wrapper over :func:`spawn_sequences`; both paths route through
    ``numpy.random.SeedSequence`` so children are guaranteed distinct and
    reproducible.
    """
    return [np.random.default_rng(child) for child in spawn_sequences(rng, n)]
