"""Seedable random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument of type
:data:`repro._typing.SeedLike` and normalizes it through :func:`make_rng`.
Components that own several independent stochastic sub-processes derive
per-purpose child generators with :func:`spawn`, so adding a new consumer of
randomness does not perturb the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

from ._typing import SeedLike


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    ``None`` yields a non-deterministic generator, an ``int`` a deterministic
    one, and an existing :class:`~numpy.random.Generator` is passed through
    unchanged (shared, not copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the generator's underlying bit generator seed sequence when
    available, falling back to seeding children from draws of ``rng``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return [np.random.default_rng(child) for child in seed_seq.spawn(n)]
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
