"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by library code derive from :class:`ReproError`, so a
caller embedding the library can catch a single base class.  Subclasses are
kept deliberately coarse: one per failure domain rather than one per call
site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class DistributionError(ReproError):
    """A distribution was constructed with invalid parameters."""


class FittingError(ReproError):
    """A fitting routine could not produce a valid estimate.

    Raised, for example, when the sample is empty, constant, or contains
    values outside the support of the model being fitted.
    """


class TraceError(ReproError):
    """A trace, log file, or record violates the trace data model."""


class LogParseError(TraceError):
    """A log line could not be parsed into a :class:`LogEntry`.

    Attributes
    ----------
    line_number:
        1-based line number within the log stream, when known.
    line:
        The offending raw line, when known.
    """

    def __init__(self, message: str, *, line_number: int | None = None,
                 line: str | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
        self.line = line


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CheckpointError(ReproError):
    """A streaming checkpoint is missing, corrupt, or inconsistent.

    Raised when a checkpoint file cannot be read, carries an unsupported
    format version, or was written by a run whose parameters (model, seed,
    inputs) differ from the one trying to resume from it.
    """


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class GenerationError(ReproError):
    """The synthetic workload generator was asked for an impossible output."""


class ServeError(ReproError):
    """The live characterization service was misconfigured or misused.

    Raised for invalid service configuration (bad ports, unknown feeds,
    missing checkpoint directories) and for service-level operational
    failures that are not wire-protocol violations.
    """


class ProtocolError(ServeError):
    """A client violated the ingest wire protocol.

    Raised while decoding a handshake line or a binary ingest frame:
    unknown frame types, truncated payloads, oversized frames, or
    malformed JSON metadata.  The server reports the message back to the
    offending connection and closes it; other feeds are unaffected.
    """


class CdnError(ReproError):
    """The simulated delivery hierarchy was misconfigured or misused.

    Raised for inconsistent topologies (no edges, negative capacities),
    failure plans that leave no edge alive, unknown assignment policies,
    and capacity-planner sweeps over empty or malformed grids.
    """


class ScenarioError(ReproError):
    """A workload scenario spec is unknown, malformed, or out of range.

    Raised when parsing a scenario spec string (unknown scenario name,
    bad composition syntax, non-numeric or unknown parameters) and when
    a scenario's parameters fail validation (e.g. a blackout fraction
    outside ``[0, 1]``).
    """


class LintError(ReproError):
    """The static-analysis pass was invoked with bad inputs.

    Raised for unknown rule IDs in ``--select``/``--ignore`` and for
    nonexistent or non-Python paths.  Rule *violations* are not errors —
    they are data (see :class:`repro.lint.Violation`).
    """
