"""Figure 5 — marginal distribution of client interarrival times.

Frequency, CDF, and CCDF of the time between consecutive session starts
across all clients.  The shape to reproduce: an apparently heavy-tailed
marginal — which Section 3.4 then explains as the signature of a
*non-stationary* (diurnally modulated) Poisson process, not of true heavy
tails (see :mod:`repro.experiments.fig06`).
"""

from __future__ import annotations

from ..analysis.marginals import Marginal
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 5 interarrival marginal."""
    ctx = ctx or get_context()
    interarrivals = ctx.characterization.client.interarrivals
    marginal = Marginal(interarrivals, display_time=True)

    x_cdf, cdf = marginal.cdf()
    x_ccdf, ccdf = marginal.ccdf()

    mean = marginal.mean()
    p99 = marginal.percentile(99)
    rows = [
        ("session interarrivals observed", str(marginal.n), ""),
        ("mean interarrival (s)", fmt(mean), ""),
        ("median interarrival (s)", fmt(marginal.median()), ""),
        ("99th percentile (s)", fmt(p99), ""),
        ("max interarrival (s)", fmt(marginal.percentile(100)), ""),
    ]
    checks = [
        ("tail stretches far beyond the mean (p99 > 5x mean)",
         p99 > 5 * mean),
        ("CCDF spans several decades",
         float(ccdf[ccdf > 0].min()) < 1e-4),
        ("most mass at small interarrivals (median well below mean)",
         marginal.median() < mean),
    ]
    return Experiment(
        id="fig05", title="Marginal distribution of client interarrival times",
        paper_ref="Figure 5 / Section 3.3",
        rows=rows,
        series={"cdf": (x_cdf, cdf), "ccdf": (x_ccdf, ccdf)},
        checks=checks,
        notes=["interarrivals use the paper's floor(t)+1 display convention"])
