"""Figure 7 — the client interest profile.

Log-log rank-frequency of per-client transfer counts (left, the paper fits
Zipf alpha = 0.7194) and per-client session counts (right, alpha = 0.4704).
The paper's reading: for live content the Zipf skew lives on the *client*
side — the duality with stored-content object popularity.
"""

from __future__ import annotations

from .. import paper
from ..analysis.ranks import rank_frequency
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 7 interest profiles and Zipf fits."""
    ctx = ctx or get_context()
    client = ctx.characterization.client
    session_fit = client.session_interest_fit
    transfer_fit = client.transfer_interest_fit

    s_counts = client.sessions_per_client
    t_counts = client.transfers_per_client
    s_ranks, s_freq = rank_frequency(s_counts[s_counts > 0])
    t_ranks, t_freq = rank_frequency(t_counts[t_counts > 0])

    ref_sessions = paper.TABLE2["interest_alpha_sessions"].value
    ref_transfers = paper.TABLE2["interest_alpha_transfers"].value

    rows = [
        ("sessions/client Zipf alpha", fmt(session_fit.alpha),
         fmt(ref_sessions)),
        ("sessions/client fit r^2", fmt(session_fit.r_squared), ""),
        ("transfers/client Zipf alpha", fmt(transfer_fit.alpha),
         fmt(ref_transfers)),
        ("transfers/client fit r^2", fmt(transfer_fit.r_squared), ""),
        ("most-interested client's sessions", str(int(s_counts.max())), ""),
    ]
    checks = [
        ("sessions/client alpha near the paper's 0.47",
         abs(session_fit.alpha - ref_sessions) <= 0.15 * ref_sessions),
        ("transfers/client profile is steeper than sessions/client",
         transfer_fit.alpha > session_fit.alpha),
        ("both profiles are Zipf-like (r^2 > 0.85)",
         session_fit.r_squared > 0.85 and transfer_fit.r_squared > 0.85),
    ]
    return Experiment(
        id="fig07", title="Client interest profile (Zipf fits)",
        paper_ref="Figure 7 / Section 3.5",
        rows=rows,
        series={"sessions_rank_freq": (s_ranks, s_freq),
                "transfers_rank_freq": (t_ranks, t_freq)},
        checks=checks,
        notes=["the transfers/client exponent emerges from sessions x "
               "transfers-per-session rather than being planted; it is "
               "steeper than the session profile, as in the paper, though "
               "not numerically pinned to 0.7194"])
