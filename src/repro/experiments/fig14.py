"""Figure 14 — marginal distribution of intra-session transfer interarrivals.

The time between consecutive transfer starts within a session, fitted to a
lognormal (the paper: mu = 4.89991, sigma = 1.32074).
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from ..units import log_display_time
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 14 intra-session interarrival marginal."""
    ctx = ctx or get_context()
    session = ctx.characterization.session
    fit = session.intra_fit
    display = log_display_time(np.maximum(session.intra_arrivals, 0.0))
    marginal = Marginal(display)
    x_ccdf, ccdf = marginal.ccdf()

    mu_ref = paper.TABLE2["intra_arrival_log_mu"].value
    sigma_ref = paper.TABLE2["intra_arrival_log_sigma"].value

    rows = [
        ("intra-session interarrivals observed", str(marginal.n), ""),
        ("lognormal mu", fmt(fit.mu), fmt(mu_ref)),
        ("lognormal sigma", fmt(fit.sigma), fmt(sigma_ref)),
        ("median interarrival (s)", fmt(marginal.median()),
         fmt(float(np.exp(mu_ref)))),
    ]
    checks = [
        ("mu recovered within 15%", abs(fit.mu - mu_ref) <= 0.15 * mu_ref),
        ("sigma recovered within 15%",
         abs(fit.sigma - sigma_ref) <= 0.15 * sigma_ref),
        ("median near exp(mu)",
         0.5 * np.exp(fit.mu) < marginal.median() < 2.0 * np.exp(fit.mu)),
    ]
    return Experiment(
        id="fig14",
        title="Intra-session transfer interarrival marginal",
        paper_ref="Figure 14 / Section 4.5",
        rows=rows,
        series={"ccdf": (x_ccdf, ccdf)},
        checks=checks)
