"""Run every reproduction experiment and render the results.

``python -m repro experiments`` drives this module; the benchmark suite
reuses :data:`ALL_EXPERIMENTS` so each ``bench_*`` target regenerates
exactly one table or figure.
"""

from __future__ import annotations

import importlib
from typing import Callable

from .common import Experiment, render_experiment

#: Ordered registry of experiment module names (under this package).
ALL_EXPERIMENTS: tuple[str, ...] = (
    "table1", "table2",
    "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20",
    "duality", "selfcheck", "ablation",
    "ext_vbr", "ext_multicast", "ext_qos", "ext_flashcrowd", "ext_cdn",
    "ext_userdriven",
)


def _load(name: str) -> Callable[..., Experiment]:
    if name not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {list(ALL_EXPERIMENTS)}")
    module = importlib.import_module(f".{name}", package=__package__)
    return module.run


def run_experiment(name: str) -> Experiment:
    """Run one experiment by id (e.g. ``"fig07"``)."""
    return _load(name)()


def run_all(names: tuple[str, ...] = ALL_EXPERIMENTS,
            *, echo: Callable[[str], None] | None = None
            ) -> list[Experiment]:
    """Run the listed experiments in order, optionally echoing each.

    Parameters
    ----------
    names:
        Experiment ids to run (default: all, in paper order).
    echo:
        Optional sink for the rendered text of each experiment (e.g.
        ``print``).
    """
    results = []
    for name in names:
        experiment = run_experiment(name)
        if echo is not None:
            echo(render_experiment(experiment))
            echo("")
        results.append(experiment)
    return results


def summary_line(experiments: list[Experiment]) -> str:
    """One-line pass/fail summary over all shape checks."""
    total = sum(len(e.checks) for e in experiments)
    passed = sum(sum(1 for _, ok in e.checks if ok) for e in experiments)
    failing = [e.id for e in experiments if not e.passed]
    line = f"{passed}/{total} shape checks passed across {len(experiments)} experiments"
    if failing:
        line += f"; failing: {', '.join(failing)}"
    return line
