"""The live/stored duality — the paper's central conceptual claim.

Access to *stored* objects is user driven: the Zipf skew lives on the
object side (object popularity), while clients are interchangeable.
Access to *live* objects is object driven: clients can only join or leave,
so the Zipf skew migrates to the client side (the interest profile), while
"object popularity" is trivial (two feeds).

This experiment generates a stored-media baseline workload and compares
both workloads with identical analysis code: fit a Zipf over object
request counts and over client request counts in each, and compare the
temporal signature (the live workload's diurnal ACF peak against the
stored baseline's stationary arrivals).
"""

from __future__ import annotations

import numpy as np

from ..analysis.autocorrelation import acf
from ..analysis.concurrency import sampled_concurrency
from ..baselines.stored_media import StoredMediaConfig, StoredMediaGenerator
from ..distributions.fitting import fit_zipf_rank
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Contrast the live workload against the stored-media baseline."""
    ctx = ctx or get_context()
    live = ctx.trace
    client_live_fit = ctx.characterization.client.session_interest_fit

    stored = StoredMediaGenerator(StoredMediaConfig()).generate(
        days=7, seed=EXPERIMENT_SEED + 3)
    st = stored.trace

    # Object-side skew.
    stored_obj_counts = stored.object_request_counts()
    stored_obj_fit = fit_zipf_rank(stored_obj_counts[stored_obj_counts > 0])
    live_object_share = np.bincount(live.object_id) / len(live)

    # Client-side skew.
    stored_client_counts = st.transfers_per_client()
    stored_client_fit = fit_zipf_rank(
        stored_client_counts[stored_client_counts > 0])

    # Temporal signature: ACF of concurrency at one-minute samples.
    live_acf = ctx.characterization.client.acf_values
    step = ctx.characterization.client.concurrency_step
    day_lag = int(round(86400 / step))
    live_day_peak = float(live_acf[day_lag])
    stored_samples = sampled_concurrency(st.start, st.end,
                                         extent=st.extent, step=step)
    stored_acf = acf(stored_samples, day_lag)
    stored_day_peak = float(stored_acf[day_lag])

    rows = [
        ("stored: object popularity Zipf alpha", fmt(stored_obj_fit.alpha),
         "strong skew (user-driven choice)"),
        ("stored: client activity Zipf alpha", fmt(stored_client_fit.alpha),
         "weak (clients interchangeable)"),
        ("live: client interest Zipf alpha", fmt(client_live_fit.alpha),
         "strong skew (0.47 in the paper)"),
        ("live: object 'popularity'",
         f"{live_object_share.round(2).tolist()}",
         "trivial: two feeds"),
        ("live ACF at one-day lag", fmt(live_day_peak), "pronounced"),
        ("stored ACF at one-day lag", fmt(stored_day_peak),
         "absent (stationary)"),
    ]
    checks = [
        ("stored workload: object skew much stronger than client skew",
         stored_obj_fit.alpha > 3 * max(stored_client_fit.alpha, 0.05)),
        ("live workload: client skew is the dominant axis",
         client_live_fit.alpha > 2 * stored_client_fit.alpha),
        ("live workload alone shows the diurnal ACF peak",
         live_day_peak > stored_day_peak + 0.3),
    ]
    return Experiment(
        id="duality", title="Role reversal: live versus stored workloads",
        paper_ref="Sections 3.5, 8 (duality claim)",
        rows=rows,
        checks=checks,
        notes=["the stored baseline follows the classic GISMO model: Zipf "
               "object popularity, uniform client choice, stationary "
               "Poisson arrivals, ~50% partial plays"])
