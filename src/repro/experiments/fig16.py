"""Figure 16 — temporal behaviour of the number of concurrent transfers.

Mean active transfers per 15-minute bin over the whole trace, folded
modulo one week, and folded modulo one day — the transfer-layer twin of
Figure 4, expected to show the same diurnal dominance.
"""

from __future__ import annotations

import numpy as np

from ..units import FIFTEEN_MINUTES
from .common import Experiment, ExperimentContext, fmt, get_context
from .fig04 import _hour_means


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 16 temporal profiles."""
    ctx = ctx or get_context()
    transfer = ctx.characterization.transfer
    bins = transfer.concurrency_bins
    weekly = transfer.weekly_fold
    daily = transfer.daily_fold

    hours = _hour_means(daily)
    quiet = float(hours[4:11].mean())
    prime = float(hours[19:24].mean())
    per_day = weekly.reshape(7, -1).mean(axis=1)
    weekend = float((per_day[0] + per_day[6]) / 2.0)
    weekday = float(per_day[1:6].mean())

    t_full = np.arange(bins.size) * FIFTEEN_MINUTES
    t_week = np.arange(weekly.size) * FIFTEEN_MINUTES
    t_day = np.arange(daily.size) * FIFTEEN_MINUTES

    rows = [
        ("mean concurrent transfers (4am-11am)", fmt(quiet), "low"),
        ("mean concurrent transfers (7pm-12am)", fmt(prime), "peak"),
        ("weekend/weekday ratio", fmt(weekend / weekday), "slightly above 1"),
    ]
    checks = [
        ("diurnal quiet window present", quiet < 0.45 * prime),
        ("weekends at least as busy as weekdays",
         weekend >= 0.95 * weekday),
        ("profile mirrors the client-layer profile (Figure 4)",
         float(np.corrcoef(
             daily, ctx.characterization.client.daily_fold)[0, 1]) > 0.95),
    ]
    return Experiment(
        id="fig16", title="Temporal behaviour of concurrent transfers",
        paper_ref="Figure 16 / Section 5.1",
        rows=rows,
        series={"full": (t_full, bins), "weekly": (t_week, weekly),
                "daily": (t_day, daily)},
        checks=checks)
