"""Figure 10 — session ON time versus session starting hour.

The paper plots the mean session length against the hour the session
started and finds only a weak relationship, concluding that ON-time
variability is fundamental to live-content interaction rather than a
temporal artifact (Section 4.2).  We quantify "weak" with the correlation
ratio (fraction of ON-time variance explained by the starting hour).
"""

from __future__ import annotations

import numpy as np

from ..units import HOUR
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 10 conditional-mean profile."""
    ctx = ctx or get_context()
    profile = ctx.characterization.session.on_by_hour
    hours = profile.centers / HOUR
    means = profile.means

    observed = means[~np.isnan(means)]
    spread = (float(observed.max()) - float(observed.min())) / \
        float(observed.mean())

    rows = [
        ("ON-time variance explained by hour",
         fmt(profile.variance_explained), "weak (near zero)"),
        ("mean ON time across hours (s)", fmt(float(observed.mean())), ""),
        ("hourly mean spread / overall mean", fmt(spread), "moderate"),
    ]
    checks = [
        ("hour of day explains under 5% of ON-time variance",
         profile.variance_explained < 0.05),
        ("every hour has sessions", bool(np.all(profile.counts > 0))),
        ("hourly means stay within a factor of ~3 of each other",
         float(observed.max()) < 3.5 * float(observed.min())),
    ]
    return Experiment(
        id="fig10", title="Session ON time versus starting hour",
        paper_ref="Figure 10 / Section 4.2",
        rows=rows,
        series={"on_time_by_hour": (hours, means)},
        checks=checks,
        notes=["the show's scheduled events add mild hour-of-day structure "
               "(longer evening transfers), as visible in the paper's "
               "figure too — the point is that it explains little variance"])
