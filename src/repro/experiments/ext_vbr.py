"""Extension — self-similar VBR live content (Section 6.2).

GISMO's stored-media heritage includes self-similar variable-bit-rate
content, which the paper says "is still applicable" to live workloads.
This experiment exercises the rebuilt VBR substrate end to end:

* the fGn-driven encoder must plant a recoverable Hurst parameter and the
  configured marginal (mean, coefficient of variation);
* server egress under VBR content must be burstier than under CBR at the
  same mean rate — the provisioning headroom VBR costs.
"""

from __future__ import annotations

import numpy as np

from ..analysis.selfsimilarity import hurst_aggregate_variance, hurst_rescaled_range
from ..simulation.vbr import VbrConfig, VbrEncoder, unicast_egress_series
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context

#: The planted VBR parameters (MPEG-trace-like).
VBR = VbrConfig(mean_bps=300_000.0, coefficient_of_variation=0.35,
                hurst=0.80)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Validate the VBR substrate and measure its egress cost."""
    ctx = ctx or get_context()
    encoder = VbrEncoder(VBR)

    series = encoder.bitrate_series(2 ** 15, seed=EXPERIMENT_SEED + 6)
    measured_mean = float(series.mean())
    measured_cv = float(series.std() / series.mean())
    hurst_av = hurst_aggregate_variance(np.log(series))
    hurst_rs = hurst_rescaled_range(np.log(series))

    times, vbr_egress = unicast_egress_series(
        ctx.trace, encoder=encoder, seed=EXPERIMENT_SEED + 7)
    _, cbr_egress = unicast_egress_series(ctx.trace, encoder=None)
    vbr_peak_to_mean = float(vbr_egress.max() / vbr_egress.mean())
    cbr_peak_to_mean = float(cbr_egress.max() / cbr_egress.mean())

    rows = [
        ("encoded mean bitrate (bit/s)", fmt(measured_mean),
         fmt(VBR.mean_bps) + " (planted)"),
        ("encoded bitrate CV", fmt(measured_cv),
         fmt(VBR.coefficient_of_variation) + " (planted)"),
        ("Hurst (aggregate variance)", fmt(hurst_av),
         fmt(VBR.hurst) + " (planted)"),
        ("Hurst (rescaled range)", fmt(hurst_rs),
         fmt(VBR.hurst) + " (planted)"),
        ("egress peak/mean, CBR content", fmt(cbr_peak_to_mean), ""),
        ("egress peak/mean, VBR content", fmt(vbr_peak_to_mean),
         "> CBR (burstier)"),
    ]
    checks = [
        # Long-range dependence makes the sample mean converge as
        # n^(H-1) ~ n^-0.2, so even 32k points leave several percent of
        # noise; 10% is the honest tolerance.
        ("marginal mean within 10%",
         abs(measured_mean - VBR.mean_bps) <= 0.10 * VBR.mean_bps),
        ("marginal CV within 15%",
         abs(measured_cv - VBR.coefficient_of_variation)
         <= 0.15 * VBR.coefficient_of_variation),
        ("Hurst recovered within 0.1 by both estimators",
         abs(hurst_av - VBR.hurst) <= 0.1
         and abs(hurst_rs - VBR.hurst) <= 0.1),
        ("VBR egress is burstier than CBR",
         vbr_peak_to_mean > cbr_peak_to_mean),
    ]
    return Experiment(
        id="ext_vbr",
        title="Self-similar VBR live content (extension)",
        paper_ref="Section 6.2 (GISMO VBR heritage)",
        rows=rows,
        series={"vbr_egress": (times, vbr_egress)},
        checks=checks)
