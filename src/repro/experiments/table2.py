"""Table 2 — the retained generative-model variables.

The simulation plants the paper's Table 2 parameters; calibration must
recover them from the trace alone.  This is the strongest end-to-end check
available without the proprietary data: measurement methodology is
validated by parameter recovery.
"""

from __future__ import annotations

from .. import paper
from .common import Experiment, ExperimentContext, fmt, get_context

#: Relative tolerance for parameter recovery (documented in EXPERIMENTS.md).
RECOVERY_RTOL = 0.15


def _within(measured: float, target: float, rtol: float = RECOVERY_RTOL) -> bool:
    return abs(measured - target) <= rtol * abs(target)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Recover the Table 2 parameters by calibration."""
    ctx = ctx or get_context()
    cal = ctx.calibration
    model = cal.model
    t2 = paper.TABLE2

    interest_ref = t2["interest_alpha_sessions"].value
    transfers_ref = t2["transfers_per_session_alpha"].value
    gap_mu_ref = t2["intra_arrival_log_mu"].value
    gap_sigma_ref = t2["intra_arrival_log_sigma"].value
    len_mu_ref = t2["transfer_length_log_mu"].value
    len_sigma_ref = t2["transfer_length_log_sigma"].value

    rows = [
        ("client interest Zipf alpha", fmt(model.interest_alpha),
         fmt(interest_ref)),
        ("transfers/session Zipf alpha", fmt(model.transfers_alpha),
         fmt(transfers_ref)),
        ("intra-session interarrival lognormal mu", fmt(model.gap_log_mu),
         fmt(gap_mu_ref)),
        ("intra-session interarrival lognormal sigma",
         fmt(model.gap_log_sigma), fmt(gap_sigma_ref)),
        ("transfer length lognormal mu", fmt(model.length_log_mu),
         fmt(len_mu_ref)),
        ("transfer length lognormal sigma", fmt(model.length_log_sigma),
         fmt(len_sigma_ref)),
        ("arrival profile period (hours)",
         fmt(model.arrival_profile.period / 3600.0),
         fmt(t2["arrival_period_hours"].value)),
        ("interest fit r^2", fmt(cal.interest_fit.r_squared), ""),
        ("transfers/session fit r^2", fmt(cal.transfers_fit.r_squared), ""),
    ]
    checks = [
        ("interest alpha recovered within 15%",
         _within(model.interest_alpha, interest_ref)),
        ("transfers/session alpha recovered within 15%",
         _within(model.transfers_alpha, transfers_ref)),
        ("gap lognormal mu recovered within 15%",
         _within(model.gap_log_mu, gap_mu_ref)),
        ("gap lognormal sigma recovered within 15%",
         _within(model.gap_log_sigma, gap_sigma_ref)),
        ("length lognormal mu recovered within 15%",
         _within(model.length_log_mu, len_mu_ref)),
        ("length lognormal sigma recovered within 15%",
         _within(model.length_log_sigma, len_sigma_ref)),
        ("both Zipf fits explain the data (r^2 > 0.8)",
         cal.interest_fit.r_squared > 0.8
         and cal.transfers_fit.r_squared > 0.8),
    ]
    return Experiment(
        id="table2",
        title="Generative-model variables recovered by calibration",
        paper_ref="Table 2 / Section 6",
        rows=rows, checks=checks,
        notes=["the simulator plants the paper's parameters; calibration "
               "recovers them from the trace alone"])
