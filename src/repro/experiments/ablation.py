"""Design-choice ablations called out in DESIGN.md.

Four methodological knobs of the characterization pipeline, each swept to
show the headline results are (or are not) sensitive to them:

* the session timeout ``T_o`` and its downstream effect on the session
  ON/OFF fits (the paper itself notes the 1,500 s choice is "to a large
  extent arbitrary", Section 4.3);
* the stationarity window of the piecewise Poisson arrival model
  (the paper uses 15 minutes);
* the Zipf fitting method (log-spaced rank regression versus all-ranks
  regression);
* the diurnal-profile bin count.
"""

from __future__ import annotations

import numpy as np

from ..baselines.stationary_poisson import interarrival_ks_comparison
from ..core.sessionizer import sessionize
from ..distributions.fitting import (
    fit_exponential,
    fit_lognormal,
    fit_zipf_mle,
    fit_zipf_pmf,
    fit_zipf_rank,
)
from ..units import log_display_time
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context

#: Timeouts swept by the T_o ablation (seconds).
TIMEOUT_SWEEP = (750.0, 1_500.0, 3_000.0)

#: Piecewise-Poisson windows swept (seconds).
WINDOW_SWEEP = (300.0, 900.0, 3_600.0)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Run all four ablations."""
    ctx = ctx or get_context()
    trace = ctx.trace
    rows: list[tuple[str, str, str]] = []
    checks: list[tuple[str, bool]] = []

    # ------------------------------------------------------------------
    # 1. Session timeout sensitivity.
    # ------------------------------------------------------------------
    on_sigmas = {}
    off_means = {}
    for timeout in TIMEOUT_SWEEP:
        sessions = (ctx.sessions if timeout == ctx.sessions.timeout
                    else sessionize(trace, timeout))
        on_fit = fit_lognormal(log_display_time(sessions.on_times()))
        on_sigmas[timeout] = on_fit.sigma
        off = sessions.off_times()
        off_means[timeout] = fit_exponential(off).mean() if off.size else 0.0
        rows.append((f"T_o = {timeout:.0f}s: ON sigma / OFF mean",
                     f"{fmt(on_fit.sigma)} / {fmt(off_means[timeout])}", ""))
    sigma_spread = (max(on_sigmas.values()) - min(on_sigmas.values())) \
        / np.mean(list(on_sigmas.values()))
    checks.append(("ON-time sigma varies < 25% across a 4x timeout range",
                   sigma_spread < 0.25))
    checks.append(("OFF-time mean grows with the timeout (longer gaps "
                   "absorbed into sessions)",
                   off_means[TIMEOUT_SWEEP[0]]
                   <= off_means[TIMEOUT_SWEEP[-1]]))

    # ------------------------------------------------------------------
    # 2. Piecewise-Poisson stationarity window.
    # ------------------------------------------------------------------
    arrivals = ctx.sessions.arrival_times()
    profile = ctx.characterization.client.diurnal_fit.profile
    ks_by_window = {}
    for window in WINDOW_SWEEP:
        comparison = interarrival_ks_comparison(
            arrivals, trace.extent, profile, window=window,
            seed=EXPERIMENT_SEED + 5)
        ks_by_window[window] = comparison.ks_piecewise
        rows.append((f"window = {window:.0f}s: interarrival KS",
                     fmt(comparison.ks_piecewise), ""))
    ks_values = list(ks_by_window.values())
    checks.append(("all tested windows reproduce the marginal (KS < 0.05)",
                   max(ks_values) < 0.05))
    checks.append(("window choice barely matters (KS spread < 0.02)",
                   max(ks_values) - min(ks_values) < 0.02))

    # ------------------------------------------------------------------
    # 3. Zipf fitting method (rank regression variants + histogram
    #    regression vs maximum likelihood).
    # ------------------------------------------------------------------
    counts = ctx.sessions.sessions_per_client()
    counts = counts[counts > 0]
    logspaced = fit_zipf_rank(counts)
    all_ranks = fit_zipf_rank(counts, n_points=None)
    rows.append(("interest alpha: log-spaced ranks", fmt(logspaced.alpha),
                 "default method"))
    rows.append(("interest alpha: all ranks", fmt(all_ranks.alpha),
                 "tail-tie biased"))
    checks.append(("all-ranks regression overestimates the exponent "
                   "(rank-1 ties steepen the tail)",
                   all_ranks.alpha > logspaced.alpha))

    tps = ctx.sessions.transfers_per_session
    regression = fit_zipf_pmf(tps)
    mle = fit_zipf_mle(tps)
    rows.append(("transfers/session alpha: weighted regression",
                 fmt(regression.alpha), "the paper's 2002-style fit"))
    rows.append(("transfers/session alpha: maximum likelihood",
                 fmt(mle.alpha), "Clauset et al. estimator"))
    checks.append(("regression and MLE agree on transfers/session "
                   "(within 10%)",
                   abs(regression.alpha - mle.alpha)
                   <= 0.1 * mle.alpha))

    # ------------------------------------------------------------------
    # 4. Diurnal-profile resolution.
    # ------------------------------------------------------------------
    from ..distributions.fitting import fit_diurnal_profile
    fine = fit_diurnal_profile(arrivals, trace.extent, n_bins=96)
    coarse = fit_diurnal_profile(arrivals, trace.extent, n_bins=24)
    fine_hourly = fine.profile.bin_rates.reshape(24, 4).mean(axis=1)
    corr = float(np.corrcoef(fine_hourly, coarse.profile.bin_rates)[0, 1])
    rows.append(("diurnal profile 96-bin vs 24-bin correlation",
                 fmt(corr), "near 1"))
    checks.append(("profile shape is resolution-stable (corr > 0.98)",
                   corr > 0.98))

    return Experiment(
        id="ablation", title="Methodological ablations",
        paper_ref="DESIGN.md section 5 / paper Sections 3.4, 4.1, 4.3",
        rows=rows, checks=checks)
