"""Figure 20 — transfer bandwidth.

Histogram and CDF of per-transfer average bandwidth, in bits per second.
The shape to reproduce: two modes — client-bound spikes at the common
access-link speeds on the right, and a diffuse congestion-bound mode at
very low bandwidths covering roughly 10% of transfers.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from ..core.transfer_layer import CONGESTION_BOUND_THRESHOLD_BPS
from ..simulation.population import DEFAULT_ACCESS_TIERS
from .common import Experiment, ExperimentContext, fmt, get_context


def _spike_mass(bandwidths: np.ndarray, center: float,
                half_width_frac: float = 0.08) -> float:
    """Fraction of transfers within a relative window of a tier speed."""
    lo = center * (1.0 - half_width_frac)
    hi = center * (1.0 + half_width_frac)
    return float(np.mean((bandwidths >= lo) & (bandwidths <= hi)))


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 20 bimodal bandwidth distribution."""
    ctx = ctx or get_context()
    transfer = ctx.characterization.transfer
    bw = transfer.bandwidths[transfer.bandwidths > 0]
    marginal = Marginal(bw)
    x_cdf, cdf = marginal.cdf()

    congestion_ref = paper.TRANSFER_LAYER["congestion_bound_fraction"].value
    fraction = transfer.congestion_bound_fraction

    # Client-bound spikes: mass near each access tier (speed scaled by the
    # protocol-efficiency midpoint used by the network model).
    spikes = []
    for speed, _ in DEFAULT_ACCESS_TIERS[:4]:
        mass = _spike_mass(bw, speed * 0.92)
        spikes.append((speed, mass))

    rows = [
        ("congestion-bound fraction", fmt(fraction),
         f"~{congestion_ref}"),
        ("median bandwidth (bit/s)", fmt(marginal.median()),
         "modem-range"),
    ]
    for speed, mass in spikes:
        rows.append((f"mass near the {speed / 1000:.1f} kbit/s tier",
                     fmt(mass), "visible spike"))

    total_spike_mass = sum(mass for _, mass in spikes)
    checks = [
        ("congestion-bound fraction near the paper's ~10%",
         0.05 <= fraction <= 0.15),
        ("client-bound spikes carry substantial mass",
         total_spike_mass > 0.3),
        ("bimodal: a low-bandwidth mode exists below the slowest tier",
         float(np.mean(bw < CONGESTION_BOUND_THRESHOLD_BPS)) > 0.03),
        ("modem-era medians (under 64 kbit/s)",
         marginal.median() < 64_000),
    ]
    return Experiment(
        id="fig20", title="Transfer bandwidth (bimodal distribution)",
        paper_ref="Figure 20 / Section 5.4",
        rows=rows,
        series={"cdf": (x_cdf, cdf)},
        checks=checks)
