"""Figure 15 — marginal distribution of concurrent transfers.

Frequency, CDF, and CCDF of the number of simultaneously active transfers
— the server-load view of concurrency, closely tracking the active-client
marginal of Figure 3.
"""

from __future__ import annotations

import numpy as np

from ..analysis.marginals import Marginal
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 15 concurrent-transfer marginal."""
    ctx = ctx or get_context()
    char = ctx.characterization
    samples = char.transfer.concurrency_samples
    clients = char.client.concurrency_samples
    marginal = Marginal(samples)
    x_cdf, cdf = marginal.cdf()
    x_ccdf, ccdf = marginal.ccdf()

    # Figures 3 and 15 are "fairly similar"; correlate the two series.
    n = min(samples.size, clients.size)
    corr = float(np.corrcoef(samples[:n], clients[:n])[0, 1])

    rows = [
        ("mean concurrent transfers", fmt(marginal.mean()), ""),
        ("median concurrent transfers", fmt(marginal.median()), ""),
        ("peak concurrent transfers", fmt(marginal.percentile(100)),
         "~5000 at the paper's scale"),
        ("correlation with active-client series", fmt(corr),
         "fairly similar (high)"),
    ]
    checks = [
        ("wide variability: peak at least 5x the median",
         marginal.percentile(100) >= 5 * max(marginal.median(), 1.0)),
        ("transfer concurrency tracks client concurrency (corr > 0.9)",
         corr > 0.9),
        ("CCDF spans at least three decades",
         float(ccdf[ccdf > 0].min()) < 1e-3),
    ]
    return Experiment(
        id="fig15", title="Marginal distribution of concurrent transfers",
        paper_ref="Figure 15 / Section 5.1",
        rows=rows,
        series={"cdf": (x_cdf, cdf), "ccdf": (x_ccdf, ccdf)},
        checks=checks)
