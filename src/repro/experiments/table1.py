"""Table 1 — basic statistics of the trace.

The simulated trace is a scale model (about a twelfth of the paper's
session rate over the same 28 days), so absolute counts differ by roughly
that factor; the *relationships* — sessions per user, users per IP,
transfers per session, AS/country diversity — are the reproduction target.
"""

from __future__ import annotations

from .. import paper
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate Table 1 from the simulated trace."""
    ctx = ctx or get_context()
    s = ctx.characterization.summary
    t1 = paper.TABLE1

    sessions_per_user = s.n_sessions / s.n_users
    users_per_ip = s.n_users / s.n_ips
    transfers_per_session = s.n_transfers / s.n_sessions
    paper_spu = t1["n_sessions"].value / t1["n_users"].value
    paper_upi = t1["n_users"].value / t1["n_ips"].value
    paper_tps = t1["n_transfers"].value / t1["n_sessions"].value

    rows = [
        ("log period (days)", fmt(s.days), fmt(t1["days"].value)),
        ("live objects", str(s.n_objects), fmt(t1["n_objects"].value)),
        ("client ASes", str(s.n_ases), fmt(t1["n_ases"].value)),
        ("client IPs", str(s.n_ips), fmt(t1["n_ips"].value)),
        ("users", str(s.n_users), fmt(t1["n_users"].value)),
        ("sessions", str(s.n_sessions), "> " + fmt(t1["n_sessions"].value)),
        ("transfers", str(s.n_transfers), "> " + fmt(t1["n_transfers"].value)),
        ("content served (bytes)", fmt(s.bytes_served),
         "> " + fmt(t1["bytes_served"].value)),
        ("sessions per user", fmt(sessions_per_user), fmt(paper_spu)),
        ("users per IP", fmt(users_per_ip), fmt(paper_upi)),
        ("transfers per session", fmt(transfers_per_session), fmt(paper_tps)),
    ]
    checks = [
        ("28-day log period", abs(s.days - 28.0) < 0.1),
        ("exactly two live objects", s.n_objects == 2),
        ("about 1,000 client ASes", 500 <= s.n_ases <= 1_100),
        ("users per IP near the paper's ~1.9",
         1.5 <= users_per_ip <= 2.4),
        ("sessions per user near the paper's ~2.2",
         1.2 <= sessions_per_user <= 4.5),
        ("terabyte-scale content served", s.bytes_served > 1e11),
    ]
    notes = [
        "absolute counts are a scale model (~1/12 of the paper's session "
        "rate); ratios are the reproduction target",
        "transfers per session is lower than the paper's raw 3.7 because "
        "the generator uses the paper's own fitted Zipf(2.70) law, whose "
        "mean is ~1.9 — the paper's fit underweights its empirical tail",
    ]
    return Experiment(id="table1", title="Basic statistics of the trace",
                      paper_ref="Table 1", rows=rows, checks=checks,
                      notes=notes)
