"""Figure 4 — temporal behaviour of the number of active clients.

Three panels: mean active clients per 15-minute bin over the whole trace
(left), folded modulo one week (center), folded modulo one day (right).
The shape to reproduce: diurnal variation dominates, with the 4-11 am
window carrying a small fraction of the prime-time audience, and weekends
slightly busier than weekdays.
"""

from __future__ import annotations

import numpy as np

from ..units import FIFTEEN_MINUTES
from .common import Experiment, ExperimentContext, fmt, get_context


def _hour_means(daily_fold: np.ndarray) -> np.ndarray:
    """Collapse 15-minute phase bins to 24 hourly means."""
    return daily_fold.reshape(24, -1).mean(axis=1)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 4 temporal profiles."""
    ctx = ctx or get_context()
    client = ctx.characterization.client
    bins = client.concurrency_bins
    weekly = client.weekly_fold
    daily = client.daily_fold

    hours = _hour_means(daily)
    quiet = float(hours[4:11].mean())     # 4 am - 11 am
    prime = float(hours[19:24].mean())    # 7 pm - midnight
    # Weekend (Sun + Sat under the day-0-is-Sunday convention) vs weekdays.
    per_day = weekly.reshape(7, -1).mean(axis=1)
    weekend = float((per_day[0] + per_day[6]) / 2.0)
    weekday = float(per_day[1:6].mean())

    t_full = np.arange(bins.size) * FIFTEEN_MINUTES
    t_week = np.arange(weekly.size) * FIFTEEN_MINUTES
    t_day = np.arange(daily.size) * FIFTEEN_MINUTES

    rows = [
        ("mean active clients (4am-11am)", fmt(quiet), "considerably lower"),
        ("mean active clients (7pm-12am)", fmt(prime), ""),
        ("quiet/prime ratio", fmt(quiet / prime if prime else float("nan")),
         "small"),
        ("weekend/weekday audience ratio", fmt(weekend / weekday),
         "slightly above 1"),
    ]
    checks = [
        ("4-11 am window has a considerably smaller audience",
         quiet < 0.45 * prime),
        ("weekends are at least as busy as weekdays",
         weekend >= 0.95 * weekday),
        ("diurnal swing dominates weekly swing",
         (hours.max() - hours.min())
         > 1.5 * abs(weekend - weekday)),
    ]
    return Experiment(
        id="fig04", title="Temporal behaviour of active clients",
        paper_ref="Figure 4 / Section 3.2",
        rows=rows,
        series={"full": (t_full, bins), "weekly": (t_week, weekly),
                "daily": (t_day, daily)},
        checks=checks)
