"""Export regenerated figure data to plottable files.

Each experiment carries its figure's data as named ``(x, y)`` series;
:func:`export_all` writes them as two-column whitespace-separated ``.dat``
files (the format the paper's own gnuplot figures were drawn from),
together with an index and a ready-to-run gnuplot script per figure, so

    repro figures --outdir figures/
    cd figures && gnuplot fig07.gp

reproduces the plots without any Python plotting dependency.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .common import Experiment
from .runner import ALL_EXPERIMENTS, run_experiment

#: Series whose figures use logarithmic axes in the paper.
_LOG_LOG_HINTS = ("ccdf", "rank_freq", "frequency", "as_")


def _series_path(outdir: Path, experiment_id: str, name: str) -> Path:
    return outdir / f"{experiment_id}_{name}.dat"


def write_series(outdir: Path, experiment: Experiment) -> list[Path]:
    """Write every data series of ``experiment`` as a ``.dat`` file."""
    written = []
    for name, (x, y) in experiment.series.items():
        path = _series_path(outdir, experiment.id, name)
        xa = np.asarray(x, dtype=np.float64)
        ya = np.asarray(y, dtype=np.float64)
        with path.open("w", encoding="ascii") as stream:
            stream.write(f"# {experiment.title}\n")
            stream.write(f"# reproduces: {experiment.paper_ref}\n")
            stream.write(f"# series: {name}  ({xa.size} points)\n")
            stream.write("# x y\n")
            for xv, yv in zip(xa, ya, strict=True):
                if np.isnan(yv):
                    continue
                stream.write(f"{xv:.10g} {yv:.10g}\n")
        written.append(path)
    return written


def write_gnuplot_script(outdir: Path, experiment: Experiment) -> Path | None:
    """Write a gnuplot script plotting all of the experiment's series."""
    if not experiment.series:
        return None
    path = outdir / f"{experiment.id}.gp"
    log_scale = any(hint in name for name in experiment.series
                    for hint in _LOG_LOG_HINTS)
    lines = [
        f"# {experiment.title}",
        f"set title {experiment.title!r}",
        f"set output '{experiment.id}.png'",
        "set terminal png size 900,600",
    ]
    if log_scale:
        lines.append("set logscale xy")
    plot_parts = [
        f"'{_series_path(outdir, experiment.id, name).name}' "
        f"using 1:2 with linespoints title {name!r}"
        for name in experiment.series]
    lines.append("plot " + ", \\\n     ".join(plot_parts))
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return path


def export_all(outdir: str | Path,
               names: tuple[str, ...] = ALL_EXPERIMENTS) -> dict[str, list[Path]]:
    """Run the listed experiments and export all their figure data.

    Returns a mapping from experiment id to the files written.  An
    ``index.txt`` summarizing the exports is written alongside.
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    exported: dict[str, list[Path]] = {}
    index_lines = []
    for name in names:
        experiment = run_experiment(name)
        files = write_series(out, experiment)
        script = write_gnuplot_script(out, experiment)
        if script is not None:
            files.append(script)
        exported[name] = files
        index_lines.append(
            f"{experiment.id}: {experiment.title} "
            f"[{experiment.paper_ref}] -> "
            + (", ".join(p.name for p in files) if files else "(no series)"))
    (out / "index.txt").write_text("\n".join(index_lines) + "\n",
                                   encoding="ascii")
    return exported
