"""Figure 9 — number of sessions versus the timeout ``T_o``.

Sweeping the session timeout from small to large values, the session count
falls steeply at first and flattens beyond about 1,500 seconds — the
paper's justification for settling on ``T_o = 1,500``.
"""

from __future__ import annotations

import numpy as np

from ..core.sessionizer import session_count_for_timeouts
from .common import Experiment, ExperimentContext, fmt, get_context

#: The timeout grid swept (seconds), matching Figure 9's axis.
TIMEOUT_GRID = np.arange(100.0, 4001.0, 100.0)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 9 timeout sweep."""
    ctx = ctx or get_context()
    counts = session_count_for_timeouts(ctx.trace, TIMEOUT_GRID)

    def count_at(timeout: float) -> int:
        return int(counts[int(np.argmin(np.abs(TIMEOUT_GRID - timeout)))])

    n_100, n_1500, n_4000 = count_at(100), count_at(1500), count_at(4000)
    early_drop = (n_100 - n_1500) / n_100
    late_drop = (n_1500 - n_4000) / n_1500

    rows = [
        ("sessions at T_o = 100 s", str(n_100), ""),
        ("sessions at T_o = 1500 s", str(n_1500),
         "> 1.5M at the paper's scale"),
        ("sessions at T_o = 4000 s", str(n_4000), ""),
        ("relative drop 100 s -> 1500 s", fmt(early_drop), "steep"),
        ("relative drop 1500 s -> 4000 s", fmt(late_drop), "flat (< ~10%)"),
    ]
    checks = [
        ("session count decreases monotonically with the timeout",
         bool(np.all(np.diff(counts) <= 0))),
        ("curve flattens past 1500 s (late drop under 10%)",
         late_drop < 0.10),
        ("early region is much steeper than the late region",
         early_drop > 3 * late_drop),
        ("sessionizer agrees with the sweep at 1500 s",
         n_1500 == ctx.sessions.n_sessions),
    ]
    return Experiment(
        id="fig09", title="Number of sessions versus the timeout T_o",
        paper_ref="Figure 9 / Section 4.1",
        rows=rows,
        series={"sessions_vs_timeout": (TIMEOUT_GRID, counts.astype(float))},
        checks=checks)
