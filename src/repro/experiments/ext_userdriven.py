"""Extension — the user-driven alternative model, held against the trace.

The paper's footnote 13 admits the chosen generative model "is not
unique".  The natural alternative is the user-driven one stored-media
studies assume: every client visits on its own stationary schedule.  This
experiment builds that model with *everything matched* to the measured
trace — same interest Zipf, same session internals, same total session
rate — except the object-driven clock, then checks which characterization
axes break:

* object-driven axes (diurnal ACF peak, concurrency swing, interarrival
  marginal) must fail;
* user-side axes (interest skew, transfer-length fit, transfers per
  session) must survive.

That asymmetry is the paper's thesis, demonstrated generatively.
"""

from __future__ import annotations

import numpy as np

from ..analysis.autocorrelation import acf
from ..analysis.concurrency import sampled_concurrency
from ..baselines.renewal import RenewalConfig, UserDrivenRenewalGenerator
from ..core.validate import compare_workloads
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Generate the user-driven counterpart and compare axis by axis."""
    ctx = ctx or get_context()
    measured = ctx.trace
    model = ctx.calibration.model

    config = RenewalConfig(
        n_clients=model.n_clients,
        interest_alpha=model.interest_alpha,
        mean_session_rate=ctx.sessions.n_sessions / measured.extent,
        behavior=model.behavior(),
    )
    workload = UserDrivenRenewalGenerator(config).generate(
        days=measured.extent / 86_400.0, seed=EXPERIMENT_SEED + 13)
    candidate = workload.trace

    report = compare_workloads(measured, candidate)
    by_name = {p.name: p for p in report.parameters}

    step = 60.0
    day_lag = int(round(86_400.0 / step))
    measured_acf = ctx.characterization.client.acf_values
    cand_counts = sampled_concurrency(
        candidate.start, np.minimum(candidate.end, candidate.extent),
        extent=candidate.extent, step=step)
    cand_acf = acf(cand_counts, day_lag)
    measured_peak = float(measured_acf[day_lag])
    candidate_peak = float(cand_acf[day_lag])

    rows = [
        ("interest alpha (measured vs user-driven)",
         f"{fmt(by_name['interest_alpha'].value_a)} vs "
         f"{fmt(by_name['interest_alpha'].value_b)}", "survives"),
        ("length lognormal mu",
         f"{fmt(by_name['length_log_mu'].value_a)} vs "
         f"{fmt(by_name['length_log_mu'].value_b)}", "survives"),
        ("transfers/session alpha",
         f"{fmt(by_name['transfers_alpha'].value_a)} vs "
         f"{fmt(by_name['transfers_alpha'].value_b)}", "survives"),
        ("ACF at one day (measured)", fmt(measured_peak), "pronounced"),
        ("ACF at one day (user-driven)", fmt(candidate_peak), "absent"),
        ("diurnal profile correlation", fmt(report.diurnal_correlation),
         "breaks (near 0)"),
    ]
    checks = [
        ("user-side axes survive: interest alpha within 25%",
         by_name["interest_alpha"].relative_error <= 0.25),
        ("user-side axes survive: length mu within 10%",
         by_name["length_log_mu"].relative_error <= 0.10),
        ("user-side axes survive: transfers/session within 15%",
         by_name["transfers_alpha"].relative_error <= 0.15),
        ("object-driven axis breaks: the daily ACF peak vanishes",
         candidate_peak < 0.2 and measured_peak > 0.5),
        ("object-driven axis breaks: diurnal profiles decorrelate",
         report.diurnal_correlation < 0.4),
        ("the overall fidelity verdict is NOT FAITHFUL",
         not report.within(rtol=0.25, ks_max=0.1, corr_min=0.85)),
    ]
    return Experiment(
        id="ext_userdriven",
        title="The user-driven alternative model (extension)",
        paper_ref="Footnote 13 / Sections 1, 8 (object-driven thesis)",
        rows=rows, checks=checks,
        notes=["everything is matched except the clock: the axes that "
               "break are exactly the object-driven ones, which is the "
               "paper's central claim demonstrated generatively"])
