"""Per-figure/table experiment harness.

One module per artifact of the paper's evaluation (Tables 1-2,
Figures 2-20) plus two synthesis experiments (``duality``, ``selfcheck``)
and the design-choice ablations.  Every module exposes
``run(ctx=None) -> Experiment``; :mod:`~repro.experiments.runner` executes
them all and renders the paper-vs-measured comparison.
"""

from .common import Experiment, ExperimentContext, get_context, render_experiment
from .runner import ALL_EXPERIMENTS, run_all, run_experiment

__all__ = [
    "ALL_EXPERIMENTS",
    "Experiment",
    "ExperimentContext",
    "get_context",
    "render_experiment",
    "run_all",
    "run_experiment",
]
