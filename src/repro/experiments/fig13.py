"""Figure 13 — marginal distribution of transfers per session.

Frequency (fitted to a Zipf law with alpha = 2.70417), CDF, and CCDF.  The
shape to reproduce: a strongly skewed discrete distribution — most
sessions hold one transfer, with a power-law tail of sessions containing
hundreds.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 13 transfers-per-session marginal."""
    ctx = ctx or get_context()
    session = ctx.characterization.session
    tps = session.transfers_per_session.astype(np.float64)
    fit = session.transfers_fit
    marginal = Marginal(tps)
    x_freq, freq = marginal.frequency()
    x_ccdf, ccdf = marginal.ccdf()

    alpha_ref = paper.TABLE2["transfers_per_session_alpha"].value
    single = float(np.mean(tps == 1))

    rows = [
        ("Zipf alpha", fmt(fit.alpha), fmt(alpha_ref)),
        ("fit r^2", fmt(fit.r_squared), ""),
        ("fraction of single-transfer sessions", fmt(single), "majority"),
        ("mean transfers per session", fmt(marginal.mean()), ""),
        ("max transfers in one session", str(int(tps.max())), "~10^4 scale"),
    ]
    checks = [
        ("alpha within 15% of the paper's 2.70",
         abs(fit.alpha - alpha_ref) <= 0.15 * alpha_ref),
        ("strong power-law fit (r^2 > 0.9)", fit.r_squared > 0.9),
        ("majority of sessions hold a single transfer", single > 0.5),
        ("heavy tail: some session exceeds 50 transfers", tps.max() > 50),
    ]
    return Experiment(
        id="fig13", title="Marginal distribution of transfers per session",
        paper_ref="Figure 13 / Section 4.4",
        rows=rows,
        series={"frequency": (x_freq, freq), "ccdf": (x_ccdf, ccdf)},
        checks=checks)
