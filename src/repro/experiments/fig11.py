"""Figure 11 — marginal distribution of session ON times.

Frequency (fitted to a lognormal with mu = 5.23553, sigma = 1.54432),
CDF, and CCDF.  Section 8 adds the model-selection claim: lognormal, "not
as heavy as Pareto" — which we verify by comparing KS distances.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from ..distributions.goodness import ks_distance
from ..distributions.pareto import ParetoDistribution
from ..units import log_display_time
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 11 ON-time marginal and lognormal fit."""
    ctx = ctx or get_context()
    session = ctx.characterization.session
    fit = session.on_fit
    display = log_display_time(session.on_times)
    marginal = Marginal(display)
    x_ccdf, ccdf = marginal.ccdf()

    mu_ref = paper.SESSION_LAYER["session_on_log_mu"].value
    sigma_ref = paper.SESSION_LAYER["session_on_log_sigma"].value

    # Section 8's "not as heavy as Pareto": a Pareto matched at the median
    # should fit the sample worse than the lognormal.
    median = float(np.median(display))
    pareto = ParetoDistribution(alpha=1.0, xmin=max(median / 2.0, 1.0))
    ks_lognormal = session.on_gof.ks_statistic
    ks_pareto = ks_distance(display, pareto)

    rows = [
        ("lognormal mu", fmt(fit.mu), fmt(mu_ref)),
        ("lognormal sigma", fmt(fit.sigma), fmt(sigma_ref)),
        ("KS distance (lognormal)", fmt(ks_lognormal), "good fit"),
        ("KS distance (Pareto strawman)", fmt(ks_pareto), "worse"),
        ("median ON time (s)", fmt(median), ""),
        ("99th percentile ON time (s)", fmt(marginal.percentile(99)), ""),
    ]
    checks = [
        ("ON times are highly variable (sigma > 1)", fit.sigma > 1.0),
        ("lognormal sigma within 15% of the paper's",
         abs(fit.sigma - sigma_ref) <= 0.15 * sigma_ref),
        ("lognormal fits well (KS < 0.05)", ks_lognormal < 0.05),
        ("lognormal beats the Pareto strawman",
         ks_lognormal < ks_pareto),
    ]
    return Experiment(
        id="fig11", title="Marginal distribution of session ON times",
        paper_ref="Figure 11 / Sections 4.2, 8",
        rows=rows,
        series={"ccdf": (x_ccdf, ccdf)},
        checks=checks,
        notes=["the measured mu sits slightly below the paper's because "
               "session ON time emerges from transfers-per-session and "
               "gap/length draws rather than being planted directly"])
