"""Figure 2 — client diversity over ASes and countries.

Three panels: fraction of transfers by AS rank (left), fraction of IPs by
AS rank (center), fraction of transfers by country (right).  The shape to
reproduce: strongly skewed (Zipf-like) AS profiles spanning several decades,
and Brazil commanding the overwhelming share of transfers across ~11
countries.
"""

from __future__ import annotations

import numpy as np

from .common import Experiment, ExperimentContext, fmt, get_context, series_preview


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 2 diversity profiles."""
    ctx = ctx or get_context()
    topo = ctx.characterization.client.topology

    as_ranks = np.arange(1, topo.as_transfer_shares.size + 1, dtype=float)
    ip_ranks = np.arange(1, topo.as_ip_shares.size + 1, dtype=float)

    top_share = float(topo.as_transfer_shares[0])
    top10_share = float(topo.as_transfer_shares[:10].sum())
    countries = dict(topo.country_shares)
    br_share = countries.get("BR", 0.0)

    rows = [
        ("distinct client ASes", str(topo.n_ases), "1010"),
        ("distinct countries", str(topo.n_countries), "11"),
        ("top-AS transfer share", fmt(top_share), ""),
        ("top-10-AS transfer share", fmt(top10_share), ""),
        ("BR transfer share", fmt(br_share), "dominant"),
    ]
    for cc, share in topo.country_shares[:5]:
        rows.append((f"country {cc} transfer share", fmt(share), ""))

    decades = np.log10(topo.as_transfer_shares[0]
                       / topo.as_transfer_shares[-1])
    checks = [
        ("AS transfer shares span several decades", decades >= 2.0),
        ("AS profile is strongly skewed (top 10 ASes > 30% of transfers)",
         top10_share > 0.30),
        ("BR commands the dominant transfer share", br_share > 0.5
         and br_share == max(countries.values())),
        ("around eleven countries observed", 5 <= topo.n_countries <= 11),
    ]
    return Experiment(
        id="fig02", title="Client diversity over ASes and countries",
        paper_ref="Figure 2 / Section 3.1",
        rows=rows,
        series={
            "as_transfer_shares": (as_ranks, topo.as_transfer_shares),
            "as_ip_shares": (ip_ranks, topo.as_ip_shares),
        },
        checks=checks,
        notes=[f"AS share preview (rank, share): "
               f"{series_preview(as_ranks, topo.as_transfer_shares, 6)}"])
