"""Figure 3 — marginal distribution of the number of active clients.

Frequency, CDF, and CCDF of ``c(t)``, the active-client count sampled over
the trace.  The shape to reproduce: wide variability spanning from near
zero (the 4-11 am quiet window) to the prime-time peak, with a CCDF
spanning several decades.
"""

from __future__ import annotations

from ..analysis.marginals import Marginal
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 3 marginal of active clients."""
    ctx = ctx or get_context()
    client = ctx.characterization.client
    samples = client.concurrency_samples
    marginal = Marginal(samples)

    x_cdf, cdf = marginal.cdf()
    x_ccdf, ccdf = marginal.ccdf()

    peak = marginal.percentile(100)
    p50 = marginal.median()
    low = marginal.percentile(5)
    rows = [
        ("mean active clients", fmt(marginal.mean()), ""),
        ("median active clients", fmt(p50), ""),
        ("5th percentile", fmt(low), ""),
        ("peak active clients", fmt(peak), "~2500 at the paper's scale"),
        ("coefficient of variation",
         fmt(marginal.coefficient_of_variation()), "high"),
    ]
    checks = [
        ("wide variability: peak at least 5x the median",
         peak >= 5 * max(p50, 1.0)),
        ("quiet periods reach near-empty audience",
         low <= 0.2 * max(p50, 1.0)),
        ("CCDF spans at least three decades",
         float(ccdf[ccdf > 0].min()) < 1e-3),
    ]
    return Experiment(
        id="fig03", title="Marginal distribution of active clients",
        paper_ref="Figure 3 / Section 3.2",
        rows=rows,
        series={"cdf": (x_cdf, cdf), "ccdf": (x_ccdf, ccdf)},
        checks=checks,
        notes=["magnitudes are scaled by the scenario's session rate; the "
               "paper's peak is ~2,500 concurrent clients"])
