"""Figure 12 — marginal distribution of session OFF times.

Frequency, CDF, and CCDF of the time between a client's consecutive
sessions, fitted to an exponential (the paper: mean 203,150 s).  The
paper also observes "ripples" at whole-day multiples — clients revisiting
the show daily — which we test by comparing the OFF-time density near day
multiples against the density between them.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from ..units import DAY
from .common import Experiment, ExperimentContext, fmt, get_context


def _day_ripple_ratio(off_times: np.ndarray) -> float:
    """Density near day multiples over density at half-day offsets.

    Counts OFF times within +-3 h of k days (k = 1, 2, 3) versus within
    +-3 h of k + 0.5 days; a ratio above 1 indicates the daily-revisit
    ripples of Figure 12 (left).
    """
    window = 3 * 3600.0
    near = between = 0
    for k in (1.0, 2.0, 3.0):
        near += int(np.sum(np.abs(off_times - k * DAY) <= window))
        between += int(np.sum(np.abs(off_times - (k + 0.5) * DAY) <= window))
    if between == 0:
        return float("inf") if near else 1.0
    return near / between


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 12 OFF-time marginal and exponential fit."""
    ctx = ctx or get_context()
    session = ctx.characterization.session
    off = session.off_times
    fit = session.off_fit
    marginal = Marginal(off[off > 0])
    x_ccdf, ccdf = marginal.ccdf()

    mean_ref = paper.SESSION_LAYER["session_off_mean"].value
    ripple = _day_ripple_ratio(off)

    rows = [
        ("OFF-time pairs observed", str(off.size), ""),
        ("exponential mean (s)", fmt(fit.mean()), fmt(mean_ref)),
        ("exponential mean (days)", fmt(fit.mean() / DAY),
         fmt(mean_ref / DAY)),
        ("KS distance (exponential)",
         fmt(session.off_gof.ks_statistic), "good fit"),
        ("day-multiple ripple ratio", fmt(ripple), "> 1 (visible ripples)"),
    ]
    checks = [
        ("OFF times are day-scale (mean between 0.5 and 10 days)",
         0.5 * DAY < fit.mean() < 10 * DAY),
        ("exponential describes the tail (KS < 0.12)",
         session.off_gof.ks_statistic < 0.12),
        ("daily-revisit ripples present (ratio > 1.1)", ripple > 1.1),
    ]
    return Experiment(
        id="fig12", title="Marginal distribution of session OFF times",
        paper_ref="Figure 12 / Section 4.3",
        rows=rows,
        series={"ccdf": (x_ccdf, ccdf)},
        checks=checks,
        notes=["the OFF mean scales with the scenario's session rate and "
               "population; at 1/12 of the paper's rate it sits above the "
               "paper's 2.35 days"])
