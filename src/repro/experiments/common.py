"""Shared infrastructure for the experiment modules.

Experiments share one simulated trace per scenario (simulation,
sanitization, sessionization, and the full characterization are cached
in-process), so running all 30 experiments costs one simulation per
scenario plus the per-figure analysis.

Two scenarios are provided:

* ``default`` — the 28-day scale model (about a twelfth of the paper's
  session rate).  Used by almost every experiment.
* ``paper-rate`` — a shorter window at the paper's full arrival rate.
  Transfer interarrival statistics (Figure 17/18) depend on the absolute
  rate — the two-regime crossover sits near 100 s only at the paper's
  scale — so those experiments use this scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable

import numpy as np

from ..core.calibrate import CalibrationResult, calibrate_model
from ..core.characterize import WorkloadCharacterization, characterize
from ..core.sessionizer import Sessions, sessionize
from ..simulation.population import PopulationConfig
from ..simulation.scenario import LiveShowScenario, ScenarioConfig, SimulationResult
from ..trace.sanitize import SanitizationReport, sanitize_trace
from ..trace.store import Trace

#: Seed used by all cached experiment contexts.
EXPERIMENT_SEED = 20020510  # the paper's publication date


def default_scenario() -> ScenarioConfig:
    """The 28-day scale-model scenario behind most experiments."""
    return ScenarioConfig()


def paper_rate_scenario() -> ScenarioConfig:
    """A 7-day window at the paper's full session arrival rate (~0.62/s).

    Used where absolute rate matters (transfer interarrival regimes).
    The deep-night hourly shape lets the overnight arrival rate approach
    zero, producing the paper's far-tail interarrival regime — the
    "unpopular time intervals" of Section 5.2.
    """
    from ..distributions.diurnal import DEEP_NIGHT_HOURLY_SHAPE
    from ..simulation.show import (
        ShowSchedule,
        default_reality_show_events,
        nightly_maintenance_outages,
    )

    return ScenarioConfig(
        days=7.0,
        mean_session_rate=0.62,
        population=PopulationConfig(n_clients=200_000),
        hourly_shape=DEEP_NIGHT_HOURLY_SHAPE,
        schedule=ShowSchedule(events=default_reality_show_events()
                              + nightly_maintenance_outages()),
    )


class ExperimentContext:
    """Lazily computed, shared artifacts of one scenario run.

    Attributes are cached on first access: the raw simulation, the
    sanitized trace, the sessionization, the full characterization, and
    the calibrated model.
    """

    def __init__(self, config: ScenarioConfig,
                 seed: int = EXPERIMENT_SEED) -> None:
        self.config = config
        self.seed = seed

    @cached_property
    def simulation(self) -> SimulationResult:
        """The raw simulation result (trace plus ground truth)."""
        return LiveShowScenario(self.config).run(self.seed)

    @cached_property
    def _sanitized(self) -> tuple[Trace, SanitizationReport]:
        return sanitize_trace(self.simulation.trace)

    @property
    def trace(self) -> Trace:
        """The sanitized trace."""
        return self._sanitized[0]

    @property
    def sanitization(self) -> SanitizationReport:
        """What sanitization removed."""
        return self._sanitized[1]

    @cached_property
    def sessions(self) -> Sessions:
        """Sessionization at the paper's timeout."""
        return sessionize(self.trace)

    @cached_property
    def characterization(self) -> WorkloadCharacterization:
        """The full three-layer characterization."""
        return characterize(self.trace)

    @cached_property
    def calibration(self) -> CalibrationResult:
        """The Table 2 model calibrated from the trace."""
        return calibrate_model(self.trace, sessions=self.sessions)


_CONTEXTS: dict[str, ExperimentContext] = {}

_SCENARIOS: dict[str, Callable[[], ScenarioConfig]] = {
    "default": default_scenario,
    "paper-rate": paper_rate_scenario,
}


def get_context(name: str = "default") -> ExperimentContext:
    """Return the shared, cached context for a named scenario."""
    if name not in _SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(_SCENARIOS)}")
    if name not in _CONTEXTS:
        _CONTEXTS[name] = ExperimentContext(_SCENARIOS[name]())
    return _CONTEXTS[name]


@dataclass(frozen=True)
class Experiment:
    """The outcome of one reproduction experiment.

    Attributes
    ----------
    id:
        Short identifier (``table1``, ``fig07``, ...).
    title:
        Human-readable title.
    paper_ref:
        Which table/figure/section of the paper this reproduces.
    rows:
        ``(label, measured, paper)`` comparison rows; the ``paper`` column
        may be empty for quantities with no direct reference value.
    series:
        Named ``(x, y)`` data series — the regenerated figure data.
    checks:
        ``(description, passed)`` qualitative-shape assertions.
    notes:
        Caveats (scale substitutions, known deviations).
    """

    id: str
    title: str
    paper_ref: str
    rows: list[tuple[str, str, str]] = field(default_factory=list)
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every shape check passed."""
        return all(ok for _, ok in self.checks)


def fmt(value: float, digits: int = 4) -> str:
    """Format a measurement for a comparison row."""
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
        return f"{value:.3g}"
    return f"{value:.{digits}g}"


def series_preview(x: np.ndarray, y: np.ndarray,
                   n_points: int = 8) -> list[tuple[float, float]]:
    """Thin a series to a handful of log-spaced points for display."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size <= n_points:
        return list(zip(x.tolist(), y.tolist(), strict=True))
    idx = np.unique(np.logspace(0, np.log10(x.size), n_points
                                ).astype(np.int64)) - 1
    return [(float(x[i]), float(y[i])) for i in idx]


def render_experiment(exp: Experiment) -> str:
    """Render one experiment as plain text."""
    lines = [f"[{exp.id}] {exp.title}", f"  reproduces: {exp.paper_ref}"]
    if exp.rows:
        width = max(len(label) for label, _, _ in exp.rows)
        for label, measured, ref in exp.rows:
            line = f"    {label:<{width}}  {measured:>14}"
            if ref:
                line += f"   (paper: {ref})"
            lines.append(line)
    for description, ok in exp.checks:
        lines.append(f"    [{'PASS' if ok else 'FAIL'}] {description}")
    for note in exp.notes:
        lines.append(f"    note: {note}")
    return "\n".join(lines)
