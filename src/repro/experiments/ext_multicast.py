"""Extension — unicast versus multicast delivery of the live workload.

The paper's server supported multicast but ran unicast only (Section 2.3):
every concurrent viewer cost a separate stream.  For live content the
multicast saving is maximal — all recipients of a feed watch the same
instant — so the mean saving factor equals the mean per-feed concurrency.
This experiment quantifies it on the simulated trace, continuing the
direction of Chesire et al. [11] for the live case.
"""

from __future__ import annotations

from ..analysis.multicast import compare_unicast_multicast
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Compare unicast and multicast egress on the default trace."""
    ctx = ctx or get_context()
    comparison = compare_unicast_multicast(ctx.trace)

    # Cross-check: the mean saving equals mean concurrency over feeds that
    # are live, which the characterization already measured.
    mean_concurrency = float(
        ctx.characterization.transfer.concurrency_samples.mean())

    rows = [
        ("unicast mean egress (bit/s)", fmt(comparison.unicast_mean_bps),
         ""),
        ("unicast peak egress (bit/s)", fmt(comparison.unicast_peak_bps),
         ""),
        ("multicast mean egress (bit/s)",
         fmt(comparison.multicast_mean_bps), "one stream per live feed"),
        ("mean savings factor", fmt(comparison.mean_savings_factor), ""),
        ("peak savings factor", fmt(comparison.peak_savings_factor), ""),
        ("unicast bytes over trace", fmt(comparison.unicast_bytes),
         "paper: > 8 TB served unicast"),
        ("multicast bytes over trace", fmt(comparison.multicast_bytes), ""),
        ("mean concurrent transfers (cross-check)", fmt(mean_concurrency),
         "~= mean savings factor x feeds-live share"),
    ]
    checks = [
        ("multicast saves at least 5x on mean egress",
         comparison.mean_savings_factor > 5.0),
        ("peak savings exceed mean savings",
         comparison.peak_savings_factor >= comparison.mean_savings_factor),
        ("savings factor consistent with measured concurrency (within 30%)",
         0.7 * mean_concurrency
         <= comparison.mean_savings_factor * 2.0
         and comparison.mean_savings_factor
         <= 1.3 * max(mean_concurrency, 1.0)),
        ("multicast egress bounded by feeds x encoding rate",
         comparison.multicast_peak_bps <= 2 * 300_000.0 + 1e-6),
    ]
    return Experiment(
        id="ext_multicast",
        title="Unicast versus multicast delivery (extension)",
        paper_ref="Sections 2.3, 7 (Chesire et al. direction)",
        rows=rows, checks=checks,
        notes=["savings scale linearly with audience size: at the paper's "
               "12x larger concurrency the mean factor would be ~12x ours"])
