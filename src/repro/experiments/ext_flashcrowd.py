"""Extension — flash crowds and the cost of admission control.

The paper opens with the January 1999 VictoriaSecret.com webcast, where a
heavily advertised live event overwhelmed its delivery infrastructure
(Section 1).  This experiment reproduces that failure mode inside the
simulator: a finale-night event multiplies arrivals severalfold, the
server is provisioned for an ordinary week, and the replay counts the
live moments denied — then shows what capacity the GISMO-live planning
API would have recommended.
"""

from __future__ import annotations

import numpy as np

from ..core.calibrate import calibrate_model
from ..core.planning import required_capacity
from ..simulation.population import PopulationConfig
from ..simulation.replay import demand_peak, replay_trace
from ..simulation.scenario import LiveShowScenario, ScenarioConfig
from ..simulation.server import ServerConfig
from ..simulation.show import ShowEvent, ShowSchedule, default_reality_show_events
from ..trace.sanitize import sanitize_trace
from ..units import HOUR
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt

#: Arrival multiplier of the finale event.
FINALE_BOOST = 6.0


def _scenario(schedule: ShowSchedule) -> ScenarioConfig:
    return ScenarioConfig(days=7.0, mean_session_rate=0.05,
                          population=PopulationConfig(n_clients=20_000),
                          schedule=schedule, inject_spanning_entries=0)


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Simulate a finale flash crowd against ordinary-week provisioning."""
    ordinary = LiveShowScenario(
        _scenario(ShowSchedule())).run(EXPERIMENT_SEED + 9)
    ordinary_trace, _ = sanitize_trace(ordinary.trace)
    ordinary_peak = demand_peak(ordinary_trace)

    finale = ShowEvent("finale", day_of_week=6, start_hour=21.0,
                       duration=3 * HOUR, arrival_boost=FINALE_BOOST,
                       stickiness_boost=1.6)
    crowd = LiveShowScenario(_scenario(ShowSchedule(
        events=default_reality_show_events() + (finale,)))
    ).run(EXPERIMENT_SEED + 9)
    crowd_trace, _ = sanitize_trace(crowd.trace)
    crowd_peak = demand_peak(crowd_trace)

    # Provisioned for the ordinary week; hit by the finale crowd.
    result = replay_trace(crowd_trace,
                          config=ServerConfig(max_concurrent=ordinary_peak))
    denial = result.rejection_rate
    # When do the denials land?  (They should bracket the finale hours.)
    denied_saturday_evening = 0.0
    if result.rejected_times:
        times = np.asarray(result.rejected_times)
        in_finale = ((times % (7 * 24 * HOUR)) >= 6 * 24 * HOUR + 20 * HOUR)
        denied_saturday_evening = float(np.mean(in_finale))

    # Planning from the Table 2 model: its arrival profile is *daily*
    # periodic, so a one-off Saturday surge is averaged across the week's
    # seven days at that hour — the retained model structurally cannot
    # represent weekly flash events.
    daily_model = calibrate_model(crowd_trace).model
    daily_plan = required_capacity(daily_model, days=7.0,
                                   target_percentile=99.9, n_runs=2,
                                   seed=EXPERIMENT_SEED + 10)

    # Planning from a weekly-period profile captures the surge: fit the
    # arrival rate over 672 fifteen-minute weekly bins, regenerate
    # arrivals + sessions manually (GISMO with a weekly clock).
    from ..core.sessionizer import sessionize
    from ..distributions.fitting import fit_diurnal_profile
    from ..distributions.piecewise_poisson import (
        PiecewiseStationaryPoissonProcess,
    )
    from ..simulation.viewer import generate_sessions
    from ..units import WEEK

    sessions = sessionize(crowd_trace)
    arrivals = sessions.arrival_times()
    weekly_fit = fit_diurnal_profile(
        arrivals[arrivals < crowd_trace.extent], crowd_trace.extent,
        period=WEEK, n_bins=672)
    synth_arrivals = PiecewiseStationaryPoissonProcess(
        weekly_fit.profile).generate(7 * 24 * HOUR, EXPERIMENT_SEED + 11)
    # The finale also makes viewers stickier; the event schedule is part
    # of the planner's knowledge (the show's own programme), so its
    # stickiness multiplier is applied to the regenerated transfers.
    finale_schedule = ShowSchedule(
        events=default_reality_show_events() + (finale,))
    batch = generate_sessions(daily_model.behavior(), synth_arrivals,
                              stickiness=finale_schedule.stickiness_multiplier,
                              seed=EXPERIMENT_SEED + 12)
    keep = batch.start < 7 * 24 * HOUR
    from ..analysis.concurrency import sampled_concurrency
    weekly_demand = sampled_concurrency(
        batch.start[keep],
        batch.start[keep] + np.minimum(batch.duration[keep],
                                       7 * 24 * HOUR - batch.start[keep]),
        extent=7 * 24 * HOUR, step=60.0)
    weekly_capacity = int(np.ceil(np.percentile(weekly_demand, 99.9)))

    # Fair reference: the same percentile of the *realized* demand (the
    # absolute max is a single one-minute sample).
    realized_demand = sampled_concurrency(
        crowd_trace.start, np.minimum(crowd_trace.end, crowd_trace.extent),
        extent=crowd_trace.extent, step=60.0)
    realized_p999 = float(np.percentile(realized_demand, 99.9))

    rows = [
        ("ordinary-week peak demand", str(ordinary_peak), ""),
        ("finale-week peak demand", str(crowd_peak),
         f"~{FINALE_BOOST:.0f}x boost at the finale"),
        ("denial rate at ordinary provisioning", fmt(denial),
         "the VictoriaSecret failure mode"),
        ("share of denials in the finale window",
         fmt(denied_saturday_evening), "concentrated"),
        ("capacity from the daily-periodic Table 2 model",
         str(daily_plan.capacity), "misses the surge"),
        ("capacity from a weekly-period profile",
         str(weekly_capacity), "captures the surge"),
        ("realized 99.9th-percentile demand", fmt(realized_p999), ""),
        ("weekly-profile capacity / realized p99.9",
         fmt(weekly_capacity / realized_p999), "near 1"),
    ]
    checks = [
        ("the finale multiplies peak demand (>= 2x the ordinary week)",
         crowd_peak >= 2 * ordinary_peak),
        ("ordinary provisioning denies live requests during the finale",
         denial > 0.01),
        ("denials concentrate in the finale window (> 50%)",
         denied_saturday_evening > 0.5),
        ("the daily-periodic Table 2 model under-provisions for weekly "
         "events (< 50% of the realized p99.9)",
         daily_plan.capacity < 0.5 * realized_p999),
        ("a weekly-period profile recovers the surge "
         "(within 30% of the realized p99.9)",
         0.7 * realized_p999 <= weekly_capacity <= 1.3 * realized_p999),
    ]
    return Experiment(
        id="ext_flashcrowd",
        title="Flash crowd versus admission control (extension)",
        paper_ref="Section 1 (motivation: the 1999 webcast failure)",
        rows=rows, checks=checks,
        notes=["a structural finding: Table 2 retains a p = 24 h arrival "
               "profile, which averages a one-off weekly surge across the "
               "week and under-provisions by severalfold; planning for "
               "event-driven live content needs the event in the model "
               "(here, a weekly-period profile)"])
