"""Figure 8 — autocorrelation of the number of active clients.

The ACF of ``c(t)`` (one-minute samples) shows clear peaks at lags that
are multiples of 1,440 minutes — one day — with peak heights decaying as
the lag grows.
"""

from __future__ import annotations

import numpy as np

from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 8 autocorrelation function."""
    ctx = ctx or get_context()
    client = ctx.characterization.client
    acf = client.acf_values
    step_minutes = client.concurrency_step / 60.0
    lags = np.arange(acf.size) * step_minutes

    def at_minutes(minutes: float) -> float:
        idx = int(round(minutes / step_minutes))
        return float(acf[idx]) if idx < acf.size else float("nan")

    day1, day2, day3 = at_minutes(1440), at_minutes(2880), at_minutes(4320)
    half_day = at_minutes(720)

    rows = [
        ("dominant ACF peak lag (minutes)",
         fmt(client.acf_dominant_lag * step_minutes), "1440"),
        ("ACF at one day", fmt(day1), "pronounced peak"),
        ("ACF at two days", fmt(day2), "lower peak"),
        ("ACF at three days", fmt(day3), "lower still"),
        ("ACF at half a day (trough region)", fmt(half_day), "low"),
    ]
    checks = [
        ("dominant peak at one day (within one 15-min bin)",
         abs(client.acf_dominant_lag * step_minutes - 1440) <= 15),
        ("daily peaks are strong (ACF(1d) > 0.4)", day1 > 0.4),
        # Weekly show events (eviction night, weekend party) put a small
        # 7-day harmonic on top of the diurnal decay, so the decay check
        # compares first and third peaks rather than requiring strict
        # monotonicity.
        ("peaks decay with lag (ACF(1d) > ACF(3d) > 0)",
         day1 > day3 > 0),
        ("day peak exceeds the half-day trough", day1 > half_day + 0.1),
    ]
    return Experiment(
        id="fig08", title="Autocorrelation of the active-client count",
        paper_ref="Figure 8 / Section 3.2",
        rows=rows,
        series={"acf": (lags, acf)},
        checks=checks)
