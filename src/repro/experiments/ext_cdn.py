"""Extension — CDN relay placement on the live workload.

Section 1 of the paper names CDNs among the infrastructures whose capacity
planning needs live-workload characterization.  Because client mass
concentrates in a few ASes (Figure 2's Zipf profile), relays placed in the
top ASes absorb a disproportionate share of the unicast load: this
experiment traces that origin-egress curve and checks its concavity — the
quantitative version of "a handful of relays does most of the work".
"""

from __future__ import annotations

import numpy as np

from ..analysis.cdn import relay_placement_curve
from .common import Experiment, ExperimentContext, fmt, get_context

#: Relay deployment sizes swept.
RELAY_COUNTS = [0, 1, 3, 10, 30, 100]


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Sweep relay deployments over the top ASes.

    Uses the paper-rate scenario: relay aggregation only pays when an AS
    has many *simultaneous* viewers, which needs the paper's concurrency
    scale (the default scale model has ~18 concurrent transfers in total).
    """
    ctx = ctx or get_context("paper-rate")
    curve = relay_placement_curve(ctx.trace, RELAY_COUNTS)

    rows = []
    for placement in curve:
        rows.append((f"origin mean egress, {placement.n_relays} relays",
                     fmt(placement.origin_mean_bps),
                     f"savings {placement.savings_factor:.2f}x"))

    means = np.asarray([p.origin_mean_bps for p in curve])
    savings_at_10 = curve[3].savings_factor
    savings_at_100 = curve[5].savings_factor
    # Marginal value of the first 10 relays vs the next 90.
    gain_first_10 = means[0] - means[3]
    gain_next_90 = means[3] - means[5]

    checks = [
        ("origin egress decreases monotonically with relays",
         bool(np.all(np.diff(means) <= 1e-6))),
        ("ten relays already save substantially (> 1.5x)",
         savings_at_10 > 1.5),
        ("diminishing returns: the first 10 relays beat the next 90",
         gain_first_10 > gain_next_90),
        ("savings bounded by the all-multicast limit",
         savings_at_100 <= ctx.characterization.transfer
         .concurrency_samples.mean() + 1.0),
    ]
    return Experiment(
        id="ext_cdn",
        title="CDN relay placement on the live workload (extension)",
        paper_ref="Section 1 (CDN capacity planning) / Figure 2",
        rows=rows,
        series={"origin_egress_vs_relays": (
            np.asarray(RELAY_COUNTS, dtype=float), means)},
        checks=checks,
        notes=["the concavity comes directly from the Zipf AS profile of "
               "Figure 2: relay value is proportional to AS viewer mass",
               "runs on the paper-rate scenario: relay aggregation needs "
               "per-AS simultaneous viewers, which scales with the "
               "absolute audience size"])
