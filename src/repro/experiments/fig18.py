"""Figure 18 — temporal behaviour of transfer interarrival times.

Mean request interarrival per 15-minute bin over the whole trace, folded
modulo one week and one day.  The shape to reproduce: diurnal behaviour
dominates, with the early-morning window (5-11 am) showing considerably
longer interarrivals, and weekends slightly shorter interarrivals than
weekdays.
"""

from __future__ import annotations

import numpy as np

from ..units import FIFTEEN_MINUTES
from .common import Experiment, ExperimentContext, fmt, get_context
from .fig04 import _hour_means


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 18 temporal interarrival profiles."""
    ctx = ctx or get_context("paper-rate")
    transfer = ctx.characterization.transfer
    bins = transfer.interarrival_bins
    weekly = transfer.interarrival_weekly
    daily = transfer.interarrival_daily

    hours = _hour_means(daily)
    morning = float(np.nanmean(hours[5:11]))
    prime = float(np.nanmean(hours[19:24]))
    # Weekend-vs-weekday comparison over awake hours only (noon-midnight):
    # overnight bins hold few, enormous interarrivals whose sampling noise
    # would otherwise swamp the few-percent weekly effect.
    per_day = weekly.reshape(7, -1)
    bins_per_day = per_day.shape[1]
    awake = slice(bins_per_day // 2, bins_per_day)
    day_means = np.nanmean(per_day[:, awake], axis=1)
    weekend = float((day_means[0] + day_means[6]) / 2.0)
    weekday = float(np.nanmean(day_means[1:6]))

    t_full = np.arange(bins.size) * FIFTEEN_MINUTES
    t_week = np.arange(weekly.size) * FIFTEEN_MINUTES
    t_day = np.arange(daily.size) * FIFTEEN_MINUTES

    rows = [
        ("mean interarrival 5am-11am (s)", fmt(morning),
         "considerably longer"),
        ("mean interarrival 7pm-12am (s)", fmt(prime), "short"),
        ("morning/prime ratio", fmt(morning / prime), ">> 1"),
        ("weekend/weekday interarrival ratio", fmt(weekend / weekday),
         "slightly below 1"),
    ]
    checks = [
        ("early-morning interarrivals considerably longer (>2x prime time)",
         morning > 2 * prime),
        ("weekend interarrivals at most weekday-level",
         weekend <= 1.05 * weekday),
        ("diurnal swing dominates weekly swing",
         (np.nanmax(hours) - np.nanmin(hours))
         > 1.5 * abs(weekend - weekday)),
    ]
    return Experiment(
        id="fig18", title="Temporal behaviour of transfer interarrivals",
        paper_ref="Figure 18 / Section 5.2",
        rows=rows,
        series={"full": (t_full, bins), "weekly": (t_week, weekly),
                "daily": (t_day, daily)},
        checks=checks,
        notes=["runs on the paper-rate scenario for comparable absolute "
               "interarrival magnitudes"])
