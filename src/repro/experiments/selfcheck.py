"""GISMO self-check — generate, re-characterize, recover (Section 6).

The ultimate test of the generative model: calibrate a
:class:`~repro.core.model.LiveWorkloadModel` from the simulated trace,
generate a synthetic workload with GISMO-live, re-run the full
characterization pipeline on the synthetic trace, and verify the Table 2
parameters come back again.  This closes the paper's loop twice over
(world -> model -> synthetic world -> model).
"""

from __future__ import annotations

import numpy as np

from ..core.calibrate import calibrate_model
from ..core.gismo import LiveWorkloadGenerator
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context

#: Recovery tolerance across the double round trip.
ROUND_TRIP_RTOL = 0.20


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Run the generate-then-recharacterize round trip."""
    ctx = ctx or get_context()
    model = ctx.calibration.model

    workload = LiveWorkloadGenerator(model).generate(
        days=14, seed=EXPERIMENT_SEED + 4)
    recal = calibrate_model(workload.trace)
    recovered = recal.model

    pairs = [
        ("client interest Zipf alpha", model.interest_alpha,
         recovered.interest_alpha),
        ("transfers/session Zipf alpha", model.transfers_alpha,
         recovered.transfers_alpha),
        ("gap lognormal mu", model.gap_log_mu, recovered.gap_log_mu),
        ("gap lognormal sigma", model.gap_log_sigma,
         recovered.gap_log_sigma),
        ("length lognormal mu", model.length_log_mu,
         recovered.length_log_mu),
        ("length lognormal sigma", model.length_log_sigma,
         recovered.length_log_sigma),
    ]
    rows = [(label, fmt(rec), fmt(planted) + " (calibrated input)")
            for label, planted, rec in pairs]
    rows.append(("synthetic sessions generated", str(workload.n_sessions), ""))
    rows.append(("synthetic transfers generated",
                 str(workload.trace.n_transfers), ""))

    checks = [(f"{label} survives the round trip (within 20%)",
               abs(rec - planted) <= ROUND_TRIP_RTOL * abs(planted))
              for label, planted, rec in pairs]

    # The synthetic arrival profile must reproduce the diurnal shape.
    planted_profile = model.arrival_profile.bin_rates
    recovered_profile = recovered.arrival_profile.bin_rates
    n = min(planted_profile.size, recovered_profile.size)
    corr = float(np.corrcoef(planted_profile[:n], recovered_profile[:n])[0, 1])
    rows.append(("diurnal profile correlation", fmt(corr), "near 1"))
    checks.append(("diurnal profile shape survives (corr > 0.95)",
                   corr > 0.95))

    return Experiment(
        id="selfcheck",
        title="GISMO-live round trip: generate then re-characterize",
        paper_ref="Section 6",
        rows=rows, checks=checks)
