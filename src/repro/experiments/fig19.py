"""Figure 19 — marginal distribution of transfer lengths.

Frequency (fitted to a lognormal with mu = 4.383921, sigma = 1.427247),
CDF, and CCDF.  Section 5.3's point: the long tail reflects client
*stickiness* to the live object, not object sizes — live objects have no
size.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..analysis.marginals import Marginal
from ..units import log_display_time
from .common import Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 19 transfer-length marginal and fit."""
    ctx = ctx or get_context()
    transfer = ctx.characterization.transfer
    fit = transfer.length_fit
    display = log_display_time(transfer.lengths)
    marginal = Marginal(display)
    x_ccdf, ccdf = marginal.ccdf()

    mu_ref = paper.TABLE2["transfer_length_log_mu"].value
    sigma_ref = paper.TABLE2["transfer_length_log_sigma"].value

    rows = [
        ("lognormal mu", fmt(fit.mu), fmt(mu_ref)),
        ("lognormal sigma", fmt(fit.sigma), fmt(sigma_ref)),
        ("KS distance", fmt(transfer.length_gof.ks_statistic), "good fit"),
        ("median transfer length (s)", fmt(marginal.median()),
         fmt(float(np.exp(mu_ref)))),
        ("99.9th percentile (s)", fmt(marginal.percentile(99.9)),
         "multi-hour stickiness"),
    ]
    checks = [
        ("mu recovered within 15%", abs(fit.mu - mu_ref) <= 0.15 * mu_ref),
        ("sigma recovered within 15%",
         abs(fit.sigma - sigma_ref) <= 0.15 * sigma_ref),
        ("lognormal fits well (KS < 0.05)",
         transfer.length_gof.ks_statistic < 0.05),
        ("sticky tail: 99.9th percentile beyond an hour",
         marginal.percentile(99.9) > 3600),
    ]
    return Experiment(
        id="fig19", title="Marginal distribution of transfer lengths",
        paper_ref="Figure 19 / Section 5.3",
        rows=rows,
        series={"ccdf": (x_ccdf, ccdf)},
        checks=checks)
