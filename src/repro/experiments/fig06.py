"""Figure 6 — interarrivals from a piecewise-stationary Poisson process.

Section 3.4's experiment: generate arrivals from a sequence of 15-minute
stationary Poisson processes whose rates follow the measured diurnal
pattern, and show the resulting interarrival marginal is "surprisingly
similar" to the measured one (Figure 5) — while a single-rate Poisson
process is not.  We quantify "similar" with KS distances.
"""

from __future__ import annotations

from ..analysis.marginals import Marginal
from ..baselines.stationary_poisson import interarrival_ks_comparison
from ..distributions.piecewise_poisson import PiecewiseStationaryPoissonProcess
from ..units import log_display_time
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt, get_context


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Regenerate the Figure 6 model-vs-measurement comparison."""
    ctx = ctx or get_context()
    client = ctx.characterization.client
    arrivals = ctx.sessions.arrival_times()
    extent = ctx.trace.extent

    comparison = interarrival_ks_comparison(
        arrivals, extent, client.diurnal_fit.profile,
        seed=EXPERIMENT_SEED + 1)

    process = PiecewiseStationaryPoissonProcess(client.diurnal_fit.profile)
    synthetic = log_display_time(
        process.interarrivals(extent, EXPERIMENT_SEED + 2))
    marginal = Marginal(synthetic)
    x_ccdf, ccdf = marginal.ccdf()

    rows = [
        ("KS distance: piecewise-stationary Poisson",
         fmt(comparison.ks_piecewise), "visually indistinguishable"),
        ("KS distance: single-rate Poisson (strawman)",
         fmt(comparison.ks_stationary), "poor"),
        ("synthetic mean interarrival (s)", fmt(marginal.mean()), ""),
    ]
    checks = [
        ("piecewise-stationary model matches the measurement better",
         comparison.piecewise_wins),
        ("piecewise-stationary KS distance is small",
         comparison.ks_piecewise < 0.05),
        ("single-rate Poisson is clearly worse (at least 2x the distance)",
         comparison.ks_stationary > 2 * comparison.ks_piecewise),
    ]
    return Experiment(
        id="fig06",
        title="Interarrivals from a piecewise-stationary Poisson process",
        paper_ref="Figure 6 / Section 3.4",
        rows=rows,
        series={"synthetic_ccdf": (x_ccdf, ccdf)},
        checks=checks)
