"""Extension — QoS-sensitive abandonment (the paper's future work).

Sections 1 and 8 raise, without measuring, the correlation between viewing
time and delivered QoS: for stored media users abandon when quality drops
(they can come back); for live media the paper conjectures the coupling is
weaker, because the content cannot be revisited.

The simulation exposes that coupling as a knob
(``ScenarioConfig.qos_abandonment_factor``).  This experiment runs the
world under the paper's implicit assumption (no coupling) and under a
strong stored-media-like coupling, and shows what each does to the
observable workload — i.e., what a measurement study *would have seen* in
either regime:

* the congested-vs-clean mean transfer-length ratio (the direct signature);
* the fitted transfer-length lognormal (how much the headline Figure 19
  fit would shift).
"""

from __future__ import annotations

import numpy as np

from ..core.transfer_layer import CONGESTION_BOUND_THRESHOLD_BPS
from ..distributions.fitting import fit_lognormal
from ..simulation.population import PopulationConfig
from ..simulation.scenario import LiveShowScenario, ScenarioConfig
from ..trace.sanitize import sanitize_trace
from ..units import log_display_time
from .common import EXPERIMENT_SEED, Experiment, ExperimentContext, fmt

#: The stored-media-like coupling strength used for the contrast run.
STRONG_COUPLING = 0.35


def _scenario(factor: float) -> ScenarioConfig:
    return ScenarioConfig(
        days=7.0, mean_session_rate=0.05,
        population=PopulationConfig(n_clients=20_000),
        qos_abandonment_factor=factor,
        inject_spanning_entries=0)


def _observe(factor: float) -> dict[str, float]:
    result = LiveShowScenario(_scenario(factor)).run(EXPERIMENT_SEED + 8)
    trace, _ = sanitize_trace(result.trace)
    congested = trace.bandwidth_bps < CONGESTION_BOUND_THRESHOLD_BPS
    clean_mean = float(trace.duration[~congested].mean())
    congested_mean = float(trace.duration[congested].mean())
    fit = fit_lognormal(log_display_time(trace.duration))
    return {
        "ratio": congested_mean / clean_mean,
        "mu": fit.mu,
        "sigma": fit.sigma,
        "congested_fraction": float(np.mean(congested)),
    }


def run(ctx: ExperimentContext | None = None) -> Experiment:
    """Contrast the no-coupling and strong-coupling QoS regimes."""
    weak = _observe(1.0)
    strong = _observe(STRONG_COUPLING)

    rows = [
        ("congested/clean length ratio, no coupling", fmt(weak["ratio"]),
         "~1 (the paper's live conjecture)"),
        ("congested/clean length ratio, strong coupling",
         fmt(strong["ratio"]), f"~{STRONG_COUPLING} (stored-media-like)"),
        ("length lognormal mu, no coupling", fmt(weak["mu"]), "4.384"),
        ("length lognormal mu, strong coupling", fmt(strong["mu"]),
         "shifted down"),
        ("length lognormal sigma, no coupling", fmt(weak["sigma"]), ""),
        ("length lognormal sigma, strong coupling", fmt(strong["sigma"]),
         ""),
        ("congestion-bound fraction", fmt(weak["congested_fraction"]),
         "~0.1 in both runs"),
    ]
    checks = [
        ("no coupling leaves congested lengths unbiased (ratio in "
         "[0.85, 1.15])", 0.85 <= weak["ratio"] <= 1.15),
        ("strong coupling is clearly visible (ratio < 0.6)",
         strong["ratio"] < 0.6),
        ("headline length fit barely moves (mu shift < 0.2): a 10% "
         "congested share cannot distort Figure 19",
         abs(weak["mu"] - strong["mu"]) < 0.2),
        ("sigma stable across regimes",
         abs(weak["sigma"] - strong["sigma"]) < 0.15),
    ]
    return Experiment(
        id="ext_qos",
        title="QoS-sensitive abandonment (extension)",
        paper_ref="Sections 1, 8 (stated future work)",
        rows=rows, checks=checks,
        notes=["conclusion: even if live viewers abandoned congested "
               "streams as aggressively as stored-media viewers, the "
               "aggregate length distribution the paper fits would be "
               "nearly unchanged — the 10% congestion-bound share is too "
               "small to carry the signal; per-transfer QoS joins are "
               "required, which is presumably why the paper left it to "
               "future work"])
