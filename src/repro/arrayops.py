"""Segmented array operations.

The workload generators produce *per-session* quantities (transfer counts)
and *per-transfer* quantities (durations, interarrival gaps) and need to
combine them without Python-level loops over hundreds of thousands of
sessions.  These helpers implement the required segmented primitives: a
cumulative sum that restarts at each segment boundary, and expansion of
per-segment values to per-element ones.
"""

from __future__ import annotations

import numpy as np

from ._typing import FloatArray, IntArray


def segment_starts(lengths: np.ndarray) -> IntArray:
    """Start index of each segment in the flattened element array.

    ``lengths`` holds the element count of each segment; the result has the
    same length, with ``result[0] == 0``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise ValueError("lengths must be one-dimensional")
    if lengths.size and lengths.min() < 0:
        raise ValueError("segment lengths must be non-negative")
    starts = np.zeros(lengths.size, dtype=np.int64)
    if lengths.size > 1:
        np.cumsum(lengths[:-1], out=starts[1:])
    return starts


def expand_by_segment(per_segment: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Repeat each per-segment value by its segment length.

    Equivalent to ``np.repeat(per_segment, lengths)`` with shape checking.
    """
    per_segment = np.asarray(per_segment)
    lengths = np.asarray(lengths, dtype=np.int64)
    if per_segment.shape[0] != lengths.size:
        raise ValueError(
            f"per_segment has {per_segment.shape[0]} entries, "
            f"expected {lengths.size}")
    return np.repeat(per_segment, lengths)


def segmented_cumsum(values: np.ndarray, lengths: np.ndarray, *,
                     exclusive: bool = False) -> FloatArray:
    """Cumulative sum restarting at every segment boundary.

    Parameters
    ----------
    values:
        Flattened per-element values; total length must equal
        ``lengths.sum()``.
    lengths:
        Element count per segment (non-negative; zeros allowed).
    exclusive:
        When True each element gets the sum of the *preceding* elements in
        its segment (first element of each segment is 0); when False the sum
        includes the element itself.

    Examples
    --------
    >>> segmented_cumsum([1, 2, 3, 4, 5], [2, 3]).tolist()
    [1.0, 3.0, 3.0, 7.0, 12.0]
    >>> segmented_cumsum([1, 2, 3, 4, 5], [2, 3], exclusive=True).tolist()
    [0.0, 1.0, 0.0, 3.0, 7.0]
    """
    vals = np.asarray(values, dtype=np.float64)
    lens = np.asarray(lengths, dtype=np.int64)
    if vals.ndim != 1 or lens.ndim != 1:
        raise ValueError("values and lengths must be one-dimensional")
    if lens.size and lens.min() < 0:
        raise ValueError("segment lengths must be non-negative")
    total = int(lens.sum()) if lens.size else 0
    if vals.size != total:
        raise ValueError(
            f"values length ({vals.size}) must equal lengths.sum() ({total})")
    if vals.size == 0:
        return np.empty(0)
    running = np.cumsum(vals)
    nonempty = lens > 0
    starts = segment_starts(lens)[nonempty]
    # Total accumulated before each (non-empty) segment begins.
    base_per_segment = running[starts] - vals[starts]
    base = np.repeat(base_per_segment, lens[nonempty])
    inclusive = running - base
    if exclusive:
        return inclusive - vals
    return inclusive


def alternate_on_switch(switch: np.ndarray, lengths: np.ndarray, *,
                        first_value: np.ndarray, n_choices: int = 2) -> IntArray:
    """Track a per-segment state that flips between ``n_choices`` values.

    Models feed selection within a session: each segment (session) starts in
    state ``first_value[segment]``; whenever ``switch`` is True the state
    advances by one modulo ``n_choices``.  Vectorized via a segmented
    cumulative sum of switch indicators.

    Parameters
    ----------
    switch:
        Boolean per-element array; the first element of every segment is
        ignored (a session's first transfer uses the starting feed).
    lengths:
        Element count per segment.
    first_value:
        Starting state per segment, each in ``[0, n_choices)``.
    n_choices:
        Number of distinct states (live feeds).
    """
    if n_choices < 1:
        raise ValueError("n_choices must be positive")
    sw = np.asarray(switch, dtype=np.float64).copy()
    lens = np.asarray(lengths, dtype=np.int64)
    starts = segment_starts(lens)[lens > 0]
    if sw.size:
        sw[starts] = 0.0
    flips = segmented_cumsum(sw, lens)
    base = expand_by_segment(np.asarray(first_value, dtype=np.int64), lens)
    return ((base + flips.astype(np.int64)) % n_choices).astype(np.int64)
