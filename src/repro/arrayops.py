"""Segmented array operations.

The workload generators produce *per-session* quantities (transfer counts)
and *per-transfer* quantities (durations, interarrival gaps) and need to
combine them without Python-level loops over hundreds of thousands of
sessions.  These helpers implement the required segmented primitives: a
cumulative sum that restarts at each segment boundary, and expansion of
per-segment values to per-element ones.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

from ._typing import FloatArray, IntArray


def segment_starts(lengths: npt.ArrayLike) -> IntArray:
    """Start index of each segment in the flattened element array.

    ``lengths`` holds the element count of each segment; the result has the
    same length, with ``result[0] == 0``.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    if lens.ndim != 1:
        raise ValueError("lengths must be one-dimensional")
    if lens.size and lens.min() < 0:
        raise ValueError("segment lengths must be non-negative")
    starts = np.zeros(lens.size, dtype=np.int64)
    if lens.size > 1:
        np.cumsum(lens[:-1], out=starts[1:])
    return starts


def expand_by_segment(per_segment: npt.ArrayLike,
                      lengths: npt.ArrayLike) -> npt.NDArray[Any]:
    """Repeat each per-segment value by its segment length.

    Equivalent to ``np.repeat(per_segment, lengths)`` with shape checking.
    """
    seg = np.asarray(per_segment)
    lens = np.asarray(lengths, dtype=np.int64)
    if seg.shape[0] != lens.size:
        raise ValueError(
            f"per_segment has {seg.shape[0]} entries, "
            f"expected {lens.size}")
    return np.repeat(seg, lens)


def segmented_cumsum(values: npt.ArrayLike, lengths: npt.ArrayLike, *,
                     exclusive: bool = False) -> FloatArray:
    """Cumulative sum restarting at every segment boundary.

    Parameters
    ----------
    values:
        Flattened per-element values; total length must equal
        ``lengths.sum()``.
    lengths:
        Element count per segment (non-negative; zeros allowed).
    exclusive:
        When True each element gets the sum of the *preceding* elements in
        its segment (first element of each segment is 0); when False the sum
        includes the element itself.

    Examples
    --------
    >>> segmented_cumsum([1, 2, 3, 4, 5], [2, 3]).tolist()
    [1.0, 3.0, 3.0, 7.0, 12.0]
    >>> segmented_cumsum([1, 2, 3, 4, 5], [2, 3], exclusive=True).tolist()
    [0.0, 1.0, 0.0, 3.0, 7.0]
    """
    vals = np.asarray(values, dtype=np.float64)
    lens = np.asarray(lengths, dtype=np.int64)
    if vals.ndim != 1 or lens.ndim != 1:
        raise ValueError("values and lengths must be one-dimensional")
    if lens.size and lens.min() < 0:
        raise ValueError("segment lengths must be non-negative")
    total = int(lens.sum()) if lens.size else 0
    if vals.size != total:
        raise ValueError(
            f"values length ({vals.size}) must equal lengths.sum() ({total})")
    if vals.size == 0:
        return np.empty(0, dtype=np.float64)
    running = np.cumsum(vals)
    nonempty = lens > 0
    starts = segment_starts(lens)[nonempty]
    # Total accumulated before each (non-empty) segment begins.
    base_per_segment = running[starts] - vals[starts]
    base = np.repeat(base_per_segment, lens[nonempty])
    inclusive: FloatArray = running - base
    if exclusive:
        return inclusive - vals
    return inclusive


def segmented_running_max(values: npt.ArrayLike,
                          lengths: npt.ArrayLike) -> FloatArray:
    """Running maximum restarting at every segment boundary.

    The segmented counterpart of ``np.maximum.accumulate``: element ``i``
    of the result is the maximum of its segment's values up to and
    including position ``i``.  This is the primitive behind the
    sessionizer's silence-gap computation, where each client's transfers
    form one segment and the running maximum tracks the latest transfer
    end seen so far (transfers overlap, so the previous end is not the
    latest end).

    Implemented as an index-compacted Hillis–Steele doubling scan:
    ``ceil(log2(L))`` passes for a longest segment of ``L`` elements,
    where pass ``k`` only touches the elements at least ``2^k`` deep in
    their segment (a rapidly shrinking set when most segments are short).
    Each pass only combines values from within the same segment, so the
    result is bit-for-bit the same float as one of the inputs — no offset
    arithmetic that could perturb it.

    Parameters
    ----------
    values:
        Flattened per-element values; total length must equal
        ``lengths.sum()``.
    lengths:
        Element count per segment (non-negative; zeros allowed).

    Examples
    --------
    >>> segmented_running_max([1, 3, 2, 5, 4], [3, 2]).tolist()
    [1.0, 3.0, 3.0, 5.0, 5.0]
    """
    vals = np.asarray(values, dtype=np.float64)
    lens = np.asarray(lengths, dtype=np.int64)
    if vals.ndim != 1 or lens.ndim != 1:
        raise ValueError("values and lengths must be one-dimensional")
    if lens.size and lens.min() < 0:
        raise ValueError("segment lengths must be non-negative")
    total = int(lens.sum()) if lens.size else 0
    if vals.size != total:
        raise ValueError(
            f"values length ({vals.size}) must equal lengths.sum() ({total})")
    if vals.size == 0:
        return np.empty(0, dtype=np.float64)
    return _scan_running_max(vals, segment_starts(lens)[lens > 0])


def _scan_running_max(values: FloatArray, first_positions: IntArray, *,
                      overwrite: bool = False) -> FloatArray:
    """Doubling-scan core of :func:`segmented_running_max`.

    ``first_positions`` holds the index of each non-empty segment's first
    element (``values`` is the flattened segment concatenation).  Shared
    with the sessionizer, which already has the first positions from the
    trace's cached client grouping.  With ``overwrite=True`` the scan
    runs in place, consuming ``values``.

    After k passes ``out[i]`` holds ``max(values[i-2^k+1 .. i] ∩
    segment)``; elements shallower than ``2^k`` in their segment are
    final.  Pass 1 is a single unguarded contiguous maximum against a
    snapshot whose segment-crossing sources are poisoned to ``-inf``
    (``max(x, -inf) == x``, so first-of-segment elements pass through
    bit-for-bit).  Later passes work on the surviving index set only —
    the elements at least ``shift = 2^k`` deep, tracked by the boolean
    membership array ``deep``, which doubles along with the window:
    ``offset[i] >= 2*shift`` ⇔ ``deep[i] and deep[i - shift]``.  Depth
    ≥ shift also guarantees ``i - shift`` is in the same segment, and
    the right-hand gathers complete before the scatter, giving the
    synchronous (snapshot) scan step despite the in-place update.
    """
    vals = np.asarray(values, dtype=np.float64)
    # A dtype-converting asarray already produced a private buffer.
    out = vals if (overwrite or vals is not values) else vals.copy()
    if out.size < 2:
        return out
    deep = np.ones(out.size, dtype=bool)
    deep[first_positions] = False
    snapshot = out.copy()
    inner = first_positions[first_positions > 0]
    snapshot[inner - 1] = -np.inf
    np.maximum(out[1:], snapshot[:-1], out=out[1:])
    # deep2[i] ⇔ offset[i] >= 2 ⇔ both i and i-1 are non-first.
    deep2 = np.zeros(out.size, dtype=bool)
    np.logical_and(deep[1:], deep[:-1], out=deep2[1:])
    deep = deep2
    idx = np.flatnonzero(deep)
    shift = 2
    while idx.size:
        out[idx] = np.maximum(out[idx], out[idx - shift])
        deeper = deep[idx - shift]
        shift <<= 1
        idx = idx[deeper]
        if idx.size:
            deep = np.zeros(out.size, dtype=bool)
            deep[idx] = True
    return out


def alternate_on_switch(switch: npt.ArrayLike, lengths: npt.ArrayLike, *,
                        first_value: npt.ArrayLike,
                        n_choices: int = 2) -> IntArray:
    """Track a per-segment state that flips between ``n_choices`` values.

    Models feed selection within a session: each segment (session) starts in
    state ``first_value[segment]``; whenever ``switch`` is True the state
    advances by one modulo ``n_choices``.  Vectorized via a segmented
    cumulative sum of switch indicators.

    Parameters
    ----------
    switch:
        Boolean per-element array; the first element of every segment is
        ignored (a session's first transfer uses the starting feed).
    lengths:
        Element count per segment.
    first_value:
        Starting state per segment, each in ``[0, n_choices)``.
    n_choices:
        Number of distinct states (live feeds).
    """
    if n_choices < 1:
        raise ValueError("n_choices must be positive")
    sw = np.asarray(switch, dtype=np.float64).copy()
    lens = np.asarray(lengths, dtype=np.int64)
    starts = segment_starts(lens)[lens > 0]
    if sw.size:
        sw[starts] = 0.0
    flips = segmented_cumsum(sw, lens)
    base = expand_by_segment(np.asarray(first_value, dtype=np.int64), lens)
    return ((base + flips.astype(np.int64)) % n_choices).astype(np.int64)
