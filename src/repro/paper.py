"""Reference values reported by the paper, in one place.

Every number the reproduction compares against — Table 1 statistics,
Table 2 generative-model parameters, and the tail indices read off
Figure 17 — is recorded here with its source, so experiments, reports, and
EXPERIMENTS.md all cite the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperReference:
    """A single reference value with its provenance."""

    value: float
    source: str
    note: str = ""


#: Table 1 — basic statistics of the paper's trace.
TABLE1 = {
    "days": PaperReference(28, "Table 1", "log period"),
    "n_objects": PaperReference(2, "Table 1", "live objects"),
    "n_ases": PaperReference(1_010, "Table 1", "client ASes"),
    "n_ips": PaperReference(364_184, "Table 1", "client IPs"),
    "n_users": PaperReference(691_889, "Table 1", "users (player IDs)"),
    "n_sessions": PaperReference(1_500_000, "Table 1", "> 1.5 million"),
    "n_transfers": PaperReference(5_500_000, "Table 1", "> 5.5 million"),
    "bytes_served": PaperReference(8e12, "Table 1", "> 8 TB"),
    "n_countries": PaperReference(11, "Section 3.1"),
}

#: Table 2 — the retained generative-model variables.
TABLE2 = {
    "interest_alpha_sessions": PaperReference(
        0.4704, "Figure 7 (right) / Table 2",
        "Zipf exponent of sessions-per-client interest profile"),
    "interest_alpha_transfers": PaperReference(
        0.7194, "Figure 7 (left)",
        "Zipf exponent of transfers-per-client interest profile"),
    "transfers_per_session_alpha": PaperReference(
        2.70417, "Figure 13 / Table 2",
        "Zipf exponent of transfers per session"),
    "intra_arrival_log_mu": PaperReference(
        4.89991, "Figure 14 / Table 2",
        "lognormal mu of intra-session transfer interarrivals"),
    "intra_arrival_log_sigma": PaperReference(
        1.32074, "Figure 14 / Table 2",
        "lognormal sigma of intra-session transfer interarrivals"),
    "transfer_length_log_mu": PaperReference(
        4.383921, "Figure 19 / Table 2", "lognormal mu of transfer lengths"),
    "transfer_length_log_sigma": PaperReference(
        1.427247, "Figure 19 / Table 2",
        "lognormal sigma of transfer lengths"),
    "arrival_period_hours": PaperReference(
        24.0, "Table 2", "period of the mean-arrival-rate profile"),
}

#: Session-layer fits outside Table 2.
SESSION_LAYER = {
    "session_on_log_mu": PaperReference(
        5.23553, "Figure 11", "lognormal mu of session ON times"),
    "session_on_log_sigma": PaperReference(
        1.54432, "Figure 11", "lognormal sigma of session ON times"),
    "session_off_mean": PaperReference(
        203_150.0, "Figure 12 / Section 4.3",
        "exponential mean of session OFF times, seconds"),
    "session_timeout": PaperReference(
        1_500.0, "Section 4.1", "chosen session timeout T_o, seconds"),
}

#: Transfer-layer observations.
TRANSFER_LAYER = {
    "interarrival_tail_body_alpha": PaperReference(
        2.8, "Section 5.2 / Figure 17",
        "tail index of transfer interarrivals below ~100 s"),
    "interarrival_tail_tail_alpha": PaperReference(
        1.0, "Section 5.2 / Figure 17",
        "tail index of transfer interarrivals above ~100 s"),
    "interarrival_tail_breakpoint": PaperReference(
        100.0, "Section 5.2", "regime crossover, seconds"),
    "congestion_bound_fraction": PaperReference(
        0.10, "Section 5.4 / Figure 20",
        "fraction of congestion-bound transfers"),
    "acf_daily_lag_minutes": PaperReference(
        1_440.0, "Figure 8", "first diurnal autocorrelation peak"),
}

#: Overload screening thresholds (Section 2.4).
SANITIZATION = {
    "cpu_threshold": PaperReference(0.10, "Section 2.4"),
    "overload_time_fraction_max": PaperReference(
        1e-4, "Section 2.4", "utilization < 10% over 99.99% of time"),
    "overload_transfer_fraction_max": PaperReference(
        1e-2, "Section 2.4", "load < 10% for over 99% of transfers"),
}


def all_references() -> dict[str, PaperReference]:
    """Every reference constant keyed ``<group>.<name>``."""
    groups = {
        "table1": TABLE1,
        "table2": TABLE2,
        "session": SESSION_LAYER,
        "transfer": TRANSFER_LAYER,
        "sanitization": SANITIZATION,
    }
    return {f"{group}.{name}": ref
            for group, table in groups.items()
            for name, ref in table.items()}
