"""Baseline workload models the paper contrasts against.

* :mod:`~repro.baselines.stored_media` — a classic (pre-live) GISMO-style
  stored-media workload: user-driven accesses to a catalogue of
  pre-recorded objects with Zipf object popularity.  Used to exhibit the
  paper's central *duality*: stored access is user driven with Zipf object
  popularity; live access is object driven with Zipf client interest
  (Sections 3.5 and 8).
* :mod:`~repro.baselines.stationary_poisson` — the single-rate Poisson
  client arrival model of prior stored-media studies (Almeida et al. [3]),
  which the paper shows is inadequate for live workloads without the
  piecewise-stationary extension (Section 3.4).
* :mod:`~repro.baselines.renewal` — the *user-driven* alternative
  generative model (the paper's footnote 13): per-client stationary
  Poisson visiting, everything else matched — the controlled counterpart
  that fails on exactly the object-driven axes.
"""

from .renewal import RenewalConfig, UserDrivenRenewalGenerator
from .stationary_poisson import StationaryPoissonBaseline, interarrival_ks_comparison
from .stored_media import StoredMediaConfig, StoredMediaGenerator, StoredMediaWorkload

__all__ = [
    "RenewalConfig",
    "StationaryPoissonBaseline",
    "StoredMediaConfig",
    "StoredMediaGenerator",
    "StoredMediaWorkload",
    "UserDrivenRenewalGenerator",
    "interarrival_ks_comparison",
]
