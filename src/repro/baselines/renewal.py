"""The user-driven alternative generative model.

The paper's generative model is *object driven*: a global non-stationary
clock (the show) emits sessions, and a Zipf interest profile assigns them
to clients.  Footnote 13 notes the model "is not unique — indeed, we have
toyed with other models".  The natural alternative is *user driven*: each
client independently decides when to visit, as stored-content models
assume.  :class:`UserDrivenRenewalGenerator` implements that alternative
faithfully:

* client ``c`` initiates sessions by its own homogeneous Poisson process
  with rate proportional to its Zipf interest weight (so the interest
  profile and the total session rate are *identical* to the object-driven
  model's);
* session internals (transfers per session, gaps, lengths) use the very
  same :class:`~repro.simulation.viewer.SessionBehavior`.

Everything matches except the clock — which makes the comparison
experiment (``ext_userdriven``) a controlled demonstration of the paper's
thesis: the axes on which this model fails against a live trace are
exactly the object-driven ones (diurnal concurrency, the ACF's daily
peaks, the interarrival marginal), while the user-side axes (interest
skew, stickiness, session structure) survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import SeedLike
from ..core.gismo import GismoWorkload, _synthetic_client_table
from ..distributions.zipf import ZipfLaw
from ..errors import ConfigError, GenerationError
from ..rng import make_rng, spawn
from ..simulation.viewer import SessionBehavior, generate_sessions
from ..trace.store import Trace
from ..units import DAY


@dataclass(frozen=True)
class RenewalConfig:
    """Parameters of the user-driven renewal model.

    Attributes
    ----------
    n_clients:
        Client population size.
    interest_alpha:
        Zipf exponent of per-client session rates (matching the
        object-driven model's interest profile).
    mean_session_rate:
        Total session arrival rate across all clients, sessions/second.
    behavior:
        Session-internal behaviour (same defaults as the live model).
    """

    n_clients: int = 50_000
    interest_alpha: float = 0.4704
    mean_session_rate: float = 0.05
    behavior: SessionBehavior = field(default_factory=SessionBehavior)

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigError(f"n_clients must be positive, got {self.n_clients}")
        if self.interest_alpha < 0:
            raise ConfigError("interest_alpha must be non-negative")
        if self.mean_session_rate <= 0:
            raise ConfigError("mean_session_rate must be positive")


class UserDrivenRenewalGenerator:
    """Generates workloads under the user-driven (stationary) assumption.

    Parameters
    ----------
    config:
        Model parameters; see :class:`RenewalConfig`.
    """

    def __init__(self, config: RenewalConfig | None = None) -> None:
        self.config = config or RenewalConfig()

    def generate(self, days: float, seed: SeedLike = None) -> GismoWorkload:
        """Generate a workload spanning ``days`` days.

        Each client's sessions arrive by an independent homogeneous
        Poisson process; conditional on its count, a client's session
        times are i.i.d. uniform over the window — which is how they are
        drawn, exactly.
        """
        if days <= 0:
            raise GenerationError(f"days must be positive, got {days}")
        cfg = self.config
        rng = make_rng(seed)
        count_rng, time_rng, behavior_rng = spawn(rng, 3)
        duration = days * DAY

        # Per-client session rates proportional to the interest profile.
        weights = ZipfLaw(cfg.interest_alpha, cfg.n_clients).probabilities()
        rates = cfg.mean_session_rate * weights
        counts = count_rng.poisson(rates * duration)
        total = int(counts.sum())

        session_client = np.repeat(
            np.arange(cfg.n_clients, dtype=np.int64), counts)
        arrivals = time_rng.random(total) * duration
        order = np.argsort(arrivals, kind="stable")
        arrivals = arrivals[order]
        session_client = session_client[order]

        batch = generate_sessions(cfg.behavior, arrivals,
                                  seed=behavior_rng)
        keep = batch.start < duration
        starts = batch.start[keep]
        durations = np.minimum(batch.duration[keep], duration - starts)
        transfer_session = batch.session_index[keep]
        transfer_client = session_client[transfer_session]

        sort = np.argsort(starts, kind="stable")
        trace = Trace(
            clients=_synthetic_client_table(cfg.n_clients),
            client_index=transfer_client[sort],
            object_id=batch.object_id[keep][sort],
            start=starts[sort],
            duration=durations[sort],
            extent=duration,
        )
        return GismoWorkload(
            trace=trace,
            session_arrivals=arrivals,
            session_client=session_client,
            transfer_session=transfer_session[sort],
        )
