"""Stored-media workload baseline: the pre-live GISMO model.

Accesses to *stored* streaming objects (news clips, trailers, lectures) are
user driven: each request is a user choosing an object, with the classic
findings of the stored-media literature the paper surveys (Section 7):

* Zipf-like *object popularity* (Chesire et al. [11]);
* small objects with a heavy-tailed size distribution;
* frequent partial accesses — early stoppage of transfers
  (Acharya and Smith [2] report nearly half);
* approximately stationary Poisson session arrivals within observation
  periods (Almeida et al. [3]).

The generator emits the same :class:`~repro.trace.store.Trace` type as the
live generator, so identical analysis code runs on both — which is exactly
how the duality experiment contrasts them: fit a Zipf over *objects* and
over *clients* in each workload and watch the roles swap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray, SeedLike
from ..distributions.lognormal import LognormalDistribution
from ..distributions.zipf import ZipfLaw
from ..errors import ConfigError, GenerationError
from ..rng import make_rng, spawn
from ..trace.store import ClientTable, Trace
from ..units import DAY


@dataclass(frozen=True)
class StoredMediaConfig:
    """Parameters of the stored-media baseline workload.

    Attributes
    ----------
    n_objects:
        Catalogue size (distinct pre-recorded clips).
    popularity_alpha:
        Zipf exponent of object popularity (stored-media studies report
        Zipf-like popularity; 0.73 is a typical web value).
    n_clients:
        Client population size.  Clients choose objects; their own request
        counts are *not* Zipf-skewed by construction — that is the point
        of the duality.
    request_rate:
        Stationary Poisson request rate (requests per second).
    size_log_mu, size_log_sigma:
        Lognormal parameters of object durations in seconds (mostly small
        clips with a heavy tail).
    partial_access_prob:
        Probability a request stops early (the paper's related work:
        nearly half of stored-video requests are partial).
    partial_fraction_lo, partial_fraction_hi:
        Uniform range of the fraction watched on a partial access.
    encoding_rate_bps:
        Constant encoding rate used to fill the bandwidth column.
    """

    n_objects: int = 1_000
    popularity_alpha: float = 0.73
    n_clients: int = 5_000
    request_rate: float = 0.05
    size_log_mu: float = 4.5    # median ~90 s clips
    size_log_sigma: float = 1.2
    partial_access_prob: float = 0.5
    partial_fraction_lo: float = 0.05
    partial_fraction_hi: float = 0.8
    encoding_rate_bps: float = 250_000.0

    def __post_init__(self) -> None:
        if self.n_objects < 1 or self.n_clients < 1:
            raise ConfigError("n_objects and n_clients must be positive")
        if self.popularity_alpha < 0:
            raise ConfigError("popularity_alpha must be non-negative")
        if self.request_rate <= 0:
            raise ConfigError("request_rate must be positive")
        if self.size_log_sigma <= 0:
            raise ConfigError("size_log_sigma must be positive")
        if not 0.0 <= self.partial_access_prob <= 1.0:
            raise ConfigError("partial_access_prob must be in [0, 1]")
        if not (0.0 < self.partial_fraction_lo
                <= self.partial_fraction_hi <= 1.0):
            raise ConfigError(
                "need 0 < partial_fraction_lo <= partial_fraction_hi <= 1")
        if self.encoding_rate_bps <= 0:
            raise ConfigError("encoding_rate_bps must be positive")


@dataclass(frozen=True)
class StoredMediaWorkload:
    """A generated stored-media workload plus its catalogue ground truth.

    Attributes
    ----------
    trace:
        The workload as a trace (``object_id`` indexes the catalogue).
    object_sizes:
        Full duration of each catalogue object, in seconds.
    """

    trace: Trace
    object_sizes: FloatArray = field(repr=False)

    def object_request_counts(self) -> IntArray:
        """Requests per catalogue object (the popularity profile)."""
        return np.bincount(self.trace.object_id,
                           minlength=self.object_sizes.size).astype(np.int64)


def _stored_client_table(n_clients: int) -> ClientTable:
    ids = [f"stored-{i:06d}" for i in range(n_clients)]
    ips = [f"172.16.{(i >> 8) & 255}.{i & 255}" for i in range(n_clients)]
    return ClientTable(player_ids=ids, ips=ips,
                       as_numbers=np.zeros(n_clients, dtype=np.int64),
                       countries=[""] * n_clients)


class StoredMediaGenerator:
    """Generates stored-media (user-driven) workloads.

    Parameters
    ----------
    config:
        Baseline parameters; see :class:`StoredMediaConfig`.
    """

    def __init__(self, config: StoredMediaConfig | None = None) -> None:
        self.config = config or StoredMediaConfig()

    def generate(self, days: float,
                 seed: SeedLike = None) -> StoredMediaWorkload:
        """Generate a stored-media workload spanning ``days`` days.

        Requests arrive by a stationary Poisson process; each picks a
        client uniformly (user-driven: no planted client skew) and an
        object by Zipf popularity; the transfer length is the object's
        full duration or a partial prefix.
        """
        if days <= 0:
            raise GenerationError(f"days must be positive, got {days}")
        cfg = self.config
        rng = make_rng(seed)
        (arrival_rng, size_rng, client_rng, object_rng,
         partial_rng) = spawn(rng, 5)
        duration = days * DAY

        object_sizes = LognormalDistribution(
            cfg.size_log_mu, cfg.size_log_sigma).sample(
                cfg.n_objects, size_rng)

        n_requests = int(arrival_rng.poisson(cfg.request_rate * duration))
        starts = np.sort(arrival_rng.random(n_requests) * duration)

        clients = client_rng.integers(0, cfg.n_clients, size=n_requests)
        objects = ZipfLaw(cfg.popularity_alpha, cfg.n_objects).sample(
            n_requests, object_rng) - 1

        lengths = object_sizes[objects].copy()
        partial = partial_rng.random(n_requests) < cfg.partial_access_prob
        fractions = partial_rng.uniform(cfg.partial_fraction_lo,
                                        cfg.partial_fraction_hi,
                                        size=n_requests)
        lengths[partial] *= fractions[partial]
        lengths = np.minimum(lengths, duration - starts)

        trace = Trace(
            clients=_stored_client_table(cfg.n_clients),
            client_index=clients,
            object_id=objects,
            start=starts,
            duration=lengths,
            bandwidth_bps=np.full(n_requests, cfg.encoding_rate_bps),
            extent=duration,
        )
        return StoredMediaWorkload(trace=trace, object_sizes=object_sizes)
