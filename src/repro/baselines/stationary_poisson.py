"""Stationary Poisson arrival baseline.

Prior stored-media work (Almeida et al. [3]) found client session arrivals
approximately Poisson during stationary periods.  Section 3.4 of the paper
shows a *single-rate* Poisson process cannot reproduce the live trace's
interarrival marginal — the piecewise-stationary construction with a
diurnal mean is required (Figures 5 vs 6).

:class:`StationaryPoissonBaseline` is that strawman, and
:func:`interarrival_ks_comparison` quantifies the Figure 5/6 visual
argument: the KS distance from the measured interarrivals to each model's
synthetic interarrivals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike, as_float_array
from ..distributions.diurnal import DiurnalProfile
from ..distributions.goodness import ks_two_sample
from ..distributions.piecewise_poisson import PiecewiseStationaryPoissonProcess
from ..errors import ConfigError
from ..rng import make_rng
from ..units import log_display_time


class StationaryPoissonBaseline:
    """Single-rate Poisson arrival process.

    Parameters
    ----------
    rate:
        Arrival rate in events per second.
    """

    def __init__(self, rate: float) -> None:
        if not rate > 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def matching_mean(cls, arrival_times: ArrayLike,
                      duration: float) -> "StationaryPoissonBaseline":
        """Baseline whose rate matches the observed mean arrival rate."""
        times = as_float_array(arrival_times, name="arrival_times")
        if duration <= 0:
            raise ConfigError("duration must be positive")
        if times.size == 0:
            raise ConfigError("need at least one arrival to match a rate")
        return cls(times.size / duration)

    def generate(self, duration: float, seed: SeedLike = None) -> FloatArray:
        """Generate sorted arrival times over ``[0, duration)``."""
        if duration < 0:
            raise ConfigError("duration must be non-negative")
        rng = make_rng(seed)
        n = int(rng.poisson(self.rate * duration))
        return np.sort(rng.random(n) * duration)

    def interarrivals(self, duration: float,
                      seed: SeedLike = None) -> FloatArray:
        """Generate arrivals and return successive differences."""
        times = self.generate(duration, seed)
        if times.size < 2:
            return np.empty(0)
        return np.diff(times)


@dataclass(frozen=True)
class InterarrivalComparison:
    """KS distances from measured interarrivals to each arrival model.

    Attributes
    ----------
    ks_stationary:
        Distance to the single-rate Poisson baseline's interarrivals.
    ks_piecewise:
        Distance to the piecewise-stationary (diurnal-mean) model's
        interarrivals.  The paper's Figure 5/6 argument corresponds to
        ``ks_piecewise`` being much smaller.
    """

    ks_stationary: float
    ks_piecewise: float

    @property
    def piecewise_wins(self) -> bool:
        """Whether the piecewise-stationary model matches better."""
        return self.ks_piecewise < self.ks_stationary


def interarrival_ks_comparison(arrival_times: ArrayLike, duration: float,
                               profile: DiurnalProfile, *,
                               window: float = 900.0,
                               seed: SeedLike = None
                               ) -> InterarrivalComparison:
    """Compare both arrival models against measured arrivals (Figures 5/6).

    Both models are simulated over the same duration; interarrival
    marginals (after the paper's ``floor(t)+1`` display convention) are
    compared to the measured marginal by KS distance.

    Parameters
    ----------
    arrival_times:
        Measured arrival times over ``[0, duration)``.
    duration:
        Observation window length.
    profile:
        The fitted diurnal rate profile driving the piecewise model.
    window:
        Stationarity window of the piecewise model.
    seed:
        Seed for the synthetic generations.
    """
    times = as_float_array(arrival_times, name="arrival_times")
    if times.size < 3:
        raise ConfigError("need at least three arrivals to compare")
    rng = make_rng(seed)
    measured = log_display_time(np.diff(np.sort(times)))

    stationary = StationaryPoissonBaseline.matching_mean(times, duration)
    stat_ia = log_display_time(stationary.interarrivals(duration, rng))

    piecewise = PiecewiseStationaryPoissonProcess(profile, window=window)
    pw_ia = log_display_time(piecewise.interarrivals(duration, rng))

    return InterarrivalComparison(
        ks_stationary=ks_two_sample(measured, stat_ia),
        ks_piecewise=ks_two_sample(measured, pw_ia),
    )
