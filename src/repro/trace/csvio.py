"""CSV interchange for traces.

The ``.npz`` format (:meth:`repro.trace.store.Trace.save_npz`) is the fast
native container; CSV is the interchange format for everything else —
spreadsheets, R, other toolkits.  Two files represent a trace: a transfer
table and a client table, joined on ``client_index``.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import TraceError
from .store import TRANSFER_COLUMNS, ClientTable, Trace

#: Column order of the clients CSV.
CLIENT_COLUMNS: tuple[str, ...] = (
    "player_id", "ip", "as_number", "country", "os_name",
)


def write_csv(trace: Trace, transfers_path: str | Path,
              clients_path: str | Path) -> None:
    """Write ``trace`` as a transfers CSV plus a clients CSV.

    Columnar: each column is converted to Python scalars once
    (:meth:`~repro.trace.store.Trace.columns` + ``tolist``) and the rows
    are emitted with one ``csv.writer.writerows`` call — floats keep the
    round-trip-exact ``repr`` formatting of the original row-at-a-time
    writer.
    """
    cols = trace.columns()
    with open(transfers_path, "w", encoding="ascii", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(("# extent", trace.extent))
        writer.writerow(TRANSFER_COLUMNS)
        writer.writerows(zip(
            cols["client_index"].tolist(), cols["object_id"].tolist(),
            map(repr, cols["start"].tolist()),
            map(repr, cols["duration"].tolist()),
            map(repr, cols["bandwidth_bps"].tolist()),
            map(repr, cols["packet_loss"].tolist()),
            map(repr, cols["server_cpu"].tolist()),
            cols["status"].tolist(),
            strict=True,
        ))
    clients = trace.clients
    with open(clients_path, "w", encoding="ascii", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(CLIENT_COLUMNS)
        writer.writerows(zip(
            clients.player_ids.tolist(), clients.ips.tolist(),
            clients.as_numbers.tolist(), clients.countries.tolist(),
            clients.os_names.tolist(), strict=True,
        ))


def read_csv(transfers_path: str | Path,
             clients_path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_csv`.

    Raises
    ------
    TraceError
        On missing headers or malformed rows.
    """
    with open(clients_path, "r", encoding="ascii", newline="") as stream:
        reader = csv.reader(stream)
        header = next(reader, None)
        if header is None or tuple(header) != CLIENT_COLUMNS:
            raise TraceError(
                f"clients CSV header mismatch: expected {CLIENT_COLUMNS}")
        rows = list(reader)
    try:
        clients = ClientTable(
            player_ids=[row[0] for row in rows],
            ips=[row[1] for row in rows],
            as_numbers=[int(row[2]) for row in rows],
            countries=[row[3] for row in rows],
            os_names=[row[4] for row in rows],
        )
    except (IndexError, ValueError) as exc:
        raise TraceError(f"malformed clients CSV row: {exc}") from exc

    with open(transfers_path, "r", encoding="ascii", newline="") as stream:
        reader = csv.reader(stream)
        extent_row = next(reader, None)
        if (extent_row is None or len(extent_row) != 2
                or extent_row[0] != "# extent"):
            raise TraceError("transfers CSV missing the '# extent' row")
        extent = float(extent_row[1])
        header = next(reader, None)
        if header is None or tuple(header) != TRANSFER_COLUMNS:
            raise TraceError(
                f"transfers CSV header mismatch: expected {TRANSFER_COLUMNS}")
        rows = list(reader)

    try:
        columns = (list(zip(*rows, strict=True)) if rows
                   else [[] for _ in TRANSFER_COLUMNS])
        return Trace(
            clients=clients,
            client_index=np.asarray(columns[0], dtype=np.int64),
            object_id=np.asarray(columns[1], dtype=np.int64),
            start=np.asarray(columns[2], dtype=np.float64),
            duration=np.asarray(columns[3], dtype=np.float64),
            bandwidth_bps=np.asarray(columns[4], dtype=np.float64),
            packet_loss=np.asarray(columns[5], dtype=np.float64),
            server_cpu=np.asarray(columns[6], dtype=np.float64),
            status=np.asarray(columns[7], dtype=np.int64),
            extent=extent,
        )
    except (IndexError, ValueError) as exc:
        raise TraceError(f"malformed transfers CSV row: {exc}") from exc
