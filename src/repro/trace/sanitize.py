"""Log sanitization, after Section 2.4 of the paper.

Two concerns are addressed:

* **Spanning entries.**  A small number of log entries describe activity
  longer than the whole trace period — accesses that straddled multiple
  daily log harvests.  The paper excludes them; :func:`sanitize_trace` does
  the same, along with entries that fall outside the observation window or
  carry non-positive durations after log rounding.

* **Overload screening.**  Because the interaction between users and the
  system has a feedback component, characteristics measured during server
  overload would be suspect.  The paper verifies that server CPU utilization
  stayed below 10% over 99.99% of one-second bins and for over 99% of
  transfers; :func:`overload_profile` computes the same two statistics so a
  simulated trace can be held to the same standard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .store import Trace

#: The paper's server-utilization screening threshold (10%).
OVERLOAD_CPU_THRESHOLD = 0.10


@dataclass(frozen=True)
class SanitizationReport:
    """Summary of what :func:`sanitize_trace` removed and screened.

    Attributes
    ----------
    n_input:
        Number of transfers before sanitization.
    n_spanning:
        Entries removed because their duration exceeded the trace period
        (multi-harvest artifacts, Section 2.4).
    n_out_of_window:
        Entries removed because they started before the window or ended
        after it.
    n_degenerate:
        Entries removed for non-positive duration after log rounding.
    overload_transfer_fraction:
        Fraction of surviving transfers whose server CPU sample exceeded
        :data:`OVERLOAD_CPU_THRESHOLD`.
    """

    n_input: int
    n_spanning: int
    n_out_of_window: int
    n_degenerate: int
    overload_transfer_fraction: float

    @property
    def n_removed(self) -> int:
        """Total number of removed entries."""
        return self.n_spanning + self.n_out_of_window + self.n_degenerate

    @property
    def n_output(self) -> int:
        """Number of surviving transfers."""
        return self.n_input - self.n_removed


def sanitize_trace(trace: Trace, *, max_duration: float | None = None,
                   drop_degenerate: bool = True) -> tuple[Trace, SanitizationReport]:
    """Apply the paper's Section 2.4 sanitization to ``trace``.

    Parameters
    ----------
    trace:
        The input trace.
    max_duration:
        Transfers longer than this are treated as spanning entries and
        removed.  Defaults to the trace extent (the 28-day period in the
        paper's case).
    drop_degenerate:
        Also remove zero-duration transfers, which arise from the log's
        one-second rounding.  The paper's ``floor(t)+1`` convention handles
        them at display time instead; disable to keep them.

    Returns
    -------
    (Trace, SanitizationReport)
        The sanitized trace and the removal/screening summary.
    """
    if max_duration is None:
        max_duration = trace.extent
    n = len(trace)
    spanning = trace.duration > max_duration
    out_of_window = (~spanning) & ((trace.start < 0)
                                   | (trace.end > trace.extent))
    if drop_degenerate:
        degenerate = (~spanning) & (~out_of_window) & (trace.duration <= 0)
    else:
        degenerate = np.zeros(n, dtype=bool)
    keep = ~(spanning | out_of_window | degenerate)
    clean = trace.filter(keep)
    if len(clean):
        overload = float(np.mean(clean.server_cpu > OVERLOAD_CPU_THRESHOLD))
    else:
        overload = 0.0
    report = SanitizationReport(
        n_input=n,
        n_spanning=int(spanning.sum()),
        n_out_of_window=int(out_of_window.sum()),
        n_degenerate=int(degenerate.sum()),
        overload_transfer_fraction=overload,
    )
    return clean, report


def overload_profile(trace: Trace, *, bin_width: float = 1.0,
                     threshold: float = OVERLOAD_CPU_THRESHOLD
                     ) -> tuple[float, float]:
    """Reproduce the paper's two overload statistics.

    Returns ``(time_fraction, transfer_fraction)``: the fraction of
    ``bin_width``-second bins whose average sampled CPU exceeded
    ``threshold`` (the paper: < 0.01% of one-second bins), and the fraction
    of transfers whose CPU sample exceeded it (the paper: < 1%).

    CPU samples are attributed to the bin containing each transfer's start;
    bins with no samples count as idle.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if len(trace) == 0:
        return 0.0, 0.0
    n_bins = max(int(np.ceil(trace.extent / bin_width)), 1)
    idx = np.minimum((trace.start / bin_width).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=trace.server_cpu, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    means = np.divide(sums, counts, out=np.zeros(n_bins, dtype=np.float64),
                      where=counts > 0)
    time_fraction = float(np.mean(means > threshold))
    transfer_fraction = float(np.mean(trace.server_cpu > threshold))
    return time_fraction, transfer_fraction
