"""One-pass (streaming) log characterization.

A month of logs at the paper's scale is millions of lines; the columnar
:class:`~repro.trace.store.Trace` handles that comfortably, but a
production pipeline watching a *live* server wants running statistics
without ever materializing the trace.  :class:`StreamingCharacterizer`
consumes WMS-style log lines incrementally — across any number of files or
harvests — and maintains, in O(clients) memory:

* the transfer-length lognormal fit (online log-moments, with the paper's
  ``floor(t)+1`` convention);
* total transfers, bytes served, per-feed counts;
* per-client transfer counts (the interest profile);
* the congestion-bound bandwidth fraction and a log-spaced bandwidth
  histogram (Figure 20's shape);
* the diurnal profile of transfer starts (Figure 4's shape).

Everything it reports is cross-checked against the batch pipeline in the
test suite: same log in, same statistics out.

Every accumulator is **mergeable**: :meth:`StreamingCharacterizer.merge`
folds another characterizer's state into this one, exactly.  Two
characterizers fed disjoint halves of a log and merged report the same
:class:`StreamingSummary` as one characterizer fed the whole log — counts
and histograms are integer-exact, and the lognormal length fit is held in
an integer-count form (:class:`_OnlineLogMoments`) whose moments are
computed once at summary time, so even the floating-point fields agree
bit for bit.  That contract is what lets
:func:`repro.parallel.characterize_logs` map chunks across processes and
reduce without changing any reported statistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence, TextIO

import numpy as np
from bisect import bisect_right

from .._typing import FloatArray

#: Shape/dtype-generic array (decoded binary segment columns).
_AnyArray = np.ndarray[Any, np.dtype[Any]]
from ..errors import LogParseError
from ..units import DAY
from .wms_log import _REPLACEMENT, _URI_PREFIX, _parse_fields_header, iter_log_lines

#: Default log-spaced bandwidth histogram edges (bits/second).
DEFAULT_BANDWIDTH_EDGES = np.logspace(3, 7, 41)

#: Bandwidths below this count as congestion bound (matches
#: :data:`repro.core.transfer_layer.CONGESTION_BOUND_THRESHOLD_BPS`).
CONGESTION_THRESHOLD_BPS = 24_000.0


class _OnlineLogMoments:
    """Mergeable accumulator of the log-length moments.

    The paper's display convention maps every measured length to the
    integer ``floor(t) + 1``, so the accumulator keeps exact *counts per
    integer display length* rather than running float moments.  Counts
    merge exactly (integer addition is associative), and the lognormal
    ``mu``/``sigma`` are computed once at read time by a deterministic
    walk over the sorted support — which makes chunked-and-merged
    results bit-identical to a single sequential pass.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}

    def add(self, display: int) -> None:
        self.counts[display] = self.counts.get(display, 0) + 1

    def merge(self, other: "_OnlineLogMoments") -> None:
        for display, count in other.counts.items():
            self.counts[display] = self.counts.get(display, 0) + count

    @property
    def n(self) -> int:
        return sum(self.counts.values())

    def moments(self) -> tuple[float, float]:
        """The ``(mu, sigma)`` of ``log(display)`` over the counts."""
        n = self.n
        if n == 0:
            return 0.0, 0.0
        items = sorted(self.counts.items())
        logs = [(math.log(display), count) for display, count in items]
        mu = sum(value * count for value, count in logs) / n
        if n < 2:
            return mu, 0.0
        m2 = sum((value - mu) ** 2 * count for value, count in logs)
        return mu, math.sqrt(m2 / n)


@dataclass(frozen=True)
class StreamingSummary:
    """Snapshot of the running statistics.

    Attributes
    ----------
    n_entries, n_skipped:
        Parsed and skipped (malformed) line counts.
    n_clients:
        Distinct player IDs seen.
    length_log_mu, length_log_sigma:
        Online lognormal fit of transfer lengths (``floor(t)+1``).
    bytes_served:
        Accumulated ``duration * bandwidth / 8``.
    feed_counts:
        Transfers per live-object id.
    congestion_bound_fraction:
        Fraction of transfers below the congestion threshold.
    bandwidth_histogram, bandwidth_edges:
        Log-spaced histogram of per-transfer bandwidth.
    diurnal_counts:
        Transfer-start counts folded into bins of one day.
    top_clients:
        The ``(player_id, count)`` pairs of the most active clients.
    """

    n_entries: int
    n_skipped: int
    n_clients: int
    length_log_mu: float
    length_log_sigma: float
    bytes_served: float
    feed_counts: dict[int, int]
    congestion_bound_fraction: float
    bandwidth_histogram: FloatArray = field(repr=False)
    bandwidth_edges: FloatArray = field(repr=False)
    diurnal_counts: FloatArray = field(repr=False)
    top_clients: tuple[tuple[str, int], ...] = ()


class StreamingCharacterizer:
    """Incremental characterizer of WMS-style logs.

    Feed it files or streams with :meth:`consume`; read a
    :class:`StreamingSummary` at any point with :meth:`summary`.

    Parameters
    ----------
    diurnal_bins:
        Bins per day of the arrival profile (96 = 15-minute).
    bandwidth_edges:
        Log-spaced histogram edges for bandwidth (bits/second).
    """

    def __init__(self, *, diurnal_bins: int = 96,
                 bandwidth_edges: FloatArray | None = None) -> None:
        if diurnal_bins < 1:
            raise ValueError("diurnal_bins must be positive")
        self._log_length = _OnlineLogMoments()
        self._bits = 0.0  # duration * bandwidth, divided by 8 at read time
        self._n_entries = 0
        self._n_skipped = 0
        self._congested = 0
        self._client_counts: dict[str, int] = {}
        self._feed_counts: dict[int, int] = {}
        self._edges = (DEFAULT_BANDWIDTH_EDGES if bandwidth_edges is None
                       else np.asarray(bandwidth_edges, dtype=np.float64))
        self._edge_list = self._edges.tolist()
        self._bandwidth_hist = np.zeros(self._edges.size - 1,
                                        dtype=np.float64)
        self._diurnal = np.zeros(diurnal_bins, dtype=np.float64)
        self._bin_width = DAY / diurnal_bins

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def consume(self, source: str | Path | TextIO | Iterable[str]) -> int:
        """Consume one log file/stream; returns entries parsed from it.

        Malformed data lines are counted and skipped (a streaming consumer
        cannot afford to abort mid-harvest); a missing ``#Fields`` header
        still raises, since nothing after it could be interpreted.  Paths
        are opened with ``errors="replace"`` so undecodable bytes in a
        corrupt harvest count as skipped lines instead of aborting.
        """
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="ascii",
                      errors="replace") as stream:
                return self._consume_stream(stream)
        return self._consume_stream(source)

    def _consume_stream(self, stream: TextIO | Iterable[str]) -> int:
        parsed = 0
        fields: list[str] | None = None
        for number, line in iter_log_lines(stream):
            if line.startswith("#"):
                if line.startswith("#Fields:"):
                    fields = _parse_fields_header(line, number)
                continue
            if fields is None:
                raise LogParseError("data before #Fields header",
                                    line_number=number, line=line)
            if self._consume_line(line, fields):
                parsed += 1
        return parsed

    def consume_lines(self, lines: Iterable[str],
                      fields: list[str]) -> int:
        """Consume pre-split data lines against a known field layout.

        The chunked ingestion path: callers that already located the
        ``#Fields`` header (e.g. :func:`repro.parallel.characterize_logs`
        workers fed byte ranges of a split log) hand the layout in
        directly.  Blank and comment lines are ignored; malformed data
        lines are counted and skipped exactly as in :meth:`consume`.
        Returns the number of entries parsed.
        """
        parsed = 0
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if self._consume_line(line, fields):
                parsed += 1
        return parsed

    def consume_columns(self, columns: Mapping[str, _AnyArray],
                        players: Sequence[str] | _AnyArray) -> int:
        """Consume one decoded binary segment as column arrays.

        The vectorized counterpart of :meth:`consume_lines` for the
        binary codec: ``columns`` is one segment's decoded trace-domain
        columns (see
        :meth:`repro.trace.codecs.BinaryTraceReader.segment_columns`)
        and ``players`` the per-entry player-ID strings (the caller maps
        ``client_index`` through the file's client blocks).  Every
        accumulator update reproduces the per-line path exactly — the
        decoded doubles are bit-identical to the parsed text fields, so
        histogram binning and the diurnal fold agree entry for entry;
        only the ``bytes_served`` float accumulation order differs.
        Returns the number of entries consumed.
        """
        duration = np.maximum(
            np.asarray(columns["duration"], dtype=np.float64), 0.0)
        bandwidth = np.asarray(columns["bandwidth_bps"], dtype=np.float64)
        timestamp = np.asarray(columns["timestamp"], dtype=np.int64)
        feed = np.asarray(columns["object_id"], dtype=np.int64)
        n = int(duration.size)
        if n == 0:
            return 0

        self._n_entries += n
        display = np.floor(duration).astype(np.int64) + 1
        for value, count in zip(*(arr.tolist() for arr in
                                  np.unique(display, return_counts=True)),
                                strict=True):
            self._log_length.counts[value] = (
                self._log_length.counts.get(value, 0) + count)
        self._bits += float(np.dot(duration, np.maximum(bandwidth, 0.0)))
        for player, count in zip(*(arr.tolist() for arr in
                                   np.unique(np.asarray(players,
                                                        dtype=np.str_),
                                             return_counts=True)),
                                 strict=True):
            self._client_counts[player] = (
                self._client_counts.get(player, 0) + count)
        for value, count in zip(*(arr.tolist() for arr in
                                  np.unique(feed, return_counts=True)),
                                strict=True):
            self._feed_counts[value] = self._feed_counts.get(value, 0) + count
        self._congested += int(
            np.count_nonzero(bandwidth < CONGESTION_THRESHOLD_BPS))
        # searchsorted(side="right") - 1 == bisect_right(edges, bw) - 1.
        bin_idx = np.searchsorted(self._edges, bandwidth,
                                  side="right").astype(np.int64) - 1
        in_range = (bin_idx >= 0) & (bin_idx < self._bandwidth_hist.size)
        self._bandwidth_hist += np.bincount(
            bin_idx[in_range], minlength=self._bandwidth_hist.size
            ).astype(np.float64)
        # start = timestamp - duration, exactly the per-line arithmetic.
        phase = (timestamp.astype(np.float64)
                 - np.asarray(columns["duration"], dtype=np.float64)) % DAY
        diurnal_idx = np.minimum(
            (phase / self._bin_width).astype(np.int64),
            self._diurnal.size - 1)
        self._diurnal += np.bincount(
            diurnal_idx, minlength=self._diurnal.size).astype(np.float64)
        return n

    def _consume_line(self, line: str, fields: list[str]) -> bool:
        if _REPLACEMENT in line:
            # Undecodable bytes (a well-formed log is pure ASCII): the
            # fields cannot be trusted even if the line still splits.
            self._n_skipped += 1
            return False
        parts = line.split()
        if len(parts) != len(fields):
            self._n_skipped += 1
            return False
        row = dict(zip(fields, parts, strict=True))
        try:
            duration = float(row["x-duration"])
            bandwidth = float(row["avg-bandwidth"])
            timestamp = int(row["x-timestamp"])
            uri = row["cs-uri-stem"]
            if not uri.startswith(_URI_PREFIX):
                raise ValueError("bad uri")
            feed = int(uri[len(_URI_PREFIX):])
            player = row["c-playerid"]
        except (KeyError, ValueError):
            self._n_skipped += 1
            return False

        self._n_entries += 1
        # The paper's floor(t) + 1 display convention (log_display_time),
        # kept as an exact integer so accumulators merge losslessly.
        self._log_length.add(math.floor(max(duration, 0.0)) + 1)
        self._bits += max(duration, 0.0) * max(bandwidth, 0.0)
        self._client_counts[player] = self._client_counts.get(player, 0) + 1
        self._feed_counts[feed] = self._feed_counts.get(feed, 0) + 1
        if bandwidth < CONGESTION_THRESHOLD_BPS:
            self._congested += 1
        bin_idx = bisect_right(self._edge_list, bandwidth) - 1
        if 0 <= bin_idx < self._bandwidth_hist.size:
            self._bandwidth_hist[bin_idx] += 1
        start = timestamp - duration
        phase = start % DAY
        self._diurnal[min(int(phase / self._bin_width),
                          self._diurnal.size - 1)] += 1
        return True

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "StreamingCharacterizer"
              ) -> "StreamingCharacterizer":
        """Fold ``other``'s accumulated state into this characterizer.

        The merge is exact: feeding two characterizers disjoint parts of
        a log and merging reports the same :class:`StreamingSummary` as
        one characterizer fed everything (see the module docstring for
        why this extends to the floating-point fields).  Both sides must
        have been built with the same ``diurnal_bins`` and
        ``bandwidth_edges``.  Returns ``self`` for chaining; ``other``
        is left unchanged.

        Raises
        ------
        ValueError
            If the two characterizers' binning configurations differ.
        """
        if not np.array_equal(self._edges, other._edges):
            raise ValueError("cannot merge: bandwidth_edges differ")
        if self._diurnal.size != other._diurnal.size:
            raise ValueError("cannot merge: diurnal_bins differ")
        self._log_length.merge(other._log_length)
        self._bits += other._bits
        self._n_entries += other._n_entries
        self._n_skipped += other._n_skipped
        self._congested += other._congested
        for player, count in other._client_counts.items():
            self._client_counts[player] = (
                self._client_counts.get(player, 0) + count)
        for feed, count in other._feed_counts.items():
            self._feed_counts[feed] = self._feed_counts.get(feed, 0) + count
        self._bandwidth_hist += other._bandwidth_hist
        self._diurnal += other._diurnal
        return self

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """The full accumulator state as a JSON-serializable dict.

        Everything the characterizer holds is either integer counts or
        floats whose JSON round trip is exact (Python serializes floats
        via their shortest exact representation), so
        ``StreamingCharacterizer.from_state_dict(c.state_dict())`` resumes
        with *bit-identical* future summaries — the contract behind
        ``repro characterize --checkpoint/--resume``.
        """
        return {
            "length_counts": {str(display): count for display, count
                              in self._log_length.counts.items()},
            "bits": self._bits,
            "n_entries": self._n_entries,
            "n_skipped": self._n_skipped,
            "congested": self._congested,
            "client_counts": dict(self._client_counts),
            "feed_counts": {str(feed): count for feed, count
                            in self._feed_counts.items()},
            "bandwidth_edges": self._edges.tolist(),
            "bandwidth_histogram": self._bandwidth_hist.tolist(),
            "diurnal_counts": self._diurnal.tolist(),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]
                        ) -> "StreamingCharacterizer":
        """Rebuild a characterizer from :meth:`state_dict` output."""
        characterizer = cls(
            diurnal_bins=len(state["diurnal_counts"]),
            bandwidth_edges=np.asarray(state["bandwidth_edges"],
                                       dtype=np.float64))
        characterizer._log_length.counts = {
            int(display): int(count)
            for display, count in state["length_counts"].items()}
        characterizer._bits = float(state["bits"])
        characterizer._n_entries = int(state["n_entries"])
        characterizer._n_skipped = int(state["n_skipped"])
        characterizer._congested = int(state["congested"])
        characterizer._client_counts = {
            str(player): int(count)
            for player, count in state["client_counts"].items()}
        characterizer._feed_counts = {
            int(feed): int(count)
            for feed, count in state["feed_counts"].items()}
        characterizer._bandwidth_hist = np.asarray(
            state["bandwidth_histogram"], dtype=np.float64)
        characterizer._diurnal = np.asarray(state["diurnal_counts"],
                                            dtype=np.float64)
        return characterizer

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, *, top_k: int = 10) -> StreamingSummary:
        """Snapshot the running statistics (cheap; call any time)."""
        top = sorted(self._client_counts.items(),
                     key=lambda item: (-item[1], item[0]))[:top_k]
        congested_fraction = (self._congested / self._n_entries
                              if self._n_entries else 0.0)
        length_log_mu, length_log_sigma = self._log_length.moments()
        return StreamingSummary(
            n_entries=self._n_entries,
            n_skipped=self._n_skipped,
            n_clients=len(self._client_counts),
            length_log_mu=length_log_mu,
            length_log_sigma=length_log_sigma,
            bytes_served=self._bits / 8.0,
            feed_counts=dict(sorted(self._feed_counts.items())),
            congestion_bound_fraction=congested_fraction,
            bandwidth_histogram=self._bandwidth_hist.copy(),
            bandwidth_edges=self._edges.copy(),
            diurnal_counts=self._diurnal.copy(),
            top_clients=tuple(top),
        )

    def client_counts(self) -> dict[str, int]:
        """The full per-client transfer counts (the interest profile)."""
        return dict(self._client_counts)
