"""Columnar trace container.

A 28-day trace at the paper's scale holds millions of transfers; storing
them as Python objects would be prohibitively slow for the characterization
pipeline.  :class:`Trace` therefore keeps one NumPy array per column and
materializes :class:`~repro.trace.records.TransferRecord` rows only on
demand.  The client population lives in a side table
(:class:`ClientTable`) referenced by integer index.
"""

from __future__ import annotations

from functools import cached_property
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from .._typing import FloatArray, IntArray
from ..arrayops import segment_starts

#: Shape/dtype-generic array (string columns, narrow sort keys, masks).
_AnyArray = np.ndarray[Any, np.dtype[Any]]
from ..errors import TraceError
from .records import ClientRecord, TransferRecord


class ClientTable:
    """Immutable table of clients referenced by integer index.

    Parameters
    ----------
    player_ids:
        Unique player identifiers, one per client.
    ips:
        Dotted-quad IPs, parallel to ``player_ids``.
    as_numbers:
        Autonomous-system numbers, parallel to ``player_ids``.
    countries:
        Country codes, parallel to ``player_ids``.
    os_names:
        Operating-system strings; defaults to a constant when omitted.
    """

    def __init__(self, player_ids: Sequence[str] | _AnyArray,
                 ips: Sequence[str] | _AnyArray,
                 as_numbers: Sequence[int] | _AnyArray,
                 countries: Sequence[str] | _AnyArray,
                 os_names: Sequence[str] | _AnyArray | None = None) -> None:
        n = len(player_ids)
        for name, col in (("ips", ips), ("as_numbers", as_numbers),
                          ("countries", countries)):
            if len(col) != n:
                raise TraceError(
                    f"client column {name} has length {len(col)}, expected {n}")
        if os_names is not None and len(os_names) != n:
            raise TraceError(
                f"client column os_names has length {len(os_names)}, expected {n}")
        self.player_ids = np.asarray(player_ids, dtype=np.str_)
        self.ips = np.asarray(ips, dtype=np.str_)
        self.as_numbers = np.asarray(as_numbers, dtype=np.int64)
        self.countries = np.asarray(countries, dtype=np.str_)
        # np.full(..., dtype=np.str_) would build a '<U1' array and
        # silently truncate the default to "W"; let the fill value size
        # the itemsize instead.
        self.os_names = (
            np.full(n, "Windows_98")  # reprolint: disable=RL008, fill value must size the itemsize
            if os_names is None else np.asarray(os_names, dtype=np.str_))
        self._index_by_player: dict[str, int] | None = None

    def __len__(self) -> int:
        return int(self.player_ids.size)

    def record(self, index: int) -> ClientRecord:
        """Materialize the :class:`ClientRecord` at ``index``."""
        return ClientRecord(
            player_id=str(self.player_ids[index]),
            ip=str(self.ips[index]),
            as_number=int(self.as_numbers[index]),
            country=str(self.countries[index]),
            os_name=str(self.os_names[index]),
        )

    def index_of(self, player_id: str) -> int:
        """Return the index of ``player_id``; raises ``KeyError`` if absent."""
        if self._index_by_player is None:
            self._index_by_player = {
                str(pid): i for i, pid in enumerate(self.player_ids)}
        return self._index_by_player[player_id]

    def n_distinct_ips(self) -> int:
        """Number of distinct IP addresses across the population."""
        return int(np.unique(self.ips).size)

    def n_distinct_ases(self) -> int:
        """Number of distinct autonomous systems (excluding the unknown AS 0)."""
        ases = self.as_numbers[self.as_numbers > 0]
        return int(np.unique(ases).size)

    def n_distinct_countries(self) -> int:
        """Number of distinct non-empty country codes."""
        countries = self.countries[self.countries != ""]
        return int(np.unique(countries).size)


#: Per-transfer column attributes of :class:`Trace`, in canonical order
#: (the order of the CSV interchange format and of :meth:`Trace.to_rows`).
TRANSFER_COLUMNS: tuple[str, ...] = (
    "client_index", "object_id", "start", "duration", "bandwidth_bps",
    "packet_loss", "server_cpu", "status",
)


class Trace:
    """Columnar container of transfers plus the client table.

    Transfers are kept sorted by start time; the constructor sorts when
    necessary.  All per-transfer columns are parallel arrays.

    Parameters
    ----------
    clients:
        The client table.
    client_index:
        Per-transfer index into ``clients``.
    object_id:
        Per-transfer live-object index.
    start:
        Per-transfer start times (seconds since trace start).
    duration:
        Per-transfer lengths (seconds).
    bandwidth_bps, packet_loss, server_cpu, status:
        Optional per-transfer statistics; default to zeros / 200.
    extent:
        Length of the observation window ``[0, extent)``; defaults to the
        latest transfer end.
    """

    def __init__(self, clients: ClientTable,
                 client_index: Sequence[int] | _AnyArray,
                 object_id: Sequence[int] | _AnyArray,
                 start: Sequence[float] | _AnyArray,
                 duration: Sequence[float] | _AnyArray,
                 bandwidth_bps: Sequence[float] | _AnyArray | None = None,
                 packet_loss: Sequence[float] | _AnyArray | None = None,
                 server_cpu: Sequence[float] | _AnyArray | None = None,
                 status: Sequence[int] | _AnyArray | None = None,
                 extent: float | None = None) -> None:
        self.clients = clients
        self.client_index = np.asarray(client_index, dtype=np.int64)
        self.object_id = np.asarray(object_id, dtype=np.int64)
        self.start = np.asarray(start, dtype=np.float64)
        self.duration = np.asarray(duration, dtype=np.float64)
        n = self.start.size
        for name, col in (("client_index", self.client_index),
                          ("object_id", self.object_id),
                          ("duration", self.duration)):
            if col.size != n:
                raise TraceError(
                    f"column {name} has length {col.size}, expected {n}")

        def _column(values: Sequence[float] | _AnyArray | None, fill: float,
                    dtype: type) -> _AnyArray:
            if values is None:
                return np.full(n, fill, dtype=dtype)
            arr = np.asarray(values, dtype=dtype)
            if arr.size != n:
                raise TraceError(f"optional column has length {arr.size}, expected {n}")
            return arr

        self.bandwidth_bps = _column(bandwidth_bps, 0.0, np.float64)
        self.packet_loss = _column(packet_loss, 0.0, np.float64)
        self.server_cpu = _column(server_cpu, 0.0, np.float64)
        self.status = _column(status, 200, np.int64)

        if n and (self.duration.min() < 0):
            raise TraceError("transfer durations must be non-negative")
        if n and (self.client_index.min() < 0
                  or self.client_index.max() >= len(clients)):
            raise TraceError("client_index out of range of the client table")

        if n and np.any(np.diff(self.start) < 0):
            order = np.argsort(self.start, kind="stable")
            for attr in TRANSFER_COLUMNS:
                setattr(self, attr, getattr(self, attr)[order])

        if extent is None:
            extent = float((self.start + self.duration).max()) if n else 0.0
        # Note: entries may extend past the extent — real logs contain
        # multi-harvest artifacts (Section 2.4); sanitize_trace removes them.
        self.extent = float(extent)

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.start.size)

    @property
    def n_transfers(self) -> int:
        """Number of transfers in the trace."""
        return len(self)

    @property
    def n_clients(self) -> int:
        """Number of clients in the client table."""
        return len(self.clients)

    @property
    def n_objects(self) -> int:
        """Number of distinct live objects appearing in the trace."""
        return int(np.unique(self.object_id).size) if len(self) else 0

    @property
    def end(self) -> FloatArray:
        """Per-transfer end times (``start + duration``)."""
        return self.start + self.duration

    @cached_property
    def client_grouping(self) -> tuple[IntArray, IntArray, IntArray]:
        """Cached group-by-client index: ``(order, lengths, firsts)``.

        ``order`` is the stable permutation sorting transfers by
        ``(client_index, start)``; ``lengths`` the per-client transfer
        count (length ``n_clients``, zeros included); ``firsts`` the
        position, in the sorted view, of each active client's first
        transfer.  Computed once per (immutable) trace — the sessionizer
        and every per-client analysis share it, so e.g. a Figure 9
        timeout sweep pays for the grouping a single time.

        Because the constructor keeps transfers start-sorted, a stable
        argsort on the client column alone realizes the lexicographic
        order; the column is narrowed to the smallest unsigned dtype
        holding ``n_clients`` so NumPy's stable sort takes its O(n)
        radix path.
        """
        client = self.client_index
        if self.n_clients <= 1 << 8:
            client = client.astype(np.uint8)
        elif self.n_clients <= 1 << 16:
            client = client.astype(np.uint16)
        order = np.argsort(client, kind="stable")
        lengths = np.bincount(self.client_index, minlength=self.n_clients)
        firsts = segment_starts(lengths)[lengths > 0]
        return order, lengths, firsts

    @cached_property
    def client_sorted_spans(self) -> tuple[FloatArray, FloatArray]:
        """Cached ``(start, end)`` columns in ``(client, start)`` order.

        The gathered companions of :attr:`client_grouping` — the inputs
        every silence-gap / sessionization call starts from.  Treat both
        arrays as read-only (copy before mutating); like the grouping they
        are computed once per immutable trace.
        """
        order, _, _ = self.client_grouping
        start = self.start[order]
        end = self.duration[order]
        end += start
        return start, end

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def record(self, index: int) -> TransferRecord:
        """Materialize the :class:`TransferRecord` at ``index``."""
        return TransferRecord(
            client=self.clients.record(int(self.client_index[index])),
            object_id=int(self.object_id[index]),
            start=float(self.start[index]),
            duration=float(self.duration[index]),
            bandwidth_bps=float(self.bandwidth_bps[index]),
            packet_loss=float(self.packet_loss[index]),
            server_cpu=float(self.server_cpu[index]),
            status=int(self.status[index]),
        )

    def __iter__(self) -> Iterator[TransferRecord]:
        for i in range(len(self)):
            yield self.record(i)

    # ------------------------------------------------------------------
    # Columnar batch export
    # ------------------------------------------------------------------
    def columns(self) -> dict[str, _AnyArray]:
        """The per-transfer columns as ``{name: array}``, without copying.

        The batch-export counterpart of :meth:`record`/``__iter__``:
        bulk consumers (CSV export, external toolkits) should read the
        column arrays directly instead of materializing one
        :class:`~repro.trace.records.TransferRecord` per row.
        """
        return {name: getattr(self, name) for name in TRANSFER_COLUMNS}

    def to_rows(self) -> list[tuple[Any, ...]]:
        """All transfers as plain-Python tuples in :data:`TRANSFER_COLUMNS`
        order.

        Converts each column once with ``ndarray.tolist()`` and zips,
        avoiding ``__iter__``'s per-row ``record()`` materialization —
        use this when a row-oriented consumer really needs Python
        scalars for a whole trace.
        """
        return list(zip(*(getattr(self, name).tolist()
                          for name in TRANSFER_COLUMNS), strict=True))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def bytes_served(self) -> float:
        """Total content served in bytes (duration x bandwidth / 8)."""
        return float(np.dot(self.duration, self.bandwidth_bps) / 8.0)

    def transfers_per_client(self) -> IntArray:
        """Transfer count per client index (length ``n_clients``)."""
        return np.bincount(self.client_index, minlength=self.n_clients
                           ).astype(np.int64)

    def active_client_count(self) -> int:
        """Number of clients with at least one transfer in the trace."""
        return int(np.count_nonzero(self.transfers_per_client()))

    def filter(self, mask: _AnyArray) -> "Trace":
        """Return a new trace containing only the transfers where ``mask``.

        The client table is shared (not copied); client indices keep their
        meaning.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.size != len(self):
            raise TraceError(f"mask has length {mask.size}, expected {len(self)}")
        return Trace(
            clients=self.clients,
            client_index=self.client_index[mask],
            object_id=self.object_id[mask],
            start=self.start[mask],
            duration=self.duration[mask],
            bandwidth_bps=self.bandwidth_bps[mask],
            packet_loss=self.packet_loss[mask],
            server_cpu=self.server_cpu[mask],
            status=self.status[mask],
            extent=self.extent,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_npz(self, path: str | Path) -> None:
        """Save the full trace (including client table) to a ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            client_index=self.client_index,
            object_id=self.object_id,
            start=self.start,
            duration=self.duration,
            bandwidth_bps=self.bandwidth_bps,
            packet_loss=self.packet_loss,
            server_cpu=self.server_cpu,
            status=self.status,
            extent=np.asarray([self.extent]),
            player_ids=self.clients.player_ids,
            ips=self.clients.ips,
            as_numbers=self.clients.as_numbers,
            countries=self.clients.countries,
            os_names=self.clients.os_names,
        )

    @classmethod
    def load_npz(cls, path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`save_npz`."""
        with np.load(Path(path), allow_pickle=False) as data:
            clients = ClientTable(
                player_ids=data["player_ids"],
                ips=data["ips"],
                as_numbers=data["as_numbers"],
                countries=data["countries"],
                os_names=data["os_names"],
            )
            return cls(
                clients=clients,
                client_index=data["client_index"],
                object_id=data["object_id"],
                start=data["start"],
                duration=data["duration"],
                bandwidth_bps=data["bandwidth_bps"],
                packet_loss=data["packet_loss"],
                server_cpu=data["server_cpu"],
                status=data["status"],
                extent=float(data["extent"][0]),
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Trace(n_transfers={self.n_transfers}, "
                f"n_clients={self.n_clients}, extent={self.extent:.0f}s)")
