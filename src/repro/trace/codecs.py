"""Interchangeable trace codecs: W3C text log and columnar binary.

The paper's pipeline round-trips month-scale traces through an on-disk
format between generation and characterization.  The original medium is
the WMS text log (:mod:`repro.trace.wms_log`); at the paper's scale that
log is hundreds of megabytes and re-parsing it line by line dominates
characterization cost.  This module makes the serialization pluggable:

* a **codec registry** (:func:`register_codec` / :func:`get_codec` /
  :func:`detect_codec`) with the text log refactored in as one codec, and
* a **columnar binary codec** whose decode path is NumPy-vectorized and
  memory-mapped — no per-line Python, no row dicts.

Binary on-disk layout (all integers little-endian)::

    magic   b"RTRCB01\\n"                                   (8 bytes)
    header  u32 length + UTF-8 JSON, zero-padded to 8 bytes
    blocks  client-identity blocks and entry segments, interleaved in
            write order, every array zero-padded to 8-byte alignment
    footer  UTF-8 JSON index of every block
    trailer u64 footer offset + magic b"RTRCEND\\n"         (16 bytes)

An **entry segment** is one flushed batch of the shared reorder buffer
(:class:`repro.trace.wms_log.StreamingTraceWriter`): the eight logical
entry columns (:data:`ENTRY_COLUMNS`), quantized to the text format's
resolution (whole-second timestamps and durations, whole-bps bandwidth,
four-decimal loss/CPU), each stored as ``value - min`` offsets in the
smallest unsigned dtype that spans the batch — a constant column stores
zero bytes.  A **client block** records the identities (IP, player ID,
OS) of clients first seen in that batch, as an ``int64`` index array plus
fixed-width UTF-8 string arrays.

Because both codecs share the reorder buffer and the binary quantization
mirrors the text formatting exactly (see :func:`quantize_entry_columns`),
a binary file and a text log written from the same stream decode to
bit-identical traces — the conform differential oracle asserts this.

The footer makes reads seekable: :class:`BinaryTraceReader` memory-maps
the file and materializes any single segment as column arrays without
touching the rest, which is what lets the parallel characterizer plan
byte-range chunks over binary traces.

``pyarrow`` would be a natural alternative backend; it stays optional and
is not required — the format above is pure NumPy.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import IO, Any, ClassVar, Iterator, Mapping, Sequence

import numpy as np

from .._typing import FloatArray, IntArray
from ..errors import LogParseError, TraceError
from .store import ClientTable, Trace
from .wms_log import (
    ClientIdentity,
    IpResolver,
    StreamingTraceWriter,
    StreamingWmsLogWriter,
    _format_entry,
    _table_identity,
    read_wms_log,
    write_wms_log,
)

#: File magic opening every binary trace.
BINARY_MAGIC = b"RTRCB01\n"

#: Magic closing the 16-byte end trailer.
FOOTER_MAGIC = b"RTRCEND\n"

#: Bumped when the binary layout changes incompatibly.
BINARY_FORMAT_VERSION = 1

_TRAILER_LEN = 16

#: Logical per-entry columns of a binary segment, in on-disk order.
#: All are integers after quantization; ``*_q`` columns carry four
#: implied decimal places (value = q / 10**4).
ENTRY_COLUMNS: tuple[str, ...] = (
    "timestamp", "client_index", "object_id", "duration",
    "bandwidth_bps", "packet_loss_q", "server_cpu_q", "status",
)

#: Storage codes for narrowed segment columns, smallest first.
_NARROW_DTYPES: tuple[tuple[str, int], ...] = (
    ("u1", 1 << 8), ("u2", 1 << 16), ("u4", 1 << 32))

_DTYPE_SIZES: dict[str, int] = {"u1": 1, "u2": 2, "u4": 4, "u8": 8}


# ----------------------------------------------------------------------
# Quantization: the text format's resolution, exactly
# ----------------------------------------------------------------------
def quantize_decimal(values: FloatArray, decimals: int) -> IntArray:
    """Round ``values`` to ``decimals`` places, returning scaled integers.

    Matches ``float(f"{v:.{decimals}f}") * 10**decimals`` element-wise —
    i.e. the integer whose decimal string the text formatter would emit.
    Printf-style formatting rounds the *exact* binary value of the double
    half-to-even; ``np.rint(values * 10**decimals)`` does the same except
    when the scaling multiplication's rounding error pushes the product
    across a rounding boundary, which can only happen within a hair of a
    half-integer.  Those rare suspects are recomputed exactly through the
    formatter itself, so the vectorized fast path never changes a value.
    """
    scale = float(10 ** decimals)
    scaled = np.asarray(values, dtype=np.float64) * scale
    quantized = np.rint(scaled).astype(np.int64)
    fractional = scaled - np.floor(scaled)
    suspects = np.flatnonzero(np.abs(fractional - 0.5) < 1e-6)
    if suspects.size:
        exact = [int(f"{v:.{decimals}f}".replace(".", ""))
                 for v in np.asarray(values, dtype=np.float64)[suspects].tolist()]
        quantized[suspects] = np.asarray(exact, dtype=np.int64)
    return quantized


def quantize_entry_columns(emit: Mapping[str, Any]) -> dict[str, IntArray]:
    """Quantize one flushed writer batch to the integer entry columns.

    ``emit`` holds the reorder buffer's float/int columns (``end``,
    ``client_index``, ``object_id``, ``duration``, ``bandwidth_bps``,
    ``packet_loss``, ``server_cpu``, ``status``).  Every rounding rule
    mirrors the text writer: timestamps truncate (``int(end)``),
    durations round half-even (``round()``), bandwidth rounds half-even
    (``f"{bw:.0f}"``), loss/CPU quantize to four decimals
    (``f"{v:.4f}"``).
    """
    end = np.asarray(emit["end"], dtype=np.float64)
    return {
        # C-cast truncation toward zero == Python int(end) for floats.
        "timestamp": end.astype(np.int64),
        "client_index": np.asarray(emit["client_index"], dtype=np.int64),
        "object_id": np.asarray(emit["object_id"], dtype=np.int64),
        "duration": np.rint(
            np.asarray(emit["duration"], dtype=np.float64)).astype(np.int64),
        "bandwidth_bps": np.rint(
            np.asarray(emit["bandwidth_bps"],
                       dtype=np.float64)).astype(np.int64),
        "packet_loss_q": quantize_decimal(
            np.asarray(emit["packet_loss"], dtype=np.float64), 4),
        "server_cpu_q": quantize_decimal(
            np.asarray(emit["server_cpu"], dtype=np.float64), 4),
        "status": np.asarray(emit["status"], dtype=np.int64),
    }


def decode_entry_columns(quantized: Mapping[str, IntArray]
                         ) -> dict[str, FloatArray | IntArray]:
    """Decode integer entry columns to trace-domain column arrays.

    Inverse of :func:`quantize_entry_columns` *composed with the text
    parser*: ``start = timestamp - duration`` and
    ``loss = q / 10**4`` reproduce, bit for bit, the doubles
    :func:`repro.trace.wms_log.read_wms_log` obtains from the formatted
    strings (integer-valued doubles are exact; IEEE division is
    correctly rounded, as is ``float()`` of the decimal string).
    """
    timestamp = np.asarray(quantized["timestamp"], dtype=np.int64)
    duration = np.asarray(quantized["duration"],
                          dtype=np.int64).astype(np.float64)
    return {
        "timestamp": timestamp,
        "client_index": np.asarray(quantized["client_index"], dtype=np.int64),
        "object_id": np.asarray(quantized["object_id"], dtype=np.int64),
        "start": timestamp.astype(np.float64) - duration,
        "duration": duration,
        "bandwidth_bps": np.asarray(quantized["bandwidth_bps"],
                                    dtype=np.int64).astype(np.float64),
        "packet_loss": np.asarray(quantized["packet_loss_q"],
                                  dtype=np.int64).astype(np.float64) / 1e4,
        "server_cpu": np.asarray(quantized["server_cpu_q"],
                                 dtype=np.int64).astype(np.float64) / 1e4,
        "status": np.asarray(quantized["status"], dtype=np.int64),
    }


def format_quantized_entry(quantized: Mapping[str, IntArray], row: int,
                           identity: ClientIdentity) -> str:
    """Format one quantized binary entry as its text-log line.

    Used by the differential oracle to prove entry-stream byte identity:
    iterating a binary trace's segments in file order and formatting each
    entry through the text formatter must reproduce the text log's data
    lines exactly.
    """
    ip, player_id, os_name = identity(int(quantized["client_index"][row]))
    return _format_entry(
        timestamp=int(quantized["timestamp"][row]),
        ip=ip, player_id=player_id, os_name=os_name,
        object_id=int(quantized["object_id"][row]),
        duration=int(quantized["duration"][row]),
        bandwidth=float(quantized["bandwidth_bps"][row]),
        loss=float(quantized["packet_loss_q"][row]) / 1e4,
        cpu=float(quantized["server_cpu_q"][row]) / 1e4,
        status=int(quantized["status"][row]))


def _narrow_code(span: int) -> str:
    for code, limit in _NARROW_DTYPES:
        if span < limit:
            return code
    return "u8"


# ----------------------------------------------------------------------
# Incremental binary writer
# ----------------------------------------------------------------------
class BinaryTraceWriter(StreamingTraceWriter):
    """Writes the columnar binary trace format incrementally.

    Shares the reorder buffer (and therefore the emitted entry order)
    with the text writer — see :class:`StreamingTraceWriter`.  Each
    flushed batch becomes one entry segment, preceded by a client block
    when the batch introduces clients not written before; the footer
    index is emitted by :meth:`finish`.

    Checkpoint/resume support extends the base writer's: scalar state
    (:meth:`state_meta`) carries the byte offset and the block index
    accumulated so far, so a resumed writer — pointed at the file
    truncated back to that offset — continues the index seamlessly.

    Parameters
    ----------
    stream:
        Open *binary* stream positioned at the write point.
    identity:
        See :class:`StreamingTraceWriter`.
    software:
        Provenance string recorded in the header and footer (the text
        codec's ``#Software`` value).
    write_header:
        Write the magic + header immediately; pass ``False`` when
        resuming into an existing file.
    """

    def __init__(self, stream: IO[bytes], identity: ClientIdentity, *,
                 software: str = "Windows Media Services 4.1",
                 write_header: bool = True) -> None:
        super().__init__(identity)
        self._stream = stream
        self._software = software
        self._offset = 0
        self._segments: list[dict[str, Any]] = []
        self._clients: list[dict[str, Any]] = []
        self._seen: set[int] = set()
        self._footer_written = False
        if write_header:
            header = json.dumps(
                {"version": BINARY_FORMAT_VERSION, "software": software},
                sort_keys=True).encode("utf-8")
            stream.write(BINARY_MAGIC)
            stream.write(len(header).to_bytes(4, "little"))
            self._offset = len(BINARY_MAGIC) + 4 + len(header)
            stream.write(header)
            pad = (-self._offset) % 8
            if pad:
                stream.write(b"\x00" * pad)
                self._offset += pad

    @property
    def byte_offset(self) -> int:
        """Bytes written so far (the resume truncation point)."""
        return self._offset

    def _write_block(self, data: bytes) -> int:
        """Write ``data`` zero-padded to 8 bytes; return its offset."""
        offset = self._offset
        self._stream.write(data)
        pad = (-len(data)) % 8
        if pad:
            self._stream.write(b"\x00" * pad)
        self._offset += len(data) + pad
        return offset

    def _emit_entries(self, emit: Mapping[str, Any]) -> None:
        quantized = quantize_entry_columns(emit)
        client = quantized["client_index"]

        unique, first_pos = np.unique(client, return_index=True)
        fresh_mask = np.asarray(
            [int(c) not in self._seen for c in unique.tolist()], dtype=bool)
        if np.any(fresh_mask):
            # First-appearance order within the batch, for determinism.
            fresh = unique[fresh_mask]
            fresh = fresh[np.argsort(first_pos[fresh_mask], kind="stable")]
            ips: list[str] = []
            players: list[str] = []
            os_names: list[str] = []
            for index in fresh.tolist():
                ip, player_id, os_name = self._identity(int(index))
                ips.append(ip)
                players.append(player_id)
                # The text writer substitutes "-" for an empty OS; store
                # the substituted value so decodes agree byte for byte.
                os_names.append(os_name or "-")
                self._seen.add(int(index))
            block: dict[str, Any] = {
                "n": int(fresh.size),
                "index_offset": self._write_block(
                    fresh.astype(np.dtype("<i8")).tobytes()),
            }
            for key, strings in (("ips", ips), ("player_ids", players),
                                 ("os_names", os_names)):
                encoded = np.asarray([s.encode("utf-8") for s in strings],
                                     dtype=np.bytes_)
                itemsize = max(1, encoded.dtype.itemsize)
                block[key] = {
                    "offset": self._write_block(
                        encoded.astype(np.dtype(f"S{itemsize}")).tobytes()),
                    "itemsize": itemsize,
                }
            self._clients.append(block)

        columns: dict[str, dict[str, Any]] = {}
        for name in ENTRY_COLUMNS:
            column = quantized[name]
            base = int(column.min())
            span = int(column.max()) - base
            if span == 0:
                # Constant column: the footer descriptor is the storage.
                columns[name] = {"offset": 0, "dtype": None, "base": base}
            else:
                code = _narrow_code(span)
                packed = (column - base).astype(np.dtype("<" + code))
                columns[name] = {"offset": self._write_block(packed.tobytes()),
                                 "dtype": code, "base": base}
        self._segments.append({"rows": int(client.size), "columns": columns})

    def finish(self) -> int:
        """Flush the buffer and append the footer index + end trailer."""
        super().finish()
        if not self._footer_written:
            footer = json.dumps(
                {"version": BINARY_FORMAT_VERSION,
                 "software": self._software,
                 "n_entries": self.n_written,
                 "segments": self._segments,
                 "clients": self._clients},
                sort_keys=True).encode("utf-8")
            self._stream.write(footer)
            self._stream.write(self._offset.to_bytes(8, "little"))
            self._stream.write(FOOTER_MAGIC)
            self._offset += len(footer) + _TRAILER_LEN
            self._footer_written = True
        return self.n_written

    def state_meta(self) -> dict[str, Any]:
        meta = super().state_meta()
        meta.update({
            "offset": self._offset,
            "segments": list(self._segments),
            "clients": list(self._clients),
        })
        return meta

    def state_arrays(self) -> dict[str, Any]:
        arrays = super().state_arrays()
        arrays["seen_clients"] = np.asarray(sorted(self._seen),
                                            dtype=np.int64)
        return arrays

    def restore(self, meta: Mapping[str, Any],
                arrays: Mapping[str, Any]) -> None:
        super().restore(meta, arrays)
        self._offset = int(meta["offset"])
        self._segments = [dict(seg) for seg in meta["segments"]]
        self._clients = [dict(block) for block in meta["clients"]]
        self._seen = set(
            np.asarray(arrays["seen_clients"], dtype=np.int64).tolist())
        self._footer_written = False


# ----------------------------------------------------------------------
# Memory-mapped binary reader
# ----------------------------------------------------------------------
class BinaryTraceReader:
    """Zero-copy segment-at-a-time access to a binary trace file.

    The file is memory-mapped once; :meth:`segment_quantized` reconstructs
    one segment's integer entry columns from the mapped bytes (a dtype
    view plus one vectorized widen-and-shift — no row objects), so a
    reader over a month-scale trace touches only the pages a consumer
    actually asks for.  Usable as a context manager.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._mm: np.memmap | None = np.memmap(self._path, dtype=np.uint8,
                                               mode="r")
        self._footer = _read_footer(self._mm, self._path)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release the memory map."""
        self._mm = None

    def __enter__(self) -> "BinaryTraceReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def _map(self) -> np.memmap:
        if self._mm is None:
            raise TraceError(f"binary trace reader for {self._path} is closed")
        return self._mm

    # -- footer accessors ----------------------------------------------
    @property
    def footer(self) -> dict[str, Any]:
        """The parsed footer index (do not mutate)."""
        return self._footer

    @property
    def n_entries(self) -> int:
        """Total entries across all segments."""
        return int(self._footer["n_entries"])

    @property
    def n_segments(self) -> int:
        """Number of entry segments in the file."""
        return len(self._footer["segments"])

    def segment_rows(self) -> list[int]:
        """Per-segment entry counts, in file order."""
        return [int(seg["rows"]) for seg in self._footer["segments"]]

    # -- column access -------------------------------------------------
    def segment_quantized(self, index: int) -> dict[str, IntArray]:
        """Integer entry columns of segment ``index`` (file order)."""
        seg = self._footer["segments"][index]
        rows = int(seg["rows"])
        mm = self._map
        out: dict[str, IntArray] = {}
        for name in ENTRY_COLUMNS:
            desc = seg["columns"][name]
            base = int(desc["base"])
            code = desc["dtype"]
            if code is None:
                out[name] = np.full(rows, base, dtype=np.int64)
            else:
                offset = int(desc["offset"])
                nbytes = rows * _DTYPE_SIZES[code]
                if offset + nbytes > mm.size:
                    raise TraceError(
                        f"{self._path}: segment {index} column {name} "
                        "extends past end of file")
                raw = mm[offset:offset + nbytes].view(np.dtype("<" + code))
                out[name] = base + raw.astype(np.int64)
        return out

    def segment_columns(self, index: int) -> dict[str, FloatArray | IntArray]:
        """Decoded trace-domain columns of segment ``index``."""
        return decode_entry_columns(self.segment_quantized(index))

    def iter_quantized(self, segments: Sequence[int] | None = None
                       ) -> Iterator[dict[str, IntArray]]:
        """Yield integer entry columns segment by segment.

        ``segments`` restricts (and orders) the walk; default is every
        segment in file order.
        """
        indices = (range(self.n_segments) if segments is None
                   else [int(k) for k in segments])
        for index in indices:
            yield self.segment_quantized(index)

    def all_quantized(self) -> dict[str, IntArray]:
        """All integer entry columns, concatenated in file order."""
        parts = [self.segment_quantized(k) for k in range(self.n_segments)]
        if not parts:
            return {name: np.empty(0, dtype=np.int64)
                    for name in ENTRY_COLUMNS}
        return {name: np.concatenate([part[name] for part in parts])
                for name in ENTRY_COLUMNS}

    # -- client identities ---------------------------------------------
    def _read_strings(self, desc: Mapping[str, Any], n: int) -> list[str]:
        itemsize = int(desc["itemsize"])
        offset = int(desc["offset"])
        raw = self._map[offset:offset + n * itemsize]
        return [b.decode("utf-8")
                for b in raw.view(np.dtype(f"S{itemsize}")).tolist()]

    def client_identity_map(self) -> dict[int, tuple[str, str, str]]:
        """``original client index -> (ip, player_id, os_name)``."""
        identities: dict[int, tuple[str, str, str]] = {}
        for block in self._footer["clients"]:
            n = int(block["n"])
            index_offset = int(block["index_offset"])
            indices = self._map[index_offset:index_offset + n * 8].view(
                np.dtype("<i8"))
            ips = self._read_strings(block["ips"], n)
            players = self._read_strings(block["player_ids"], n)
            os_names = self._read_strings(block["os_names"], n)
            for k, index in enumerate(indices.tolist()):
                identities[int(index)] = (ips[k], players[k], os_names[k])
        return identities

    def identity_lookup(self) -> ClientIdentity:
        """The identity map as a callable (for entry formatting)."""
        identities = self.client_identity_map()

        def identity(index: int) -> tuple[str, str, str]:
            try:
                return identities[index]
            except KeyError:
                raise TraceError(
                    f"{self._path}: entry references client {index} "
                    "absent from every client block") from None
        return identity


def _read_footer(mm: np.memmap, path: Path) -> dict[str, Any]:
    if mm.size < len(BINARY_MAGIC) + _TRAILER_LEN:
        raise TraceError(f"{path}: too short to be a binary trace")
    if bytes(mm[:len(BINARY_MAGIC)].tobytes()) != BINARY_MAGIC:
        raise TraceError(f"{path}: not a binary trace (bad magic)")
    trailer = mm[mm.size - _TRAILER_LEN:].tobytes()
    if trailer[8:] != FOOTER_MAGIC:
        raise TraceError(
            f"{path}: missing end trailer — file is truncated or the "
            "writer never ran finish()")
    offset = int.from_bytes(trailer[:8], "little")
    if not len(BINARY_MAGIC) <= offset <= mm.size - _TRAILER_LEN:
        raise TraceError(f"{path}: footer offset {offset} out of range")
    try:
        footer = json.loads(
            mm[offset:mm.size - _TRAILER_LEN].tobytes().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"{path}: footer index is corrupt: {exc}") from exc
    version = footer.get("version")
    if version != BINARY_FORMAT_VERSION:
        raise TraceError(
            f"{path}: binary format version {version!r}, this build "
            f"reads version {BINARY_FORMAT_VERSION}")
    return dict(footer)


# ----------------------------------------------------------------------
# One-shot binary write / read
# ----------------------------------------------------------------------
def write_binary_trace(trace: Trace, path: str | Path, *,
                       software: str = "Windows Media Services 4.1") -> int:
    """Write ``trace`` as a binary trace file; returns the entry count.

    The one-shot front end to :class:`BinaryTraceWriter`, mirroring
    :func:`repro.trace.wms_log.write_wms_log`: the whole trace is pushed
    as a single batch, so entries land in the same ``(end, position)``
    order as the text log's lines.
    """
    with open(path, "wb") as stream:
        writer = BinaryTraceWriter(stream, _table_identity(trace),
                                   software=software)
        writer.push(
            client_index=trace.client_index, object_id=trace.object_id,
            start=trace.start, duration=trace.duration,
            bandwidth_bps=trace.bandwidth_bps,
            packet_loss=trace.packet_loss, server_cpu=trace.server_cpu,
            status=trace.status, global_offset=0, horizon=-np.inf)
        return writer.finish()


def read_binary_trace(path: str | Path, *,
                      resolver: IpResolver | None = None,
                      extent: float | None = None) -> Trace:
    """Decode a binary trace file into a :class:`Trace`.

    Produces a trace bit-identical to parsing the corresponding text log
    with :func:`repro.trace.wms_log.read_wms_log`: clients are re-interned
    in order of first appearance in the entry stream (exactly what the
    text parser's interning dictionary does), column doubles reconstruct
    the parsed string values (see :func:`decode_entry_columns`), and the
    :class:`Trace` constructor applies the same stable start sort.

    Parameters
    ----------
    path:
        Binary trace file written by :class:`BinaryTraceWriter`.
    resolver:
        Optional ``ip -> (as_number, country)`` mapping, as in
        :func:`read_wms_log`.
    extent:
        Observation-window override, as in :func:`read_wms_log`.

    Raises
    ------
    TraceError
        On structural corruption (bad magic, missing trailer, dangling
        client references).
    """
    with BinaryTraceReader(path) as reader:
        quantized = reader.all_quantized()
        identities = reader.client_identity_map()

    original = quantized["client_index"]
    unique, first_pos, inverse = np.unique(
        original, return_index=True, return_inverse=True)
    appearance = np.argsort(first_pos, kind="stable")
    rank = np.empty(appearance.size, dtype=np.int64)
    rank[appearance] = np.arange(appearance.size, dtype=np.int64)
    dense = rank[inverse] if original.size else np.empty(0, dtype=np.int64)

    ips: list[str] = []
    players: list[str] = []
    os_names: list[str] = []
    as_numbers: list[int] = []
    countries: list[str] = []
    for index in unique[appearance].tolist():
        try:
            ip, player_id, os_name = identities[int(index)]
        except KeyError:
            raise TraceError(
                f"{path}: entry references client {index} absent from "
                "every client block") from None
        ips.append(ip)
        players.append(player_id)
        os_names.append(os_name)
        as_number, country = (resolver(ip) if resolver is not None
                              else (0, ""))
        as_numbers.append(as_number)
        countries.append(country)

    decoded = decode_entry_columns(quantized)
    clients = ClientTable(player_ids=players, ips=ips,
                          as_numbers=as_numbers, countries=countries,
                          os_names=os_names)
    return Trace(
        clients=clients,
        client_index=dense,
        object_id=decoded["object_id"],
        start=decoded["start"],
        duration=decoded["duration"],
        bandwidth_bps=decoded["bandwidth_bps"],
        packet_loss=decoded["packet_loss"],
        server_cpu=decoded["server_cpu"],
        status=decoded["status"],
        extent=extent,
    )


# ----------------------------------------------------------------------
# Codec registry
# ----------------------------------------------------------------------
class TraceCodec(abc.ABC):
    """One interchangeable on-disk trace serialization.

    A codec bundles the one-shot write/read pair with the stream plumbing
    the streaming pipeline needs (fresh open, resume reopen, incremental
    writer construction).  Writers returned by :meth:`make_writer` all
    derive from :class:`StreamingTraceWriter`, so the pipeline drives
    them identically regardless of format.
    """

    #: Registry key (the CLI ``--codec`` value).
    name: ClassVar[str] = ""

    #: Conventional filename suffix.
    suffix: ClassVar[str] = ""

    @abc.abstractmethod
    def write(self, trace: Trace, path: str | Path, *,
              software: str = "Windows Media Services 4.1") -> int:
        """Serialize a whole trace to ``path``; returns the entry count."""

    @abc.abstractmethod
    def read(self, path: str | Path, *,
             resolver: IpResolver | None = None,
             extent: float | None = None,
             on_error: str = "raise",
             error_sink: list[LogParseError] | None = None) -> Trace:
        """Deserialize ``path`` back into a :class:`Trace`."""

    @abc.abstractmethod
    def open_stream(self, path: str | Path) -> IO[Any]:
        """Open ``path`` fresh for incremental writing."""

    @abc.abstractmethod
    def reopen_stream(self, path: str | Path, offset: int) -> IO[Any]:
        """Reopen ``path`` for resume: truncate to ``offset`` and seek."""

    @abc.abstractmethod
    def make_writer(self, stream: IO[Any], identity: ClientIdentity, *,
                    software: str = "Windows Media Services 4.1",
                    write_header: bool = True) -> StreamingTraceWriter:
        """Build the incremental writer for an open stream."""


class TextTraceCodec(TraceCodec):
    """The WMS W3C-style text log (:mod:`repro.trace.wms_log`)."""

    name = "text"
    suffix = ".log"

    def write(self, trace: Trace, path: str | Path, *,
              software: str = "Windows Media Services 4.1") -> int:
        return write_wms_log(trace, path, software=software)

    def read(self, path: str | Path, *,
             resolver: IpResolver | None = None,
             extent: float | None = None,
             on_error: str = "raise",
             error_sink: list[LogParseError] | None = None) -> Trace:
        return read_wms_log(path, resolver=resolver, extent=extent,
                            on_error=on_error, error_sink=error_sink)

    def open_stream(self, path: str | Path) -> IO[Any]:
        return open(path, "w", encoding="ascii")

    def reopen_stream(self, path: str | Path, offset: int) -> IO[Any]:
        # noqa-justified: ownership of the open stream passes to the caller.
        stream = open(path, "r+", encoding="ascii")  # noqa: SIM115
        stream.truncate(offset)
        stream.seek(offset)
        return stream

    def make_writer(self, stream: IO[Any], identity: ClientIdentity, *,
                    software: str = "Windows Media Services 4.1",
                    write_header: bool = True) -> StreamingTraceWriter:
        return StreamingWmsLogWriter(stream, identity, software=software,
                                     write_header=write_header)


class BinaryTraceCodec(TraceCodec):
    """The columnar binary format defined by this module.

    ``on_error`` / ``error_sink`` are accepted for interface parity but
    unused: the binary format has no line-level corruption mode —
    structural damage raises :class:`~repro.errors.TraceError`.
    """

    name = "binary"
    suffix = ".rtb"

    def write(self, trace: Trace, path: str | Path, *,
              software: str = "Windows Media Services 4.1") -> int:
        return write_binary_trace(trace, path, software=software)

    def read(self, path: str | Path, *,
             resolver: IpResolver | None = None,
             extent: float | None = None,
             on_error: str = "raise",
             error_sink: list[LogParseError] | None = None) -> Trace:
        return read_binary_trace(path, resolver=resolver, extent=extent)

    def open_stream(self, path: str | Path) -> IO[Any]:
        return open(path, "wb")

    def reopen_stream(self, path: str | Path, offset: int) -> IO[Any]:
        # noqa-justified: ownership of the open stream passes to the caller.
        stream = open(path, "r+b")  # noqa: SIM115
        stream.truncate(offset)
        stream.seek(offset)
        return stream

    def make_writer(self, stream: IO[Any], identity: ClientIdentity, *,
                    software: str = "Windows Media Services 4.1",
                    write_header: bool = True) -> StreamingTraceWriter:
        return BinaryTraceWriter(stream, identity, software=software,
                                 write_header=write_header)


_CODECS: dict[str, TraceCodec] = {}


def register_codec(codec: TraceCodec) -> None:
    """Register ``codec`` under its ``name``.

    Raises
    ------
    TraceError
        If the name is empty or already taken.
    """
    if not codec.name:
        raise TraceError("codec has no name")
    if codec.name in _CODECS:
        raise TraceError(f"codec {codec.name!r} is already registered")
    _CODECS[codec.name] = codec


def available_codecs() -> tuple[str, ...]:
    """Registered codec names, sorted."""
    return tuple(sorted(_CODECS))


def get_codec(name: str) -> TraceCodec:
    """Look up a codec by name.

    Raises
    ------
    TraceError
        For an unknown name (the message lists what is available).
    """
    try:
        return _CODECS[name]
    except KeyError:
        raise TraceError(
            f"unknown trace codec {name!r}; available: "
            f"{', '.join(available_codecs())}") from None


def detect_codec(path: str | Path) -> str:
    """Identify the codec of an existing trace file by its leading bytes.

    A file opening with the binary magic is ``"binary"``; anything else
    is assumed to be a text log.
    """
    with open(path, "rb") as stream:
        return ("binary" if stream.read(len(BINARY_MAGIC)) == BINARY_MAGIC
                else "text")


register_codec(TextTraceCodec())
register_codec(BinaryTraceCodec())
