"""Row-level record types of the trace data model.

These are the per-row views over the columnar :class:`repro.trace.store.Trace`
container and the currency of the log reader/writer.  Field names follow the
information the paper lists for each Windows Media Server log entry
(Section 2.3): client identification, environment, requested object,
transfer statistics, server load, and a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClientRecord:
    """A client as identified by its unique player ID.

    The paper identifies clients by the player-ID field of the log and maps
    their IP addresses to autonomous systems and countries (Section 3.1).

    Attributes
    ----------
    player_id:
        The unique software-player identifier (one per client install).
    ip:
        Dotted-quad IP address the client connected from.
    as_number:
        Autonomous system the IP traces back to (0 when unknown).
    country:
        Two-letter country code (empty when unknown).
    os_name:
        Client operating-system string from the log environment fields.
    """

    player_id: str
    ip: str
    as_number: int = 0
    country: str = ""
    os_name: str = "Windows_98"

    def __post_init__(self) -> None:
        if not self.player_id:
            raise ValueError("player_id must be non-empty")
        if self.as_number < 0:
            raise ValueError(f"as_number must be non-negative, got {self.as_number}")


@dataclass(frozen=True)
class TransferRecord:
    """One unicast transfer: a start/stop viewing of a live object.

    Attributes
    ----------
    client:
        The client performing the transfer.
    object_id:
        Index of the live object (feed) served; the paper's trace has two.
    start:
        Transfer start time in seconds since trace start.
    duration:
        Transfer length in seconds (the paper's ``l(j)``, Section 5.3).
    bandwidth_bps:
        Average delivered bandwidth in bits per second (Figure 20).
    packet_loss:
        Packet loss rate in [0, 1] reported for the transfer.
    server_cpu:
        Server CPU utilization in [0, 1] sampled during the transfer.
    status:
        HTTP-style status code of the response (200 = served).
    """

    client: ClientRecord
    object_id: int
    start: float
    duration: float
    bandwidth_bps: float = 0.0
    packet_loss: float = 0.0
    server_cpu: float = 0.0
    status: int = 200

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ValueError(f"object_id must be non-negative, got {self.object_id}")
        if self.duration < 0:
            raise ValueError(f"duration must be non-negative, got {self.duration}")
        if self.bandwidth_bps < 0:
            raise ValueError(
                f"bandwidth_bps must be non-negative, got {self.bandwidth_bps}")
        if not 0.0 <= self.packet_loss <= 1.0:
            raise ValueError(f"packet_loss must be in [0, 1], got {self.packet_loss}")

    @property
    def end(self) -> float:
        """Transfer stop time in seconds since trace start."""
        return self.start + self.duration

    @property
    def bytes_transferred(self) -> float:
        """Approximate bytes delivered: duration times bandwidth over 8."""
        return self.duration * self.bandwidth_bps / 8.0


@dataclass(frozen=True)
class SessionRecord:
    """A maximal burst of client activity under the session timeout ``T_o``.

    Produced by :class:`repro.core.sessionizer.Sessionizer`; see Figure 1 of
    the paper for the ON/OFF semantics.

    Attributes
    ----------
    client_index:
        Index of the client in the owning trace's client table.
    start:
        Session start (start of its first transfer).
    end:
        Session end (latest end among its transfers).
    transfer_indices:
        Indices (into the owning trace) of the transfers in this session,
        ordered by start time.
    """

    client_index: int
    start: float
    end: float
    transfer_indices: tuple[int, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("session end must not precede its start")
        if not self.transfer_indices:
            raise ValueError("a session must contain at least one transfer")

    @property
    def on_time(self) -> float:
        """Session ON time ``l(i)`` in seconds (Section 4.2)."""
        return self.end - self.start

    @property
    def n_transfers(self) -> int:
        """Number of transfers in the session (Section 4.4)."""
        return len(self.transfer_indices)
