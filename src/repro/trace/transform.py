"""Trace transformations: windowing and merging.

Real measurement workflows rarely analyze a log whole: the paper itself
works with daily harvests stitched into a 28-day window, and its temporal
figures are computed over sub-windows.  :func:`time_slice` extracts a
window (re-basing timestamps, optionally clipping in-progress transfers at
the edges, as a real collection boundary does), and :func:`merge_traces`
combines traces from several servers or collection periods into one,
re-interning clients by player ID.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .._typing import IntArray
from ..errors import TraceError
from .store import ClientTable, Trace

#: Shape/dtype-generic array (per-trace column fragments pre-concat).
_AnyArray = np.ndarray[Any, np.dtype[Any]]


def time_slice(trace: Trace, start: float, end: float, *,
               clip: bool = True, rebase: bool = True) -> Trace:
    """Extract the sub-trace of transfers starting in ``[start, end)``.

    Parameters
    ----------
    trace:
        The source trace.
    start, end:
        Window bounds in trace time; must satisfy
        ``0 <= start < end <= trace.extent``.
    clip:
        Truncate transfers that run past ``end`` at the window edge (a
        real collection boundary); with ``False`` they keep their full
        duration, producing the "spanning entry" artifacts of
        Section 2.4.
    rebase:
        Shift timestamps so the window starts at zero and set the extent
        to the window length; with ``False`` original timestamps and
        extent are kept.
    """
    if not 0.0 <= start < end:
        raise TraceError(f"need 0 <= start < end, got [{start}, {end})")
    if end > trace.extent:
        raise TraceError(
            f"window end ({end}) exceeds trace extent ({trace.extent})")
    mask = (trace.start >= start) & (trace.start < end)
    window = trace.filter(mask)
    durations = window.duration
    if clip and len(window):
        durations = np.minimum(durations, end - window.start)
    starts = window.start - start if rebase else window.start
    extent = (end - start) if rebase else trace.extent
    return Trace(
        clients=window.clients,
        client_index=window.client_index,
        object_id=window.object_id,
        start=starts,
        duration=durations,
        bandwidth_bps=window.bandwidth_bps,
        packet_loss=window.packet_loss,
        server_cpu=window.server_cpu,
        status=window.status,
        extent=extent,
    )


def daily_slices(trace: Trace, *, day_seconds: float = 86_400.0) -> list[Trace]:
    """Split a trace into consecutive day-long slices (rebased).

    The final partial day, if any, is included.  Mirrors the paper's
    daily log harvests.
    """
    if day_seconds <= 0:
        raise TraceError("day_seconds must be positive")
    out: list[Trace] = []
    t = 0.0
    while t < trace.extent:
        end = min(t + day_seconds, trace.extent)
        out.append(time_slice(trace, t, end))
        t = end
    return out


def _merged_client_mapping(traces: Sequence[Trace]
                           ) -> tuple[ClientTable, IntArray, IntArray]:
    """Dedup the client tables of ``traces`` by player ID, vectorized.

    Returns ``(merged_table, merged_of_local, bounds)``: the merged
    client table in first-appearance order, the merged index of every
    local client across all inputs (concatenated), and the concatenation
    offsets so trace ``k``'s clients map through
    ``merged_of_local[bounds[k]:bounds[k + 1]]``.
    """
    player_ids = np.concatenate(
        [np.asarray(t.clients.player_ids, dtype=np.str_) for t in traces])
    uniq_sorted, first_pos, inverse = np.unique(
        player_ids, return_index=True, return_inverse=True)
    # np.unique sorts lexically; re-rank so merged indices follow the
    # order of first appearance, as the interning dict did.
    appearance = np.argsort(first_pos, kind="stable")
    rank = np.empty(appearance.size, dtype=np.int64)
    rank[appearance] = np.arange(appearance.size, dtype=np.int64)
    merged_of_local = rank[inverse]

    keep = first_pos[appearance]  # identity fields from first appearance
    merged_table = ClientTable(
        player_ids=player_ids[keep],
        ips=np.concatenate(
            [np.asarray(t.clients.ips, dtype=np.str_) for t in traces])[keep],
        as_numbers=np.concatenate(
            [t.clients.as_numbers for t in traces])[keep],
        countries=np.concatenate(
            [np.asarray(t.clients.countries, dtype=np.str_)
             for t in traces])[keep],
        os_names=np.concatenate(
            [np.asarray(t.clients.os_names, dtype=np.str_)
             for t in traces])[keep],
    )
    bounds = np.zeros(len(traces) + 1, dtype=np.int64)
    np.cumsum([t.n_clients for t in traces], out=bounds[1:])
    return merged_table, merged_of_local, bounds


def merge_traces(traces: Sequence[Trace], *,
                 offsets: Sequence[float] | None = None) -> Trace:
    """Merge several traces into one, re-interning clients by player ID.

    Clients appearing in multiple inputs (same player ID) become a single
    client in the output; their identity fields are taken from the first
    appearance.  Transfer timestamps are shifted by the per-trace
    ``offsets`` (default: zero for all — concurrent servers; pass
    cumulative extents to concatenate collection periods end to end).

    The client re-interning is vectorized (one ``np.unique`` over the
    concatenated player IDs ranked by first appearance) rather than a
    per-client dictionary walk; :func:`_reference_merge_traces` keeps the
    loop formulation and the property suite asserts equivalence.

    Raises
    ------
    TraceError
        If no traces are given or offsets mismatch.
    """
    if not traces:
        raise TraceError("merge_traces requires at least one trace")
    if offsets is None:
        offsets = [0.0] * len(traces)
    if len(offsets) != len(traces):
        raise TraceError(
            f"need one offset per trace ({len(offsets)} != {len(traces)})")

    merged_clients, merged_of_local, bounds = _merged_client_mapping(traces)

    columns: dict[str, list[_AnyArray]] = {
        name: [] for name in
        ("client_index", "object_id", "start", "duration",
         "bandwidth_bps", "packet_loss", "server_cpu", "status")}
    extent = 0.0
    for k, (trace, offset) in enumerate(zip(traces, offsets, strict=True)):
        local_to_merged = merged_of_local[bounds[k]:bounds[k + 1]]
        columns["client_index"].append(local_to_merged[trace.client_index])
        columns["object_id"].append(trace.object_id)
        columns["start"].append(trace.start + offset)
        columns["duration"].append(trace.duration)
        columns["bandwidth_bps"].append(trace.bandwidth_bps)
        columns["packet_loss"].append(trace.packet_loss)
        columns["server_cpu"].append(trace.server_cpu)
        columns["status"].append(trace.status)
        extent = max(extent, trace.extent + offset)

    stacked = {name: (np.concatenate(parts) if parts
                      else np.empty(0, dtype=np.float64))
               for name, parts in columns.items()}
    return Trace(clients=merged_clients, extent=extent, **stacked)


def _reference_merge_traces(traces: Sequence[Trace], *,
                            offsets: Sequence[float] | None = None) -> Trace:
    """Per-client Python-loop formulation of :func:`merge_traces`.

    Kept as the executable specification for the vectorized re-interning
    (see ``tests/property/test_transform_properties.py``).
    """
    if not traces:
        raise TraceError("merge_traces requires at least one trace")
    if offsets is None:
        offsets = [0.0] * len(traces)
    if len(offsets) != len(traces):
        raise TraceError(
            f"need one offset per trace ({len(offsets)} != {len(traces)})")

    player_index: dict[str, int] = {}
    player_ids: list[str] = []
    ips: list[str] = []
    as_numbers: list[int] = []
    countries: list[str] = []
    os_names: list[str] = []

    columns: dict[str, list[_AnyArray]] = {
        name: [] for name in
        ("client_index", "object_id", "start", "duration",
         "bandwidth_bps", "packet_loss", "server_cpu", "status")}
    extent = 0.0
    for trace, offset in zip(traces, offsets, strict=True):
        # Map this trace's client indices into the merged table.
        local_to_merged = np.empty(trace.n_clients, dtype=np.int64)
        table = trace.clients
        for local in range(trace.n_clients):
            pid = str(table.player_ids[local])
            merged = player_index.get(pid)
            if merged is None:
                merged = len(player_ids)
                player_index[pid] = merged
                player_ids.append(pid)
                ips.append(str(table.ips[local]))
                as_numbers.append(int(table.as_numbers[local]))
                countries.append(str(table.countries[local]))
                os_names.append(str(table.os_names[local]))
            local_to_merged[local] = merged
        columns["client_index"].append(local_to_merged[trace.client_index])
        columns["object_id"].append(trace.object_id)
        columns["start"].append(trace.start + offset)
        columns["duration"].append(trace.duration)
        columns["bandwidth_bps"].append(trace.bandwidth_bps)
        columns["packet_loss"].append(trace.packet_loss)
        columns["server_cpu"].append(trace.server_cpu)
        columns["status"].append(trace.status)
        extent = max(extent, trace.extent + offset)

    merged_clients = ClientTable(player_ids, ips, as_numbers, countries,
                                 os_names)
    stacked = {name: (np.concatenate(parts) if parts
                      else np.empty(0, dtype=np.float64))
               for name, parts in columns.items()}
    return Trace(clients=merged_clients, extent=extent, **stacked)
