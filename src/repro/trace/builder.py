"""Incremental trace construction.

The simulator and the log parser both produce transfers one at a time and in
no particular order; :class:`TraceBuilder` accumulates them in growable
buffers, interning clients by player ID, and emits a sorted columnar
:class:`~repro.trace.store.Trace` at the end.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .records import ClientRecord
from .store import ClientTable, Trace


class TraceBuilder:
    """Accumulates clients and transfers, then builds a :class:`Trace`.

    Clients are interned by ``player_id``: registering the same player twice
    returns the same index (and validates that the other identity fields
    did not change).
    """

    def __init__(self) -> None:
        self._player_index: dict[str, int] = {}
        self._clients: list[ClientRecord] = []
        self._client_index: list[int] = []
        self._object_id: list[int] = []
        self._start: list[float] = []
        self._duration: list[float] = []
        self._bandwidth: list[float] = []
        self._loss: list[float] = []
        self._server_cpu: list[float] = []
        self._status: list[int] = []
        self._built = False

    @property
    def n_clients(self) -> int:
        """Number of distinct clients registered so far."""
        return len(self._clients)

    @property
    def n_transfers(self) -> int:
        """Number of transfers appended so far."""
        return len(self._start)

    def add_client(self, client: ClientRecord) -> int:
        """Intern ``client`` and return its index.

        Re-registering an existing player ID with identical fields is a
        no-op; conflicting fields raise :class:`TraceError`.
        """
        existing = self._player_index.get(client.player_id)
        if existing is not None:
            if self._clients[existing] != client:
                raise TraceError(
                    f"player {client.player_id!r} re-registered with "
                    f"different identity fields")
            return existing
        index = len(self._clients)
        self._clients.append(client)
        self._player_index[client.player_id] = index
        return index

    def add_transfer(self, client_index: int, object_id: int, start: float,
                     duration: float, *, bandwidth_bps: float = 0.0,
                     packet_loss: float = 0.0, server_cpu: float = 0.0,
                     status: int = 200) -> None:
        """Append one transfer for an already-registered client."""
        if not 0 <= client_index < len(self._clients):
            raise TraceError(f"unknown client index {client_index}")
        if duration < 0:
            raise TraceError(f"duration must be non-negative, got {duration}")
        self._client_index.append(client_index)
        self._object_id.append(object_id)
        self._start.append(start)
        self._duration.append(duration)
        self._bandwidth.append(bandwidth_bps)
        self._loss.append(packet_loss)
        self._server_cpu.append(server_cpu)
        self._status.append(status)

    def build(self, extent: float | None = None) -> Trace:
        """Produce the sorted columnar :class:`Trace`.

        The builder may only be built once (its buffers are handed over).
        """
        if self._built:
            raise TraceError("TraceBuilder.build() may only be called once")
        self._built = True
        clients = ClientTable(
            player_ids=[c.player_id for c in self._clients],
            ips=[c.ip for c in self._clients],
            as_numbers=np.asarray([c.as_number for c in self._clients],
                                  dtype=np.int64),
            countries=[c.country for c in self._clients],
            os_names=[c.os_name for c in self._clients],
        )
        return Trace(
            clients=clients,
            client_index=self._client_index,
            object_id=self._object_id,
            start=self._start,
            duration=self._duration,
            bandwidth_bps=self._bandwidth,
            packet_loss=self._loss,
            server_cpu=self._server_cpu,
            status=self._status,
            extent=extent,
        )
