"""Windows-Media-Server-style log writing and parsing.

The paper's trace is a Windows Media Services 4.1 log: one space-separated
entry per client/server request-response with client identification,
environment, requested object, transfer statistics, server load, and a
one-second-resolution timestamp (Section 2.3).  This module emulates that
format closely enough that the sanitization and characterization pipeline
exercises the same parsing realities — coarse timestamps, ``-`` placeholders,
and per-entry (not per-session) rows.

The log intentionally does *not* carry autonomous-system or country columns:
the paper derived those by tracing IPs back to ASes with external routing
data (Section 3.1).  :func:`read_wms_log` accepts an optional ``resolver``
callable standing in for that external mapping.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Callable, Iterable, TextIO

from ..errors import LogParseError
from .builder import TraceBuilder
from .records import ClientRecord
from .store import Trace

#: Columns written by :func:`write_wms_log`, in order.
LOG_FIELDS: tuple[str, ...] = (
    "x-timestamp",        # integer seconds since trace start (entry creation)
    "c-ip",
    "c-playerid",
    "c-os",
    "cs-uri-stem",        # /live/feed<object_id>
    "x-duration",         # transfer length, integer seconds
    "avg-bandwidth",      # bits per second
    "packet-loss-rate",   # fraction in [0, 1]
    "s-cpu-util",         # fraction in [0, 1]
    "sc-status",
    "cs-referer",
)

_URI_PREFIX = "/live/feed"

#: Type of the optional IP -> (as_number, country) resolver.
IpResolver = Callable[[str], tuple[int, str]]


def _format_entry(timestamp: int, ip: str, player_id: str, os_name: str,
                  object_id: int, duration: int, bandwidth: float,
                  loss: float, cpu: float, status: int) -> str:
    return " ".join((
        str(timestamp),
        ip,
        player_id,
        os_name or "-",
        f"{_URI_PREFIX}{object_id}",
        str(duration),
        f"{bandwidth:.0f}",
        f"{loss:.4f}",
        f"{cpu:.4f}",
        str(status),
        "-",
    ))


def write_wms_log(trace: Trace, path: str | Path | TextIO, *,
                  software: str = "Windows Media Services 4.1") -> int:
    """Write ``trace`` as a WMS-style log; returns the number of entries.

    Entries are emitted in order of entry-creation time (the transfer *end*,
    floored to whole seconds — the server logs a request/response when the
    transfer completes).  Durations are rounded to whole seconds, matching
    the paper's one-second resolution.
    """
    own = isinstance(path, (str, Path))
    stream: TextIO = open(path, "w", encoding="ascii") if own else path
    try:
        stream.write(f"#Software: {software}\n")
        stream.write("#Version: 1.0\n")
        stream.write(f"#Fields: {' '.join(LOG_FIELDS)}\n")
        ends = trace.end
        order = ends.argsort(kind="stable")
        count = 0
        for i in order:
            idx = int(i)
            client = trace.clients.record(int(trace.client_index[idx]))
            duration = int(round(float(trace.duration[idx])))
            timestamp = int(ends[idx])
            stream.write(_format_entry(
                timestamp=timestamp,
                ip=client.ip,
                player_id=client.player_id,
                os_name=client.os_name,
                object_id=int(trace.object_id[idx]),
                duration=duration,
                bandwidth=float(trace.bandwidth_bps[idx]),
                loss=float(trace.packet_loss[idx]),
                cpu=float(trace.server_cpu[idx]),
                status=int(trace.status[idx]),
            ))
            stream.write("\n")
            count += 1
        return count
    finally:
        if own:
            stream.close()


def _parse_fields_header(line: str, line_number: int) -> list[str]:
    fields = line[len("#Fields:"):].split()
    missing = [f for f in LOG_FIELDS if f not in fields]
    if missing:
        raise LogParseError(f"log is missing required fields: {missing}",
                            line_number=line_number, line=line)
    return fields


def iter_log_lines(stream: Iterable[str]) -> Iterable[tuple[int, str]]:
    """Yield ``(line_number, stripped_line)`` skipping blanks."""
    for number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if line:
            yield number, line


def read_wms_log(path: str | Path | TextIO, *,
                 resolver: IpResolver | None = None,
                 extent: float | None = None,
                 on_error: str = "raise",
                 error_sink: list[LogParseError] | None = None) -> Trace:
    """Parse a WMS-style log back into a :class:`Trace`.

    Parameters
    ----------
    path:
        Log file path or open text stream.
    resolver:
        Optional ``ip -> (as_number, country)`` mapping standing in for the
        external IP-to-AS traceback the paper performed; unresolved clients
        get AS 0 and an empty country.
    extent:
        Observation-window length override.  When omitted, the latest entry
        timestamp is used.
    on_error:
        ``"raise"`` (default) aborts on the first malformed data line;
        ``"skip"`` drops malformed lines and continues — real month-long
        logs contain truncated lines at harvest boundaries.  A missing or
        incomplete ``#Fields`` header always raises.
    error_sink:
        With ``on_error="skip"``, an optional list that collects the
        :class:`LogParseError` for every skipped line.

    Raises
    ------
    LogParseError
        On malformed lines (``on_error="raise"``) or a missing/incomplete
        ``#Fields`` header.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    own = isinstance(path, (str, Path))
    stream: TextIO = open(path, "r", encoding="ascii") if own else path
    try:
        builder = TraceBuilder()
        fields: list[str] | None = None
        for number, line in iter_log_lines(stream):
            if line.startswith("#"):
                if line.startswith("#Fields:"):
                    fields = _parse_fields_header(line, number)
                continue
            if fields is None:
                raise LogParseError("data before #Fields header",
                                    line_number=number, line=line)
            try:
                parts = line.split()
                if len(parts) != len(fields):
                    raise LogParseError(
                        f"expected {len(fields)} columns, got {len(parts)}",
                        line_number=number, line=line)
                row = dict(zip(fields, parts))
                try:
                    timestamp = int(row["x-timestamp"])
                    duration = float(row["x-duration"])
                    uri = row["cs-uri-stem"]
                    if not uri.startswith(_URI_PREFIX):
                        raise ValueError(f"unexpected URI stem {uri!r}")
                    object_id = int(uri[len(_URI_PREFIX):])
                    bandwidth = float(row["avg-bandwidth"])
                    loss = float(row["packet-loss-rate"])
                    cpu = float(row["s-cpu-util"])
                    status = int(row["sc-status"])
                except (KeyError, ValueError) as exc:
                    raise LogParseError(str(exc), line_number=number,
                                        line=line) from exc
            except LogParseError as exc:
                if on_error == "skip":
                    if error_sink is not None:
                        error_sink.append(exc)
                    continue
                raise
            ip = row["c-ip"]
            as_number, country = (resolver(ip) if resolver is not None
                                  else (0, ""))
            client_idx = builder.add_client(ClientRecord(
                player_id=row["c-playerid"],
                ip=ip,
                as_number=as_number,
                country=country,
                os_name=row["c-os"],
            ))
            builder.add_transfer(
                client_index=client_idx,
                object_id=object_id,
                start=float(timestamp) - duration,
                duration=duration,
                bandwidth_bps=bandwidth,
                packet_loss=loss,
                server_cpu=cpu,
                status=status,
            )
        return builder.build(extent=extent)
    finally:
        if own:
            stream.close()


def log_round_trip(trace: Trace, *, resolver: IpResolver | None = None) -> Trace:
    """Serialize ``trace`` through the log format and parse it back.

    Useful in tests: the result reflects exactly what the paper's pipeline
    could have seen (one-second timestamps, rounded durations).
    """
    buffer = io.StringIO()
    write_wms_log(trace, buffer)
    buffer.seek(0)
    return read_wms_log(buffer, resolver=resolver, extent=trace.extent)
