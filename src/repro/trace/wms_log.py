"""Windows-Media-Server-style log writing and parsing.

The paper's trace is a Windows Media Services 4.1 log: one space-separated
entry per client/server request-response with client identification,
environment, requested object, transfer statistics, server load, and a
one-second-resolution timestamp (Section 2.3).  This module emulates that
format closely enough that the sanitization and characterization pipeline
exercises the same parsing realities — coarse timestamps, ``-`` placeholders,
and per-entry (not per-session) rows.

The log intentionally does *not* carry autonomous-system or country columns:
the paper derived those by tracing IPs back to ASes with external routing
data (Section 3.1).  :func:`read_wms_log` accepts an optional ``resolver``
callable standing in for that external mapping.

The text format implemented here is one of the interchangeable trace
codecs registered in :mod:`repro.trace.codecs`; the columnar binary codec
shares this module's :class:`StreamingTraceWriter` reorder buffer, so both
emit entries in the identical ``(end, trace position)`` order.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, TextIO

import numpy as np

from .._typing import FloatArray, IntArray
from ..errors import LogParseError
from .builder import TraceBuilder
from .records import ClientRecord
from .store import Trace

#: An ndarray of any dtype (the reorder buffer mixes floats and ints).
_AnyArray = np.ndarray[Any, np.dtype[Any]]

#: Columns written by :func:`write_wms_log`, in order.
LOG_FIELDS: tuple[str, ...] = (
    "x-timestamp",        # integer seconds since trace start (entry creation)
    "c-ip",
    "c-playerid",
    "c-os",
    "cs-uri-stem",        # /live/feed<object_id>
    "x-duration",         # transfer length, integer seconds
    "avg-bandwidth",      # bits per second
    "packet-loss-rate",   # fraction in [0, 1]
    "s-cpu-util",         # fraction in [0, 1]
    "sc-status",
    "cs-referer",
)

_URI_PREFIX = "/live/feed"

#: The Unicode replacement character: the marker ``errors="replace"``
#: decoding leaves behind for undecodable bytes.  A well-formed log is
#: pure ASCII, so its presence identifies a corrupt line unambiguously.
_REPLACEMENT = "�"

#: Type of the optional IP -> (as_number, country) resolver.
IpResolver = Callable[[str], tuple[int, str]]


def _format_entry(timestamp: int, ip: str, player_id: str, os_name: str,
                  object_id: int, duration: int, bandwidth: float,
                  loss: float, cpu: float, status: int) -> str:
    return " ".join((
        str(timestamp),
        ip,
        player_id,
        os_name or "-",
        f"{_URI_PREFIX}{object_id}",
        str(duration),
        f"{bandwidth:.0f}",
        f"{loss:.4f}",
        f"{cpu:.4f}",
        str(status),
        "-",
    ))


#: Type of the client-identity provider used by the streaming writers:
#: maps a client index to ``(ip, player_id, os_name)``.
ClientIdentity = Callable[[int], tuple[str, str, str]]

#: Per-transfer columns buffered by :class:`StreamingTraceWriter`, in
#: checkpoint/state order.
_WRITER_COLUMNS: tuple[tuple[str, type], ...] = (
    ("end", np.float64), ("position", np.int64),
    ("client_index", np.int64), ("object_id", np.int64),
    ("duration", np.float64), ("bandwidth_bps", np.float64),
    ("packet_loss", np.float64), ("server_cpu", np.float64),
    ("status", np.int64),
)


def _table_identity(trace: Trace) -> ClientIdentity:
    """Client identities looked up from a trace's client table."""
    clients = trace.clients

    def identity(index: int) -> tuple[str, str, str]:
        return (str(clients.ips[index]), str(clients.player_ids[index]),
                str(clients.os_names[index]))

    return identity


class StreamingTraceWriter:
    """Reorder buffer shared by every incremental trace codec writer.

    The server logs an entry when a transfer *completes*, so the emitted
    stream is ordered by transfer end while generation streams transfers
    by start.  The writer keeps an in-flight reorder buffer: a pushed
    transfer is held until the caller's ``horizon`` — a lower bound on
    every future transfer's start — guarantees no later transfer can end
    before it (``end >= start >= horizon``).  Buffered memory is
    therefore bounded by the workload's peak concurrency, never by the
    trace length, and entries are handed to the codec-specific
    :meth:`_emit_entries` in ``(end, trace position)`` order — exactly
    the batch writer's stable sort by end.

    Subclasses implement :meth:`_emit_entries` (and may extend the
    checkpoint state via :meth:`state_meta` / :meth:`state_arrays` /
    :meth:`restore`).

    Parameters
    ----------
    identity:
        Maps a client index to ``(ip, player_id, os_name)`` — e.g. a
        client-table lookup, or
        :func:`repro.core.gismo.synthetic_client_identity` for generated
        workloads where materializing the table would defeat the memory
        bound.
    """

    def __init__(self, identity: ClientIdentity) -> None:
        self._identity = identity
        self.n_written = 0
        self._buffer: dict[str, _AnyArray] = {
            name: np.empty(0, dtype=dtype)
            for name, dtype in _WRITER_COLUMNS}

    @property
    def n_buffered(self) -> int:
        """Number of in-flight (pushed, not yet flushed) entries."""
        return int(self._buffer["end"].size)

    def push(self, *, client_index: IntArray, object_id: IntArray,
             start: FloatArray, duration: FloatArray,
             bandwidth_bps: FloatArray, global_offset: int,
             horizon: float,
             packet_loss: FloatArray | None = None,
             server_cpu: FloatArray | None = None,
             status: IntArray | None = None) -> int:
        """Buffer one batch of transfers and flush what the horizon allows.

        ``global_offset`` is the trace position of the batch's first
        transfer (positions break end-time ties exactly like the batch
        writer's stable sort).  ``horizon`` promises that every transfer
        of every *later* push starts at or after it; entries with
        ``end < horizon`` are flushed now.  Returns the number of entries
        written by this call.
        """
        start = np.asarray(start, dtype=np.float64)
        n = start.size
        new: dict[str, _AnyArray] = {
            "end": start + np.asarray(duration, dtype=np.float64),
            "position": global_offset + np.arange(n, dtype=np.int64),
            "client_index": np.asarray(client_index, dtype=np.int64),
            "object_id": np.asarray(object_id, dtype=np.int64),
            "duration": np.asarray(duration, dtype=np.float64),
            "bandwidth_bps": np.asarray(bandwidth_bps, dtype=np.float64),
            "packet_loss": (np.zeros(n, dtype=np.float64)
                            if packet_loss is None
                            else np.asarray(packet_loss, dtype=np.float64)),
            "server_cpu": (np.zeros(n, dtype=np.float64)
                           if server_cpu is None
                           else np.asarray(server_cpu, dtype=np.float64)),
            "status": (np.full(n, 200, dtype=np.int64) if status is None
                       else np.asarray(status, dtype=np.int64)),
        }
        self._buffer = {name: np.concatenate([col, new[name]])
                        for name, col in self._buffer.items()}
        return self._flush_below(horizon)

    def _flush_below(self, horizon: float) -> int:
        """Emit buffered entries with ``end < horizon``; keep the rest."""
        buffer = self._buffer
        ready = buffer["end"] < horizon
        n_ready = int(np.count_nonzero(ready))
        if n_ready == 0:
            return 0
        keep = ~ready
        emit = {name: col[ready] for name, col in buffer.items()}
        self._buffer = {name: col[keep].copy()
                        for name, col in buffer.items()}
        # (end, trace position) == the batch writer's stable sort by end.
        order = np.lexsort((emit["position"], emit["end"]))
        self._emit_entries({name: col[order] for name, col in emit.items()})
        self.n_written += n_ready
        return n_ready

    def _emit_entries(self, emit: Mapping[str, _AnyArray]) -> None:
        """Write one flushed batch, already in ``(end, position)`` order.

        ``emit`` holds the :data:`_WRITER_COLUMNS` arrays; codec
        subclasses serialize them however their format requires.
        """
        raise NotImplementedError

    def finish(self) -> int:
        """Flush every buffered entry; returns the total written so far.

        The output stream itself is left open (the caller owns it).
        """
        self._flush_below(np.inf)
        return self.n_written

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_meta(self) -> dict[str, Any]:
        """JSON-serializable scalar writer state (for checkpointing)."""
        return {"n_written": self.n_written}

    def state_arrays(self) -> dict[str, _AnyArray]:
        """The reorder buffer as named arrays (for checkpointing)."""
        return {name: col.copy() for name, col in self._buffer.items()}

    def restore(self, meta: Mapping[str, Any],
                arrays: Mapping[str, _AnyArray]) -> None:
        """Restore a checkpointed buffer and written-entry count."""
        self.n_written = int(meta["n_written"])
        self._buffer = {
            name: np.asarray(arrays[name], dtype=dtype)
            for name, dtype in _WRITER_COLUMNS}


class StreamingWmsLogWriter(StreamingTraceWriter):
    """Writes a WMS-style text log from start-ordered transfer batches.

    The emitted file is byte-identical to :func:`write_wms_log` over the
    materialized trace (see :class:`StreamingTraceWriter` for the
    ordering argument).

    Parameters
    ----------
    stream:
        Open text stream to write to (the caller owns it).
    identity:
        See :class:`StreamingTraceWriter`.
    software:
        The ``#Software`` header value.
    write_header:
        Write the three header lines immediately.  Pass ``False`` when
        resuming into a log file that already has them.
    """

    def __init__(self, stream: TextIO, identity: ClientIdentity, *,
                 software: str = "Windows Media Services 4.1",
                 write_header: bool = True) -> None:
        super().__init__(identity)
        self._stream = stream
        if write_header:
            stream.write(f"#Software: {software}\n")
            stream.write("#Version: 1.0\n")
            stream.write(f"#Fields: {' '.join(LOG_FIELDS)}\n")

    def _emit_entries(self, emit: Mapping[str, _AnyArray]) -> None:
        identity = self._identity
        lines = []
        rows = zip(*(emit[name].tolist() for name, _ in _WRITER_COLUMNS),
                   strict=True)
        for end, _, client, obj, dur, bw, loss, cpu, stat in rows:
            ip, player_id, os_name = identity(client)
            lines.append(_format_entry(
                timestamp=int(end), ip=ip, player_id=player_id,
                os_name=os_name, object_id=obj,
                duration=int(round(dur)), bandwidth=bw, loss=loss,
                cpu=cpu, status=stat))
        lines.append("")
        self._stream.write("\n".join(lines))


def write_wms_log(trace: Trace, path: str | Path | TextIO, *,
                  software: str = "Windows Media Services 4.1") -> int:
    """Write ``trace`` as a WMS-style log; returns the number of entries.

    Entries are emitted in order of entry-creation time (the transfer *end*,
    floored to whole seconds — the server logs a request/response when the
    transfer completes).  Durations are rounded to whole seconds, matching
    the paper's one-second resolution.

    This is the one-shot front end to :class:`StreamingWmsLogWriter`: the
    whole trace is pushed as a single batch and flushed, which is what
    makes the incremental writer byte-identical to this function by
    construction.
    """
    own = isinstance(path, (str, Path))
    stream: TextIO = (open(path, "w", encoding="ascii")
                      if isinstance(path, (str, Path)) else path)
    try:
        writer = StreamingWmsLogWriter(stream, _table_identity(trace),
                                       software=software)
        writer.push(
            client_index=trace.client_index, object_id=trace.object_id,
            start=trace.start, duration=trace.duration,
            bandwidth_bps=trace.bandwidth_bps,
            packet_loss=trace.packet_loss, server_cpu=trace.server_cpu,
            status=trace.status, global_offset=0, horizon=-np.inf)
        return writer.finish()
    finally:
        if own:
            stream.close()


def _parse_fields_header(line: str, line_number: int) -> list[str]:
    fields = line[len("#Fields:"):].split()
    missing = [f for f in LOG_FIELDS if f not in fields]
    if missing:
        raise LogParseError(f"log is missing required fields: {missing}",
                            line_number=line_number, line=line)
    return fields


def iter_log_lines(stream: Iterable[str]) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, stripped_line)`` skipping blanks."""
    for number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if line:
            yield number, line


def read_wms_log(path: str | Path | TextIO, *,
                 resolver: IpResolver | None = None,
                 extent: float | None = None,
                 on_error: str = "raise",
                 error_sink: list[LogParseError] | None = None) -> Trace:
    """Parse a WMS-style log back into a :class:`Trace`.

    Parameters
    ----------
    path:
        Log file path or open text stream.  Paths are opened with
        ``errors="replace"`` so undecodable (non-ASCII) bytes surface as
        per-line parse errors instead of aborting the whole read; pass an
        open stream with the same error handling to get identical
        behaviour for corrupt bytes.
    resolver:
        Optional ``ip -> (as_number, country)`` mapping standing in for the
        external IP-to-AS traceback the paper performed; unresolved clients
        get AS 0 and an empty country.
    extent:
        Observation-window length override.  When omitted, the latest entry
        timestamp is used.
    on_error:
        ``"raise"`` (default) aborts on the first malformed data line;
        ``"skip"`` drops malformed lines and continues — real month-long
        logs contain truncated or corrupt lines at harvest boundaries.  A
        missing or incomplete ``#Fields`` header always raises.
    error_sink:
        With ``on_error="skip"``, an optional list that collects the
        :class:`LogParseError` for every skipped line.

    Raises
    ------
    LogParseError
        On malformed lines (``on_error="raise"``) or a missing/incomplete
        ``#Fields`` header.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    own = isinstance(path, (str, Path))
    stream: TextIO = (open(path, "r", encoding="ascii", errors="replace")
                      if isinstance(path, (str, Path)) else path)
    try:
        builder = TraceBuilder()
        fields: list[str] | None = None
        for number, line in iter_log_lines(stream):
            if line.startswith("#"):
                if line.startswith("#Fields:"):
                    fields = _parse_fields_header(line, number)
                continue
            if fields is None:
                raise LogParseError("data before #Fields header",
                                    line_number=number, line=line)
            try:
                if _REPLACEMENT in line:
                    raise LogParseError(
                        "undecodable bytes (non-ASCII) in entry",
                        line_number=number, line=line)
                parts = line.split()
                if len(parts) != len(fields):
                    raise LogParseError(
                        f"expected {len(fields)} columns, got {len(parts)}",
                        line_number=number, line=line)
                row = dict(zip(fields, parts, strict=True))
                try:
                    timestamp = int(row["x-timestamp"])
                    duration = float(row["x-duration"])
                    uri = row["cs-uri-stem"]
                    if not uri.startswith(_URI_PREFIX):
                        raise ValueError(f"unexpected URI stem {uri!r}")
                    object_id = int(uri[len(_URI_PREFIX):])
                    bandwidth = float(row["avg-bandwidth"])
                    loss = float(row["packet-loss-rate"])
                    cpu = float(row["s-cpu-util"])
                    status = int(row["sc-status"])
                except (KeyError, ValueError) as exc:
                    raise LogParseError(str(exc), line_number=number,
                                        line=line) from exc
            except LogParseError as exc:
                if on_error == "skip":
                    if error_sink is not None:
                        error_sink.append(exc)
                    continue
                raise
            ip = row["c-ip"]
            as_number, country = (resolver(ip) if resolver is not None
                                  else (0, ""))
            client_idx = builder.add_client(ClientRecord(
                player_id=row["c-playerid"],
                ip=ip,
                as_number=as_number,
                country=country,
                os_name=row["c-os"],
            ))
            builder.add_transfer(
                client_index=client_idx,
                object_id=object_id,
                start=float(timestamp) - duration,
                duration=duration,
                bandwidth_bps=bandwidth,
                packet_loss=loss,
                server_cpu=cpu,
                status=status,
            )
        return builder.build(extent=extent)
    finally:
        if own:
            stream.close()


def log_round_trip(trace: Trace, *, resolver: IpResolver | None = None) -> Trace:
    """Serialize ``trace`` through the log format and parse it back.

    Useful in tests: the result reflects exactly what the paper's pipeline
    could have seen (one-second timestamps, rounded durations).
    """
    buffer = io.StringIO()
    write_wms_log(trace, buffer)
    buffer.seek(0)
    return read_wms_log(buffer, resolver=resolver, extent=trace.extent)
