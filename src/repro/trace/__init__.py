"""Trace data model and Windows-Media-Server-style log handling.

The unit of observation in the paper is the *transfer*: one start/stop
viewing of a live object by one client, recorded as a single log entry by
the Windows Media Server (Section 2.3).  This subpackage provides:

* :class:`~repro.trace.records.TransferRecord` /
  :class:`~repro.trace.records.ClientRecord` — row-level record types;
* :class:`~repro.trace.store.Trace` — a columnar (NumPy-backed) container
  holding millions of transfers compactly, plus the client table;
* :class:`~repro.trace.builder.TraceBuilder` — incremental construction;
* :mod:`~repro.trace.wms_log` — a W3C-style log writer/parser mimicking the
  Windows Media Services log format with its one-second resolution;
* :mod:`~repro.trace.codecs` — the codec registry: the text log plus a
  columnar binary format with memory-mapped chunked reads;
* :mod:`~repro.trace.sanitize` — the paper's Section 2.4 log sanitization
  (spanning entries, server-overload screening).
"""

from .builder import TraceBuilder
from .codecs import (
    BinaryTraceReader,
    BinaryTraceWriter,
    TraceCodec,
    available_codecs,
    detect_codec,
    get_codec,
    read_binary_trace,
    register_codec,
    write_binary_trace,
)
from .csvio import read_csv, write_csv
from .records import ClientRecord, TransferRecord
from .sanitize import SanitizationReport, sanitize_trace
from .store import ClientTable, Trace
from .streaming import StreamingCharacterizer, StreamingSummary
from .transform import daily_slices, merge_traces, time_slice
from .wms_log import (
    StreamingTraceWriter,
    StreamingWmsLogWriter,
    log_round_trip,
    read_wms_log,
    write_wms_log,
)

__all__ = [
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "ClientRecord",
    "ClientTable",
    "SanitizationReport",
    "StreamingCharacterizer",
    "StreamingSummary",
    "StreamingTraceWriter",
    "StreamingWmsLogWriter",
    "Trace",
    "TraceBuilder",
    "TraceCodec",
    "TransferRecord",
    "available_codecs",
    "daily_slices",
    "detect_codec",
    "get_codec",
    "log_round_trip",
    "merge_traces",
    "read_binary_trace",
    "read_csv",
    "read_wms_log",
    "register_codec",
    "sanitize_trace",
    "time_slice",
    "write_binary_trace",
    "write_csv",
    "write_wms_log",
]
