"""Shared type aliases used across the :mod:`repro` package."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
import numpy.typing as npt

#: Anything accepted where an array of floats is expected.
ArrayLike = Union[Sequence[float], npt.NDArray[np.floating]]

#: A one-dimensional float array (the normalized internal representation).
FloatArray = npt.NDArray[np.float64]

#: A one-dimensional integer array.
IntArray = npt.NDArray[np.int64]

#: Seconds since the start of the trace.  All trace timestamps are relative.
Seconds = float

#: A seed acceptable by :func:`numpy.random.default_rng`.  ``SeedSequence``
#: is included so deterministically derived children (entropy-pinned or
#: spawned) can be handed to :func:`repro.rng.make_rng` directly.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def as_float_array(values: ArrayLike, *, name: str = "values") -> FloatArray:
    """Convert ``values`` to a 1-D float64 array, validating dimensionality.

    Parameters
    ----------
    values:
        Input sequence or array.
    name:
        Name used in error messages.

    Raises
    ------
    ValueError
        If the input is not one-dimensional.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
