"""Delivery-hierarchy topology: one origin fanning out to N edges.

The paper motivates live-workload characterization with capacity
planning for "live content delivery infrastructures (e.g., servers,
network, CDN)" (Section 1).  :class:`CdnTopology` is the planning
object: an origin that fans each live feed out to a set of edge
servers, each edge carrying its own admission capacities.

Capacities are expressed per edge as an optional concurrent-connection
limit and an optional egress-bandwidth limit; ``None`` disables the
corresponding check.  Live delivery makes the origin side cheap by
construction — the origin serves *one* stream per (edge, feed) with at
least one active viewer, never one per client — which is exactly why a
two-tier hierarchy multiplies how many clients a deployment can carry.

Bandwidth admission is accounted in whole bits per second
(:func:`quantize_bandwidth`): integer arithmetic keeps the admission
engine's vectorized bounds exactly equal to its sequential sweep, with
no float-accumulation drift (see :mod:`repro.cdn.admission`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import FloatArray, IntArray
from ..errors import CdnError

#: Origin encoding rate used for the per-(edge, feed) fan-out streams,
#: matching the trace's dominant 300 kbit/s encoding (Section 4).
DEFAULT_ORIGIN_STREAM_BPS = 300_000.0


@dataclass(frozen=True)
class EdgeConfig:
    """Capacities of one edge server.

    Attributes
    ----------
    max_connections:
        Admission limit on simultaneously served transfers; ``None``
        disables connection-count admission control.
    bandwidth_bps:
        Admission limit on summed transfer bandwidth (bits per second);
        ``None`` disables bandwidth admission control.
    """

    max_connections: int | None = None
    bandwidth_bps: float | None = None

    def __post_init__(self) -> None:
        if self.max_connections is not None and self.max_connections < 1:
            raise CdnError(
                f"max_connections must be positive when set, "
                f"got {self.max_connections}")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise CdnError(
                f"bandwidth_bps must be positive when set, "
                f"got {self.bandwidth_bps}")

    @property
    def bandwidth_cap_bps(self) -> int | None:
        """The bandwidth limit in whole bits per second (admission units)."""
        if self.bandwidth_bps is None:
            return None
        return max(1, int(np.rint(self.bandwidth_bps)))


@dataclass(frozen=True)
class CdnTopology:
    """An origin plus a tuple of edge servers.

    Attributes
    ----------
    edges:
        Per-edge capacities; the tuple index is the edge id used by
        assignment policies, failure plans, and reports.
    origin_stream_bps:
        Encoding rate of each origin->edge fan-out stream.
    """

    edges: tuple[EdgeConfig, ...]
    origin_stream_bps: float = DEFAULT_ORIGIN_STREAM_BPS

    def __post_init__(self) -> None:
        if not self.edges:
            raise CdnError("a topology needs at least one edge")
        if self.origin_stream_bps <= 0:
            raise CdnError(
                f"origin_stream_bps must be positive, "
                f"got {self.origin_stream_bps}")

    @classmethod
    def uniform(cls, n_edges: int, *, max_connections: int | None = None,
                bandwidth_bps: float | None = None,
                origin_stream_bps: float = DEFAULT_ORIGIN_STREAM_BPS
                ) -> CdnTopology:
        """A topology of ``n_edges`` identically provisioned edges."""
        if n_edges < 1:
            raise CdnError(f"n_edges must be positive, got {n_edges}")
        edge = EdgeConfig(max_connections=max_connections,
                          bandwidth_bps=bandwidth_bps)
        return cls(edges=(edge,) * n_edges,
                   origin_stream_bps=origin_stream_bps)

    @property
    def n_edges(self) -> int:
        """Number of edges in the topology."""
        return len(self.edges)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready description of the topology."""
        return {
            "n_edges": self.n_edges,
            "origin_stream_bps": self.origin_stream_bps,
            "edges": [
                {"max_connections": edge.max_connections,
                 "bandwidth_bps": edge.bandwidth_bps}
                for edge in self.edges
            ],
        }


def quantize_bandwidth(bandwidth_bps: FloatArray) -> IntArray:
    """Per-transfer bandwidth in whole bits per second (admission units).

    Rounds half to even (NumPy's :func:`~numpy.rint`), mirroring the
    trace codecs' rate quantization, so admission arithmetic is exact
    integer math: the vectorized admission bounds and the sequential
    sweep can never disagree through float accumulation order.
    """
    rates = np.asarray(bandwidth_bps, dtype=np.float64)
    if rates.size and float(rates.min()) < 0:
        raise CdnError("transfer bandwidths must be non-negative")
    return np.rint(rates).astype(np.int64)
