"""Per-edge and whole-tier accounting over simulated service legs.

The engine's unit of accounting is the **leg**: one request offered to
one edge.  An undisturbed transfer is a single leg; an edge failure
splits an admitted transfer into a truncated leg on the dying edge plus
a failover leg (a fresh request) on a survivor; a rejected request is a
zero-length leg.  Every delivery metric — per-edge rejection rates,
re-assignment counts, peak loads, the ``c(t)`` concurrency profiles and
the origin fan-out — is a pure reduction over the leg columns, computed
vectorized here.

The origin side implements the live fan-out economics the paper's
hierarchy rests on: the origin serves one stream per ``(edge, feed)``
pair with at least one active admitted viewer, never one per client, so
its egress is bounded by ``edges x feeds`` regardless of audience size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray
from ..analysis.concurrency import sampled_concurrency
from ..errors import CdnError
from ..trace.store import Trace
from .admission import BoolArray, active_peaks
from .topology import CdnTopology


@dataclass(frozen=True)
class LegSet:
    """Columnar record of every service leg of one simulation run.

    Parallel arrays; order carries no meaning.  ``end == start`` marks
    a leg that served nothing (a rejection, or a zero-length transfer).
    """

    transfer: IntArray
    start: FloatArray
    end: FloatArray
    edge: IntArray
    rate: IntArray
    admitted: BoolArray
    failover: BoolArray

    def __post_init__(self) -> None:
        n = self.transfer.size
        for name in ("start", "end", "edge", "rate", "admitted", "failover"):
            if getattr(self, name).size != n:
                raise CdnError(f"leg column {name} has length "
                               f"{getattr(self, name).size}, expected {n}")

    @property
    def n_legs(self) -> int:
        return int(self.transfer.size)

    @classmethod
    def concatenate(cls, parts: list["LegSet"]) -> "LegSet":
        """Merge leg sets (empty input yields an empty set)."""
        if not parts:
            return cls(transfer=np.zeros(0, dtype=np.int64),
                       start=np.zeros(0), end=np.zeros(0),
                       edge=np.zeros(0, dtype=np.int64),
                       rate=np.zeros(0, dtype=np.int64),
                       admitted=np.zeros(0, dtype=np.bool_),
                       failover=np.zeros(0, dtype=np.bool_))
        return cls(
            transfer=np.concatenate([p.transfer for p in parts]),
            start=np.concatenate([p.start for p in parts]),
            end=np.concatenate([p.end for p in parts]),
            edge=np.concatenate([p.edge for p in parts]),
            rate=np.concatenate([p.rate for p in parts]),
            admitted=np.concatenate([p.admitted for p in parts]),
            failover=np.concatenate([p.failover for p in parts]),
        )


@dataclass(frozen=True)
class EdgeReport:
    """Delivery accounting for one edge."""

    edge_id: int
    n_requests: int
    n_admitted: int
    n_rejected: int
    n_failover_requests: int
    n_failover_rejected: int
    peak_connections: int
    peak_bandwidth_bps: int
    bytes_served: float
    sampled_concurrency: FloatArray = field(repr=False)

    @property
    def rejection_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_rejected / self.n_requests

    def to_dict(self, *, include_samples: bool = False) -> dict[str, object]:
        """JSON-ready form; ``include_samples`` adds the full c(t) grid."""
        samples = self.sampled_concurrency
        out: dict[str, object] = {
            "edge_id": self.edge_id,
            "n_requests": self.n_requests,
            "n_admitted": self.n_admitted,
            "n_rejected": self.n_rejected,
            "n_failover_requests": self.n_failover_requests,
            "n_failover_rejected": self.n_failover_rejected,
            "rejection_rate": self.rejection_rate,
            "peak_connections": self.peak_connections,
            "peak_bandwidth_bps": self.peak_bandwidth_bps,
            "bytes_served": self.bytes_served,
            "concurrency_mean": (float(samples.mean()) if samples.size
                                 else 0.0),
            "concurrency_peak": (float(samples.max()) if samples.size
                                 else 0.0),
        }
        if include_samples:
            out["sampled_concurrency"] = samples.tolist()
        return out


@dataclass(frozen=True)
class OriginReport:
    """Origin fan-out accounting: one stream per active (edge, feed)."""

    peak_streams: int
    peak_egress_bps: float
    sampled_streams: FloatArray = field(repr=False)

    def to_dict(self, *, include_samples: bool = False) -> dict[str, object]:
        """JSON-serializable view of the origin accounting."""
        out: dict[str, object] = {
            "peak_streams": self.peak_streams,
            "peak_egress_bps": self.peak_egress_bps,
            "streams_mean": (float(self.sampled_streams.mean())
                             if self.sampled_streams.size else 0.0),
        }
        if include_samples:
            out["sampled_streams"] = self.sampled_streams.tolist()
        return out


@dataclass(frozen=True)
class CdnResult:
    """Everything one hierarchy simulation established."""

    policy: str
    topology: CdnTopology
    sample_step: float
    n_transfers: int
    edges: tuple[EdgeReport, ...]
    origin: OriginReport
    legs: LegSet = field(repr=False)

    @property
    def n_requests(self) -> int:
        return sum(e.n_requests for e in self.edges)

    @property
    def n_admitted(self) -> int:
        return sum(e.n_admitted for e in self.edges)

    @property
    def n_rejected(self) -> int:
        return sum(e.n_rejected for e in self.edges)

    @property
    def n_reassigned(self) -> int:
        """Failover requests: clients pushed off a dying edge."""
        return sum(e.n_failover_requests for e in self.edges)

    @property
    def n_failover_rejected(self) -> int:
        return sum(e.n_failover_rejected for e in self.edges)

    @property
    def rejection_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_rejected / self.n_requests

    def to_dict(self, *, include_samples: bool = False) -> dict[str, object]:
        """JSON-ready form (legs are accounting detail, not serialized)."""
        return {
            "policy": self.policy,
            "topology": self.topology.to_dict(),
            "sample_step": self.sample_step,
            "n_transfers": self.n_transfers,
            "n_requests": self.n_requests,
            "n_admitted": self.n_admitted,
            "n_rejected": self.n_rejected,
            "n_reassigned": self.n_reassigned,
            "n_failover_rejected": self.n_failover_rejected,
            "rejection_rate": self.rejection_rate,
            "edges": [e.to_dict(include_samples=include_samples)
                      for e in self.edges],
            "origin": self.origin.to_dict(include_samples=include_samples),
        }


def _merged_feed_intervals(group: IntArray, start: FloatArray,
                           end: FloatArray
                           ) -> tuple[FloatArray, FloatArray]:
    """Disjoint intervals covering each group's union of leg intervals.

    Per group, walk the start/end events in time order keeping a running
    active count (segmented cumsum over the group-sorted event stream);
    a merged interval opens where the count rises from zero and closes
    where it returns to zero.  Starts sort before ends at equal times,
    so back-to-back legs (one viewer leaves as another joins) coalesce
    into one unbroken origin stream.
    """
    keep = end > start
    group, start, end = group[keep], start[keep], end[keep]
    n = group.size
    if n == 0:
        return np.zeros(0), np.zeros(0)
    times = np.concatenate([start, end])
    deltas = np.concatenate([np.ones(n, dtype=np.int64),
                             -np.ones(n, dtype=np.int64)])
    kinds = np.concatenate([np.zeros(n, dtype=np.int8),
                            np.ones(n, dtype=np.int8)])
    groups = np.concatenate([group, group])
    order = np.lexsort((kinds, times, groups))
    g_o, t_o, d_o = groups[order], times[order], deltas[order]
    csum = np.cumsum(d_o)
    # Per-group running count = global cumsum minus the cumsum just
    # before the group's first event (each group's deltas sum to zero,
    # so that base is exactly the total of all earlier groups).
    is_first = np.empty(g_o.size, dtype=np.bool_)
    is_first[0] = True
    is_first[1:] = g_o[1:] != g_o[:-1]
    seg_ids = np.cumsum(is_first) - 1
    firsts = np.flatnonzero(is_first)
    base_vals = np.concatenate(
        [np.zeros(1, dtype=np.int64), csum[firsts[1:] - 1]])
    run = csum - base_vals[seg_ids]
    opens = (d_o == 1) & (run == 1)
    closes = (d_o == -1) & (run == 0)
    return t_o[opens], t_o[closes]


def build_result(trace: Trace, topology: CdnTopology, policy: str,
                 legs: LegSet, *, step: float = 60.0) -> CdnResult:
    """Reduce a finished run's legs into the :class:`CdnResult`."""
    extent = max(trace.extent, float(legs.end.max()) if legs.n_legs else 0.0)
    if extent <= 0:
        extent = step
    served = legs.admitted
    reports: list[EdgeReport] = []
    for edge_id in range(topology.n_edges):
        on_edge = legs.edge == edge_id
        adm = on_edge & served
        peak_conn, peak_rate = active_peaks(
            legs.start[adm], legs.end[adm], legs.rate[adm])
        reports.append(EdgeReport(
            edge_id=edge_id,
            n_requests=int(np.count_nonzero(on_edge)),
            n_admitted=int(np.count_nonzero(adm)),
            n_rejected=int(np.count_nonzero(on_edge & ~served)),
            n_failover_requests=int(
                np.count_nonzero(on_edge & legs.failover)),
            n_failover_rejected=int(
                np.count_nonzero(on_edge & legs.failover & ~served)),
            peak_connections=peak_conn,
            peak_bandwidth_bps=peak_rate,
            bytes_served=float(np.dot(
                legs.end[adm] - legs.start[adm],
                legs.rate[adm].astype(np.float64)) / 8.0),
            sampled_concurrency=sampled_concurrency(
                legs.start[adm], legs.end[adm], extent=extent, step=step),
        ))

    feeds = trace.object_id[legs.transfer[served]]
    n_feeds = int(trace.object_id.max()) + 1 if len(trace) else 1
    stream_group = legs.edge[served] * np.int64(n_feeds) + feeds
    merged_s, merged_e = _merged_feed_intervals(
        stream_group, legs.start[served], legs.end[served])
    peak_streams, _ = active_peaks(
        merged_s, merged_e, np.ones(merged_s.size, dtype=np.int64))
    origin = OriginReport(
        peak_streams=peak_streams,
        peak_egress_bps=peak_streams * topology.origin_stream_bps,
        sampled_streams=sampled_concurrency(
            merged_s, merged_e, extent=extent, step=step),
    )
    return CdnResult(policy=policy, topology=topology, sample_step=step,
                     n_transfers=trace.n_transfers, edges=tuple(reports),
                     origin=origin, legs=legs)
