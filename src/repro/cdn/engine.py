"""Two-tier delivery simulation: assignment + admission over epochs.

:func:`simulate_cdn` runs a generated workload through an origin/edge
hierarchy: every transfer is assigned to an edge, offered to that edge's
admission control, and — when a failure plan kills its edge mid-show —
handed over to a survivor as a failover request.

The run is structured by the failure plan's **epochs** (maximal windows
with a constant alive-edge set, :meth:`~repro.cdn.failures.FailurePlan.
epochs`).  Within an epoch the static policies are fully vectorized:
hash assignment maps the whole transfer column at once, and each edge
decides its requests through the hybrid admission engine
(:func:`~repro.cdn.admission.admit_requests`) with the legs admitted in
earlier epochs carried in as occupied capacity.  At an epoch boundary,
admitted legs on dying edges are truncated and re-enter the next epoch
as failover requests — re-hashed over the survivors, decided *before*
fresh arrivals at the same instant, and counted as rejections when the
survivor is full (flash-crowd failover).

``least-loaded`` is the deliberate exception: its assignment depends on
every earlier admission, so it runs as a sequential event sweep.  It is
exact and deterministic, but O(n) Python — use the static policies for
paper-scale sweeps.

Event-order contract shared by both paths (and by
:mod:`repro.simulation.server`): at any instant, completions free
capacity first, then failover handovers reconnect, then fresh arrivals
are decided, each group in trace order.  The whole run is a pure
function of ``(trace, topology, policy, failures)`` — bit-identical
across processes and worker counts.
"""

from __future__ import annotations

import numpy as np

from .._typing import FloatArray, IntArray
from ..trace.store import Trace
from .admission import admit_requests
from .assignment import (
    STATIC_POLICIES,
    assign_static,
    assignment_keys,
    validate_policy,
)
from .failures import Epoch, FailurePlan
from .report import CdnResult, LegSet, build_result
from .topology import CdnTopology, quantize_bandwidth

__all__ = ["simulate_cdn"]


def simulate_cdn(trace: Trace, topology: CdnTopology, *,
                 policy: str = "as-hash",
                 failures: FailurePlan | None = None,
                 step: float = 60.0) -> CdnResult:
    """Simulate delivering ``trace`` through ``topology``.

    Parameters
    ----------
    trace:
        The workload (start-sorted transfer columns).
    topology:
        Edge capacities and the origin stream rate.
    policy:
        Client->edge assignment policy (:data:`~repro.cdn.assignment.
        POLICIES`).
    failures:
        Edge-failure scenario; ``None`` keeps every edge up.
    step:
        Sampling period of the per-edge ``c(t)`` grids in seconds.
    """
    validate_policy(policy)
    plan = failures if failures is not None else FailurePlan()
    epochs = plan.epochs(topology.n_edges)
    # Transfers without a bandwidth annotation (synthetic GISMO traces
    # record none) are accounted at the origin encoding rate — a live
    # viewer consumes the stream's encoding bandwidth — so bandwidth
    # admission and capacity planning stay meaningful for generated
    # workloads.
    rate = quantize_bandwidth(np.where(
        trace.bandwidth_bps > 0, trace.bandwidth_bps,
        topology.origin_stream_bps))
    if policy in STATIC_POLICIES:
        legs = _run_static(trace, topology, policy, epochs, rate)
    else:
        legs = _run_least_loaded(trace, topology, epochs, rate)
    return build_result(trace, topology, policy, legs, step=step)


def _leg_arrays(tid: IntArray, start: FloatArray, end: FloatArray,
                edge: IntArray, rate: IntArray, admitted: bool,
                failover: bool) -> LegSet:
    n = tid.size
    return LegSet(
        transfer=np.asarray(tid, dtype=np.int64),
        start=np.asarray(start, dtype=np.float64),
        end=np.asarray(end, dtype=np.float64),
        edge=np.asarray(edge, dtype=np.int64),
        rate=np.asarray(rate, dtype=np.int64),
        admitted=np.full(n, admitted, dtype=np.bool_),
        failover=np.full(n, failover, dtype=np.bool_),
    )


def _run_static(trace: Trace, topology: CdnTopology, policy: str,
                epochs: tuple[Epoch, ...], rate: IntArray) -> LegSet:
    """Epoch-vectorized run for the hash-assignment policies."""
    keys = assignment_keys(trace, policy)
    t_start = trace.start
    t_end = trace.end
    bounds = np.asarray([ep.t_hi for ep in epochs[:-1]], dtype=np.float64)
    epoch_of = np.searchsorted(bounds, t_start, side="right")

    parts: list[LegSet] = []
    # Open legs: admitted, still running, edge still alive.  A leg's
    # end is its transfer's natural end until a failure truncates it.
    open_tid = np.zeros(0, dtype=np.int64)
    open_start = np.zeros(0)
    open_edge = np.zeros(0, dtype=np.int64)
    open_fo = np.zeros(0, dtype=np.bool_)
    # Failover requests created at the previous boundary, by transfer.
    pending = np.zeros(0, dtype=np.int64)

    for k, epoch in enumerate(epochs):
        fresh = np.flatnonzero(epoch_of == k)
        req_tid = np.concatenate([pending, fresh])
        req_fo = np.zeros(req_tid.size, dtype=np.bool_)
        req_fo[:pending.size] = True
        req_start = np.concatenate(
            [np.full(pending.size, epoch.t_lo), t_start[fresh]])
        req_edge = (assign_static(keys[req_tid], epoch.alive)
                    if req_tid.size else np.zeros(0, dtype=np.int64))

        new_tid: list[IntArray] = []
        new_start: list[FloatArray] = []
        new_edge: list[IntArray] = []
        new_fo: list[np.ndarray] = []
        for edge_id in epoch.alive.tolist():
            sel = req_edge == edge_id
            if not np.any(sel):
                continue
            r_tid = req_tid[sel]
            r_start = req_start[sel]
            r_end = t_end[r_tid]
            carry = open_edge == edge_id
            config = topology.edges[edge_id]
            outcome = admit_requests(
                r_start, r_end - r_start, rate[r_tid],
                max_connections=config.max_connections,
                bandwidth_cap_bps=config.bandwidth_cap_bps,
                carry_end=t_end[open_tid[carry]],
                carry_rate=rate[open_tid[carry]])
            adm = outcome.admitted
            if not np.all(adm):
                rej = ~adm
                parts.append(LegSet(
                    transfer=r_tid[rej], start=r_start[rej],
                    end=r_start[rej],
                    edge=np.full(int(rej.sum()), edge_id, dtype=np.int64),
                    rate=rate[r_tid[rej]],
                    admitted=np.zeros(int(rej.sum()), dtype=np.bool_),
                    failover=req_fo[sel][rej]))
            new_tid.append(r_tid[adm])
            new_start.append(r_start[adm])
            new_edge.append(np.full(int(adm.sum()), edge_id,
                                    dtype=np.int64))
            new_fo.append(req_fo[sel][adm])

        if new_tid:
            open_tid = np.concatenate([open_tid] + new_tid)
            open_start = np.concatenate([open_start] + new_start)
            open_edge = np.concatenate([open_edge] + new_edge)
            open_fo = np.concatenate([open_fo] + new_fo)

        if epoch.closes:
            # Legs whose transfer ends within the epoch close naturally.
            done = t_end[open_tid] <= epoch.t_hi
            if np.any(done):
                parts.append(LegSet(
                    transfer=open_tid[done], start=open_start[done],
                    end=t_end[open_tid[done]], edge=open_edge[done],
                    rate=rate[open_tid[done]],
                    admitted=np.ones(int(done.sum()), dtype=np.bool_),
                    failover=open_fo[done]))
                keep = ~done
                open_tid, open_start = open_tid[keep], open_start[keep]
                open_edge, open_fo = open_edge[keep], open_fo[keep]
            # Legs on dying edges truncate and fail over.
            dying = ~np.isin(open_edge, epochs[k + 1].alive)
            if np.any(dying):
                parts.append(LegSet(
                    transfer=open_tid[dying], start=open_start[dying],
                    end=np.full(int(dying.sum()), epoch.t_hi),
                    edge=open_edge[dying], rate=rate[open_tid[dying]],
                    admitted=np.ones(int(dying.sum()), dtype=np.bool_),
                    failover=open_fo[dying]))
                pending = np.sort(open_tid[dying], kind="stable")
                keep = ~dying
                open_tid, open_start = open_tid[keep], open_start[keep]
                open_edge, open_fo = open_edge[keep], open_fo[keep]
            else:
                pending = np.zeros(0, dtype=np.int64)
        elif open_tid.size:
            parts.append(LegSet(
                transfer=open_tid, start=open_start,
                end=t_end[open_tid], edge=open_edge,
                rate=rate[open_tid],
                admitted=np.ones(open_tid.size, dtype=np.bool_),
                failover=open_fo))

    return LegSet.concatenate(parts)


#: Event kinds of the least-loaded sweep, in processing order at equal
#: times: completions free capacity, then the boundary hands dying
#: edges' clients over, then fresh arrivals are decided.
_EV_END, _EV_BOUNDARY, _EV_ARRIVAL = 0, 1, 2


def _run_least_loaded(trace: Trace, topology: CdnTopology,
                      epochs: tuple[Epoch, ...], rate: IntArray) -> LegSet:
    """Sequential event sweep for the dynamic policy.

    Each request goes to the alive edge with the fewest admitted active
    transfers (ties toward the lowest edge id) — a decision that depends
    on every earlier admission, which is why this path is a Python loop
    rather than a vectorized pass.
    """
    n = len(trace)
    t_start = trace.start
    t_end = trace.end
    n_edges = topology.n_edges
    max_conn = [e.max_connections for e in topology.edges]
    bw_cap = [e.bandwidth_cap_bps for e in topology.edges]

    n_bounds = len(epochs) - 1
    ev_times = np.concatenate(
        [t_end, np.asarray([ep.t_hi for ep in epochs[:-1]]), t_start])
    ev_kinds = np.concatenate(
        [np.full(n, _EV_END, dtype=np.int8),
         np.full(n_bounds, _EV_BOUNDARY, dtype=np.int8),
         np.full(n, _EV_ARRIVAL, dtype=np.int8)])
    ev_ids = np.concatenate(
        [np.arange(n, dtype=np.int64),
         np.arange(1, n_bounds + 1, dtype=np.int64),
         np.arange(n, dtype=np.int64)])
    order = np.lexsort((ev_ids, ev_kinds, ev_times))

    counts = [0] * n_edges
    loads = [0] * n_edges
    active: list[set[int]] = [set() for _ in range(n_edges)]
    alive = epochs[0].alive.tolist()
    cur_edge = np.full(n, -1, dtype=np.int64)
    leg_start = np.zeros(n)
    rates = rate.tolist()
    starts = t_start.tolist()
    ends = t_end.tolist()

    out_tid: list[int] = []
    out_start: list[float] = []
    out_end: list[float] = []
    out_edge: list[int] = []
    out_adm: list[bool] = []
    out_fo: list[bool] = []

    def record(tid: int, s: float, e: float, edge: int, admitted: bool,
               failover: bool) -> None:
        out_tid.append(tid)
        out_start.append(s)
        out_end.append(e)
        out_edge.append(edge)
        out_adm.append(admitted)
        out_fo.append(failover)

    def offer(tid: int, at: float, failover: bool) -> None:
        edge = min(alive, key=lambda e: (counts[e], e))
        r = rates[tid]
        ok = ((max_conn[edge] is None or counts[edge] < max_conn[edge])
              and (bw_cap[edge] is None or loads[edge] + r <= bw_cap[edge]))
        if not ok:
            record(tid, at, at, edge, False, failover)
            return
        if ends[tid] <= at:
            # Nothing left to serve (zero-length transfer, or a failover
            # landing exactly at its end): admitted, occupies nothing.
            record(tid, at, at, edge, True, failover)
            return
        counts[edge] += 1
        loads[edge] += r
        active[edge].add(tid)
        cur_edge[tid] = edge
        leg_start[tid] = at
        if failover:
            # The handover leg is recorded when it closes; remember it
            # was a failover by tagging via a negative marker set.
            failover_live.add(tid)

    failover_live: set[int] = set()

    def close(tid: int, at: float) -> None:
        edge = int(cur_edge[tid])
        counts[edge] -= 1
        loads[edge] -= rates[tid]
        active[edge].discard(tid)
        cur_edge[tid] = -1
        record(tid, float(leg_start[tid]), at, edge, True,
               tid in failover_live)
        failover_live.discard(tid)

    times = ev_times[order].tolist()
    kinds = ev_kinds[order].tolist()
    ids = ev_ids[order].tolist()
    for at, kind, ev in zip(times, kinds, ids, strict=True):
        if kind == _EV_END:
            if cur_edge[ev] >= 0:
                close(ev, at)
        elif kind == _EV_ARRIVAL:
            offer(ev, max(at, 0.0), False)
        else:
            alive = epochs[ev].alive.tolist()
            alive_set = set(alive)
            displaced = sorted(
                tid for e in range(n_edges) if e not in alive_set
                for tid in active[e])
            for tid in displaced:
                close(tid, at)
            for tid in displaced:
                offer(tid, at, True)

    for edge_sets in active:
        for tid in sorted(edge_sets):
            close(tid, ends[tid])

    return LegSet(
        transfer=np.asarray(out_tid, dtype=np.int64),
        start=np.asarray(out_start, dtype=np.float64),
        end=np.asarray(out_end, dtype=np.float64),
        edge=np.asarray(out_edge, dtype=np.int64),
        rate=rate[np.asarray(out_tid, dtype=np.int64)],
        admitted=np.asarray(out_adm, dtype=np.bool_),
        failover=np.asarray(out_fo, dtype=np.bool_),
    )
