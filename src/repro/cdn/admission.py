"""Per-edge admission control: exact, vectorized where it matters.

An edge admits a request iff, at the request's start instant, its
admitted active-transfer count is below ``max_connections`` *and* the
admitted bandwidth plus the request's own stays within the bandwidth
cap.  Rejected requests vanish — for live content a rejection is a
denial, not a deferral (Section 1) — so they free nothing later.

That process is sequential by nature: every decision depends on all
earlier ones.  The classic event-loop implementation
(:class:`repro.simulation.server.StreamingServer`) costs one Python
callback per event, which is unusable at paper scale.  This module gets
the identical answer with numpy doing almost all the work:

1. **Exact upper bounds, vectorized.**  For each request, compute the
   worst-case active count and bandwidth it could possibly observe —
   the values assuming *every* earlier request was admitted — from
   sorted-column prefix sums and ``searchsorted``.  Bandwidth is
   accounted in whole bits per second (:func:`~repro.cdn.topology.
   quantize_bandwidth`), so every bound is integer arithmetic: no float
   drift, no ordering ambiguity.
2. **Short circuit.**  A request whose worst-case bounds already fit
   under the caps is admitted no matter what anyone else does (the true
   active set is a subset of the worst-case one).  In a provisioned
   deployment that is almost everyone; an uncontended edge never enters
   a Python loop at all.
3. **Sweep only the contended residue.**  The remaining "risky"
   requests run through an exact event sweep whose state is two
   integers, with the guaranteed-admitted background folded in as
   precomputed per-event contributions.  The sweep's event order
   (completions before arrivals at equal times, arrivals in trace
   order) matches the event-driven server's tie-breaking.

The decomposition is a pure function of the request columns and the
caps, so results are bit-identical across processes, worker counts, and
chunkings — the property the planner's sharded sweep rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from .._typing import FloatArray, IntArray
from ..errors import CdnError

BoolArray = npt.NDArray[np.bool_]


@dataclass(frozen=True)
class AdmissionOutcome:
    """The admission decision for one edge's chronological request column.

    Attributes
    ----------
    admitted:
        Per-request admission mask, parallel to the input columns.
    peak_connections:
        Largest admitted simultaneous transfer count.
    peak_bandwidth_bps:
        Largest admitted summed bandwidth (whole bits per second).
    n_swept:
        Requests that needed the sequential sweep (0 means the edge
        was decided entirely by the vectorized bounds).
    """

    admitted: BoolArray
    peak_connections: int
    peak_bandwidth_bps: int
    n_swept: int

    @property
    def n_admitted(self) -> int:
        """Number of admitted requests."""
        return int(np.count_nonzero(self.admitted))

    @property
    def n_rejected(self) -> int:
        """Number of rejected requests."""
        return int(self.admitted.size) - self.n_admitted


def active_peaks(start: FloatArray, end: FloatArray,
                  rate: IntArray) -> tuple[int, int]:
    """Exact peak concurrency and peak summed rate of an interval set.

    Completions are processed before arrivals at equal times (intervals
    are half-open ``[start, end)``), matching the admission sweep.
    """
    if start.size == 0:
        return 0, 0
    keep = end > start
    start, end, rate = start[keep], end[keep], rate[keep]
    if start.size == 0:
        return 0, 0
    times = np.concatenate([start, end])
    kinds = np.concatenate([np.ones(start.size, dtype=np.int8),
                            np.zeros(end.size, dtype=np.int8)])
    deltas = np.concatenate([np.ones(start.size, dtype=np.int64),
                             -np.ones(end.size, dtype=np.int64)])
    rates = np.concatenate([rate, -rate])
    order = np.lexsort((kinds, times))
    peak_conn = int(np.cumsum(deltas[order]).max())
    peak_rate = int(np.cumsum(rates[order]).max())
    return peak_conn, peak_rate


def admit_requests(start: FloatArray, duration: FloatArray,
                   bandwidth_bps: IntArray, *,
                   max_connections: int | None = None,
                   bandwidth_cap_bps: int | None = None,
                   carry_end: FloatArray | None = None,
                   carry_rate: IntArray | None = None
                   ) -> AdmissionOutcome:
    """Decide admission for one edge's requests, in chronological order.

    Parameters
    ----------
    start:
        Request start times, non-decreasing (ties keep input order —
        the order the requests would reach the edge).
    duration:
        Request durations (non-negative; zero-duration requests are
        decided against the caps but never occupy capacity).
    bandwidth_bps:
        Integer per-request bandwidth (whole bits per second, see
        :func:`~repro.cdn.topology.quantize_bandwidth`).
    max_connections, bandwidth_cap_bps:
        The edge's capacities; ``None`` disables a check.
    carry_end, carry_rate:
        Transfers already being served when the window opens (admitted
        in an earlier epoch, see :mod:`repro.cdn.engine`): their end
        times and integer bandwidths.  They occupy capacity from before
        the first request until their end and are never re-decided.

    Raises
    ------
    CdnError
        If the start column is not sorted or column lengths disagree.
    """
    start = np.asarray(start, dtype=np.float64)
    duration = np.asarray(duration, dtype=np.float64)
    rate = np.asarray(bandwidth_bps, dtype=np.int64)
    n = start.size
    if duration.size != n or rate.size != n:
        raise CdnError(
            f"request columns disagree: {n} starts, {duration.size} "
            f"durations, {rate.size} bandwidths")
    if n and np.any(np.diff(start) < 0):
        raise CdnError("request starts must be non-decreasing")
    if carry_end is None:
        carry_end = np.zeros(0)
    if carry_rate is None:
        carry_rate = np.zeros(0, dtype=np.int64)
    carry_end = np.asarray(carry_end, dtype=np.float64)
    carry_rate = np.asarray(carry_rate, dtype=np.int64)
    if carry_end.size != carry_rate.size:
        raise CdnError(
            f"carry columns disagree: {carry_end.size} ends, "
            f"{carry_rate.size} bandwidths")

    def _peaks(mask: BoolArray) -> tuple[int, int]:
        # Peaks cover the admitted requests plus the carried transfers,
        # which have been active since before the window opened.
        all_start = np.concatenate(
            [start[mask], np.full(carry_end.size, -np.inf)])
        all_end = np.concatenate([start[mask] + duration[mask], carry_end])
        all_rate = np.concatenate([rate[mask], carry_rate])
        return active_peaks(all_start, all_end, all_rate)

    admitted = np.ones(n, dtype=np.bool_)
    if n == 0 or (max_connections is None and bandwidth_cap_bps is None):
        peak_conn, peak_rate = _peaks(admitted)
        return AdmissionOutcome(admitted=admitted,
                                peak_connections=peak_conn,
                                peak_bandwidth_bps=peak_rate, n_swept=0)

    end = start + duration
    occupies = duration > 0

    # Carried transfers active at each request's start: those whose end
    # is strictly after it (ends at exactly t free capacity before
    # arrivals at t, like everything else).
    carry_sorted = np.sort(carry_end, kind="stable")
    carry_done = np.searchsorted(carry_sorted, start, side="right")
    carry_active = carry_end.size - carry_done
    carry_order = np.argsort(carry_end, kind="stable")
    carry_cumsum = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(carry_rate[carry_order])])
    carry_rate_total = int(carry_cumsum[-1])
    carry_rate_active = carry_rate_total - carry_cumsum[carry_done]

    # Worst-case bounds per request, assuming everyone earlier was
    # admitted.  Prefix counts/sums over the start-ordered column give
    # the contributions of earlier arrivals; sorted completion columns
    # give the departures at or before each start (completions at
    # exactly t free capacity before arrivals at t).  Zero-duration
    # requests never occupy, so they are excluded from both sides.
    occ_prefix = np.cumsum(occupies) - occupies          # earlier arrivals
    rate_occ = np.where(occupies, rate, 0)
    rate_prefix = np.cumsum(rate_occ) - rate_occ
    occ_ends = np.sort(end[occupies], kind="stable")
    ended_before = np.searchsorted(occ_ends, start, side="right")
    end_order = np.argsort(end[occupies], kind="stable")
    rate_end_cumsum = np.concatenate(
        [np.zeros(1, dtype=np.int64),
         np.cumsum(rate[occupies][end_order])])
    rate_ended_before = rate_end_cumsum[ended_before]

    worst_active = occ_prefix - ended_before + carry_active
    worst_rate = rate_prefix - rate_ended_before + rate + carry_rate_active

    risky = np.zeros(n, dtype=np.bool_)
    if max_connections is not None:
        risky |= worst_active >= max_connections
    if bandwidth_cap_bps is not None:
        risky |= worst_rate > bandwidth_cap_bps
    n_risky = int(np.count_nonzero(risky))

    if n_risky:
        _sweep_risky(admitted, risky, start, end, rate, occupies,
                     occ_prefix, ended_before, rate_prefix,
                     rate_ended_before, carry_active, carry_rate_active,
                     max_connections=max_connections,
                     bandwidth_cap_bps=bandwidth_cap_bps)

    peak_conn, peak_rate = _peaks(admitted)
    return AdmissionOutcome(admitted=admitted, peak_connections=peak_conn,
                            peak_bandwidth_bps=peak_rate, n_swept=n_risky)


def _sweep_risky(admitted: BoolArray, risky: BoolArray, start: FloatArray,
                 end: FloatArray, rate: IntArray, occupies: BoolArray,
                 occ_prefix: IntArray, ended_before: IntArray,
                 rate_prefix: IntArray, rate_ended_before: IntArray,
                 carry_active: IntArray, carry_rate_active: IntArray, *,
                 max_connections: int | None,
                 bandwidth_cap_bps: int | None) -> None:
    """Sequentially decide the risky requests, in exact event order.

    The guaranteed-admitted background never changes, so its active
    count and bandwidth at each risky request's arrival are precomputed
    vectorized: total prefix contributions minus the risky requests'
    own (the sweep tracks those live, since risky admissions are what
    is being decided).  State is two Python ints; the loop touches only
    risky arrivals and the completions of admitted risky requests.
    """
    risky_ids = np.flatnonzero(risky)
    # Background contribution at each risky arrival = everyone's
    # worst-case contribution minus the risky requests' own worst-case
    # contribution (their earlier arrivals not yet ended).
    risky_occ = risky & occupies
    r_occ_prefix = np.cumsum(risky_occ) - risky_occ
    r_ends = np.sort(end[risky_occ], kind="stable")
    r_ended_before = np.searchsorted(r_ends, start, side="right")
    r_rate_occ = np.where(risky_occ, rate, 0)
    r_rate_prefix = np.cumsum(r_rate_occ) - r_rate_occ
    r_end_order = np.argsort(end[risky_occ], kind="stable")
    r_rate_end_cumsum = np.concatenate(
        [np.zeros(1, dtype=np.int64),
         np.cumsum(rate[risky_occ][r_end_order])])
    bg_active = ((occ_prefix - r_occ_prefix)
                 - (ended_before - r_ended_before) + carry_active)
    bg_rate = ((rate_prefix - r_rate_prefix)
               - (rate_ended_before - r_rate_end_cumsum[r_ended_before])
               + carry_rate_active)

    # Event stream over the risky subset: completions (kind 0) before
    # arrivals (kind 1) at equal times, then input order.
    ev_times = np.concatenate([start[risky_ids], end[risky_ids]])
    ev_kinds = np.concatenate(
        [np.ones(risky_ids.size, dtype=np.int8),
         np.zeros(risky_ids.size, dtype=np.int8)])
    ev_ids = np.concatenate([risky_ids, risky_ids])
    order = np.lexsort((ev_ids, ev_kinds, ev_times))

    active = 0
    active_rate = 0
    ids = ev_ids[order].tolist()
    kinds = ev_kinds[order].tolist()
    for ev, kind in zip(ids, kinds, strict=True):
        if kind == 0:
            if admitted[ev] and occupies[ev]:
                active -= 1
                active_rate -= int(rate[ev])
            continue
        total_active = active + int(bg_active[ev])
        total_rate = active_rate + int(bg_rate[ev])
        ok = True
        if max_connections is not None and total_active >= max_connections:
            ok = False
        if (bandwidth_cap_bps is not None
                and total_rate + int(rate[ev]) > bandwidth_cap_bps):
            ok = False
        admitted[ev] = ok
        if ok and occupies[ev]:
            active += 1
            active_rate += int(rate[ev])
