"""Client->edge assignment policies.

Three policies cover the spectrum a live delivery tier actually uses:

* ``"as-hash"`` — geographic affinity: every client of one autonomous
  system lands on the same edge (clients without AS annotation fall back
  to a per-client key).  This is the policy that makes the origin
  fan-out argument work best: co-located viewers share an edge, so each
  feed crosses the backbone once per region.
* ``"sticky"`` — session stickiness: a per-client key pins each client
  to one edge regardless of AS, spreading large ASes across the tier.
* ``"least-loaded"`` — dynamic dispatch: each request goes to the alive
  edge with the fewest admitted active transfers at its start instant
  (ties break toward the lowest edge id).  Inherently sequential — the
  decision depends on every earlier admission — so it is evaluated
  inside the event sweep of :mod:`repro.cdn.engine` rather than here.

Hash assignment must be deterministic across processes and Python
versions, so it never touches the builtin ``hash`` (salted per process);
keys go through a fixed SplitMix64 mixer instead, vectorized over the
whole transfer column at once.  Re-assignment after an edge failure
re-mixes the same key over the surviving edges, so a client's failover
target is a pure function of ``(key, alive set)``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._typing import IntArray
from ..errors import CdnError
from ..trace.store import Trace

#: Assignment policies accepted by the engine, the planner, and the CLI.
POLICIES: tuple[str, ...] = ("as-hash", "sticky", "least-loaded")

#: Policies whose assignment is a pure per-transfer function (computable
#: vectorized, ahead of admission).  ``least-loaded`` is the exception.
STATIC_POLICIES: tuple[str, ...] = ("as-hash", "sticky")

#: Offset separating the per-client fallback key space from AS numbers,
#: so an AS-keyed client can never collide with a client-keyed one.
_CLIENT_KEY_OFFSET = np.int64(1) << np.int64(32)


def validate_policy(policy: str) -> str:
    """Return ``policy`` unchanged or raise :class:`~repro.errors.CdnError`."""
    if policy not in POLICIES:
        known = ", ".join(POLICIES)
        raise CdnError(f"unknown assignment policy {policy!r} "
                       f"(have: {known})")
    return policy


def mix64(keys: IntArray) -> npt.NDArray[np.uint64]:
    """SplitMix64 finalizer over an integer key column.

    A fixed, platform-independent avalanche mixer (Steele et al.,
    "Fast splittable pseudorandom number generators"): every input bit
    flips each output bit with probability ~1/2, which is what makes
    ``mix64(key) % n_edges`` a balanced assignment even for dense
    sequential keys.  Pure integer arithmetic — no RNG state, no salt.
    """
    mixed = np.asarray(keys, dtype=np.uint64).copy()
    # uint64 arithmetic wraps by definition; silence lint's overflow
    # worry explicitly for older NumPy builds that warn on it.
    with np.errstate(over="ignore"):
        mixed += np.uint64(0x9E3779B97F4A7C15)
        mixed ^= mixed >> np.uint64(30)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(27)
        mixed *= np.uint64(0x94D049BB133111EB)
        mixed ^= mixed >> np.uint64(31)
    return mixed


def assignment_keys(trace: Trace, policy: str) -> IntArray:
    """The per-transfer hash key of a static policy.

    ``"as-hash"`` keys a transfer by its client's autonomous system;
    clients with no AS annotation (``as_number <= 0``, e.g. synthetic
    GISMO populations) key by client index instead, offset into a
    disjoint range.  ``"sticky"`` always keys by client index.
    """
    validate_policy(policy)
    if policy == "least-loaded":
        raise CdnError("least-loaded assignment has no static key; it is "
                       "resolved inside the admission sweep")
    client_key = trace.client_index + _CLIENT_KEY_OFFSET
    if policy == "sticky":
        return np.asarray(client_key, dtype=np.int64)
    as_numbers = trace.clients.as_numbers[trace.client_index]
    return np.asarray(np.where(as_numbers > 0, as_numbers, client_key),
                      dtype=np.int64)


def assign_static(keys: IntArray, alive: IntArray) -> IntArray:
    """Map hash keys onto the alive edge ids.

    Parameters
    ----------
    keys:
        Per-transfer keys from :func:`assignment_keys`.
    alive:
        Sorted edge ids currently accepting traffic (at least one).

    Returns
    -------
    IntArray
        Per-transfer edge id, each an element of ``alive``.
    """
    alive = np.asarray(alive, dtype=np.int64)
    if alive.size == 0:
        raise CdnError("cannot assign transfers: no edge is alive")
    slots = (mix64(keys) % np.uint64(alive.size)).astype(np.int64)
    return np.asarray(alive[slots], dtype=np.int64)
