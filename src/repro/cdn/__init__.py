"""``repro.cdn``: simulated two-tier live delivery hierarchy.

The capacity-planning face of the reproduction: an origin fanning live
feeds out to N edge servers, client->edge assignment policies, per-edge
admission control with rejection accounting, edge-failure scenarios
with client re-assignment, and an SLO-driven deployment planner sharded
across worker processes.

Layers:

* :mod:`repro.cdn.topology` — edge capacities, origin stream rate,
  integer bandwidth quantization.
* :mod:`repro.cdn.assignment` — deterministic hash assignment
  (SplitMix64) and the policy registry.
* :mod:`repro.cdn.admission` — exact per-edge admission, vectorized.
* :mod:`repro.cdn.failures` — failure plans and their epoch partition.
* :mod:`repro.cdn.engine` — :func:`simulate_cdn`, the orchestrator.
* :mod:`repro.cdn.report` — per-edge/origin accounting structures.
* :mod:`repro.cdn.planner` — :func:`plan_deployment`, the sharded
  SLO sweep behind ``repro plan``.

Everything is a pure function of ``(trace, topology, policy,
failures)``: bit-identical across processes and worker counts.
"""

from .admission import AdmissionOutcome, active_peaks, admit_requests
from .assignment import (
    POLICIES,
    STATIC_POLICIES,
    assign_static,
    assignment_keys,
    mix64,
    validate_policy,
)
from .engine import simulate_cdn
from .failures import EdgeFailure, Epoch, FailurePlan, parse_failure
from .planner import (
    ConfigOutcome,
    PlanConfig,
    PlanReport,
    parse_sweep,
    plan_deployment,
    sweep_configs,
)
from .report import CdnResult, EdgeReport, LegSet, OriginReport
from .topology import (
    DEFAULT_ORIGIN_STREAM_BPS,
    CdnTopology,
    EdgeConfig,
    quantize_bandwidth,
)

__all__ = [
    "DEFAULT_ORIGIN_STREAM_BPS",
    "POLICIES",
    "STATIC_POLICIES",
    "AdmissionOutcome",
    "CdnResult",
    "CdnTopology",
    "ConfigOutcome",
    "EdgeConfig",
    "EdgeFailure",
    "EdgeReport",
    "Epoch",
    "FailurePlan",
    "LegSet",
    "OriginReport",
    "PlanConfig",
    "PlanReport",
    "active_peaks",
    "admit_requests",
    "assign_static",
    "assignment_keys",
    "mix64",
    "parse_failure",
    "parse_sweep",
    "plan_deployment",
    "quantize_bandwidth",
    "simulate_cdn",
    "sweep_configs",
    "validate_policy",
]
