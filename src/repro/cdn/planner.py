"""SLO-driven capacity planning: sweep deployments, find the cheapest.

The paper's stated purpose is capacity planning for live delivery
infrastructure; this module closes that loop.  :func:`plan_deployment`
sweeps a grid of candidate deployments — edge counts crossed with
per-edge bandwidths — simulating the full workload through each
(:func:`~repro.cdn.engine.simulate_cdn`) and reporting, per candidate,
the rejection rate the audience would have seen.  The **frontier** is
the cheapest bandwidth meeting the rejection-rate SLO at each edge
count; the **minimal deployment** is the cheapest candidate overall,
ordering by edge count first and per-edge bandwidth second.

Candidates are independent, so the sweep shards across worker processes
via :func:`repro.parallel.map_ordered`.  Workers receive the workload
as an ``.npz`` path (tiny picklable task payloads; the trace is loaded
once per worker and cached), and results reduce in submission order —
the report is bit-identical for any ``jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..errors import CdnError
from ..parallel import map_ordered
from ..trace.store import Trace
from .engine import simulate_cdn
from .failures import EdgeFailure, FailurePlan
from .topology import DEFAULT_ORIGIN_STREAM_BPS, CdnTopology


@dataclass(frozen=True)
class PlanConfig:
    """One candidate deployment: N identical edges."""

    n_edges: int
    bandwidth_bps: float | None
    max_connections: int | None

    def topology(self, *, origin_stream_bps: float
                 = DEFAULT_ORIGIN_STREAM_BPS) -> CdnTopology:
        """Materialize the candidate as a uniform :class:`CdnTopology`."""
        return CdnTopology.uniform(
            self.n_edges, max_connections=self.max_connections,
            bandwidth_bps=self.bandwidth_bps,
            origin_stream_bps=origin_stream_bps)


@dataclass(frozen=True)
class ConfigOutcome:
    """What one candidate deployment did to the workload."""

    n_edges: int
    bandwidth_bps: float | None
    max_connections: int | None
    n_requests: int
    n_rejected: int
    n_reassigned: int
    n_failover_rejected: int
    rejection_rate: float
    peak_connections: int
    peak_bandwidth_bps: int
    origin_peak_streams: int

    def meets(self, slo: float) -> bool:
        """Whether the deployment keeps rejections within the SLO."""
        return self.rejection_rate <= slo

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view of the outcome."""
        return {
            "n_edges": self.n_edges,
            "bandwidth_bps": self.bandwidth_bps,
            "max_connections": self.max_connections,
            "n_requests": self.n_requests,
            "n_rejected": self.n_rejected,
            "n_reassigned": self.n_reassigned,
            "n_failover_rejected": self.n_failover_rejected,
            "rejection_rate": self.rejection_rate,
            "peak_connections": self.peak_connections,
            "peak_bandwidth_bps": self.peak_bandwidth_bps,
            "origin_peak_streams": self.origin_peak_streams,
        }


@dataclass(frozen=True)
class PlanReport:
    """The full sweep: every candidate, the frontier, the winner."""

    policy: str
    slo: float
    outcomes: tuple[ConfigOutcome, ...]
    frontier: tuple[ConfigOutcome, ...]
    best: ConfigOutcome | None

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view of the whole sweep."""
        return {
            "policy": self.policy,
            "slo": self.slo,
            "n_configs": len(self.outcomes),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "frontier": [o.to_dict() for o in self.frontier],
            "best": None if self.best is None else self.best.to_dict(),
        }


def parse_sweep(spec: str, *, integral: bool = False
                ) -> tuple[float, ...]:
    """Parse a CLI sweep spec: ``"a,b,c"`` or ``"lo:hi:step"``.

    A range is inclusive of ``hi`` when the step lands on it exactly.
    Raises :class:`~repro.errors.CdnError` on malformed input (empty,
    non-numeric, non-positive step, descending range, or fractional
    values when ``integral``).
    """
    spec = spec.strip()
    if not spec:
        raise CdnError("empty sweep range")
    try:
        if ":" in spec:
            pieces = spec.split(":")
            if len(pieces) != 3:
                raise CdnError(
                    f"malformed sweep range {spec!r} (expected lo:hi:step)")
            lo, hi, stride = (float(p) for p in pieces)
            if stride <= 0:
                raise CdnError(
                    f"sweep step must be positive in {spec!r}")
            if hi < lo:
                raise CdnError(
                    f"sweep range {spec!r} is descending (hi < lo)")
            count = int((hi - lo) / stride + 1e-9) + 1
            values = tuple(lo + i * stride for i in range(count))
        else:
            values = tuple(float(p) for p in spec.split(","))
    except ValueError:
        raise CdnError(
            f"malformed sweep range {spec!r} (values must be numbers)"
        ) from None
    if integral:
        for v in values:
            if v != int(v):
                raise CdnError(
                    f"sweep range {spec!r} must contain whole numbers")
        values = tuple(float(int(v)) for v in values)
    return values


def sweep_configs(edge_counts: tuple[int, ...],
                  bandwidths_bps: tuple[float, ...] | None, *,
                  max_connections: int | None = None
                  ) -> tuple[PlanConfig, ...]:
    """The candidate grid: edge counts crossed with per-edge bandwidths."""
    if not edge_counts:
        raise CdnError("the sweep needs at least one edge count")
    for count in edge_counts:
        if count < 1:
            raise CdnError(
                f"a deployment needs at least one edge, got {count}")
    bws: tuple[float | None, ...] = (
        (None,) if bandwidths_bps is None else tuple(bandwidths_bps))
    if not bws:
        raise CdnError("the sweep needs at least one bandwidth")
    return tuple(PlanConfig(n_edges=int(count), bandwidth_bps=bw,
                            max_connections=max_connections)
                 for count in sorted(edge_counts)
                 for bw in sorted(bws, key=lambda b: (b is not None, b)))


@lru_cache(maxsize=1)
def _load_trace(path: str) -> Trace:
    """Per-process trace cache: each worker reads the .npz once."""
    return Trace.load_npz(path)


#: Picklable sweep task: (trace path, n_edges, bandwidth, max_conn,
#: policy, step, failure tuples, origin stream rate).
_PlanTask = tuple[str, int, "float | None", "int | None", str, float,
                  tuple[tuple[int, float, "float | None"], ...], float]

#: Worker result row: (requests, rejected, reassigned,
#: failover-rejected, rejection rate, peak conns, peak bw, peak streams).
_PlanRow = tuple[int, int, int, int, float, int, int, int]


def _evaluate_config(task: _PlanTask) -> _PlanRow:
    """Worker: simulate one candidate deployment (picklable task)."""
    (trace_path, n_edges, bandwidth_bps, max_connections, policy, step,
     failure_specs, origin_bps) = task
    trace = _load_trace(trace_path)
    config = PlanConfig(n_edges=n_edges, bandwidth_bps=bandwidth_bps,
                        max_connections=max_connections)
    plan = FailurePlan(tuple(
        EdgeFailure(edge=e, at=at, until=until)
        for e, at, until in failure_specs))
    result = simulate_cdn(
        trace, config.topology(origin_stream_bps=origin_bps),
        policy=policy, failures=plan, step=step)
    return (result.n_requests, result.n_rejected, result.n_reassigned,
            result.n_failover_rejected, result.rejection_rate,
            max(e.peak_connections for e in result.edges),
            max(e.peak_bandwidth_bps for e in result.edges),
            result.origin.peak_streams)


def plan_deployment(trace_path: str | Path, *,
                    policy: str = "as-hash",
                    slo: float = 0.01,
                    edge_counts: tuple[int, ...],
                    bandwidths_bps: tuple[float, ...] | None = None,
                    max_connections: int | None = None,
                    failures: FailurePlan | None = None,
                    step: float = 60.0,
                    jobs: int = 1,
                    origin_stream_bps: float = DEFAULT_ORIGIN_STREAM_BPS
                    ) -> PlanReport:
    """Sweep candidate deployments and find the minimal one meeting ``slo``.

    Parameters
    ----------
    trace_path:
        The workload as a saved ``.npz`` trace (a path so worker
        processes can load it independently of the parent).
    policy, failures, step, origin_stream_bps:
        Forwarded to :func:`~repro.cdn.engine.simulate_cdn`.
    slo:
        Maximum acceptable rejection rate in ``[0, 1]``.
    edge_counts, bandwidths_bps, max_connections:
        The candidate grid (see :func:`sweep_configs`).
    jobs:
        Worker processes for the sweep (1 = inline).
    """
    if not 0.0 <= slo <= 1.0:
        raise CdnError(f"slo must be within [0, 1], got {slo}")
    configs = sweep_configs(edge_counts, bandwidths_bps,
                            max_connections=max_connections)
    plan = failures if failures is not None else FailurePlan()
    # Epoch construction validates the plan against the smallest
    # deployment in the grid — edge ids in range, no overlapping down
    # intervals, and no instant with every edge dead — so an impossible
    # scenario fails here rather than mid-sweep in a worker.
    plan.epochs(min(c.n_edges for c in configs))
    failure_specs = tuple(
        (f.edge, f.at, f.until) for f in plan.failures)
    path = str(trace_path)
    tasks: list[_PlanTask] = [
        (path, c.n_edges, c.bandwidth_bps, c.max_connections, policy,
         step, failure_specs, origin_stream_bps)
        for c in configs]
    rows = map_ordered(_evaluate_config, tasks, jobs=jobs, label="config")

    outcomes = tuple(
        ConfigOutcome(n_edges=c.n_edges, bandwidth_bps=c.bandwidth_bps,
                      max_connections=c.max_connections,
                      n_requests=row[0], n_rejected=row[1],
                      n_reassigned=row[2], n_failover_rejected=row[3],
                      rejection_rate=row[4], peak_connections=row[5],
                      peak_bandwidth_bps=row[6], origin_peak_streams=row[7])
        for c, row in zip(configs, rows, strict=True))

    frontier: list[ConfigOutcome] = []
    for count in sorted({o.n_edges for o in outcomes}):
        meeting = [o for o in outcomes
                   if o.n_edges == count and o.meets(slo)]
        if meeting:
            # Unlimited bandwidth (None) is the priciest provisioning:
            # it only wins when no finite candidate meets the SLO.
            frontier.append(min(
                meeting, key=lambda o: (o.bandwidth_bps is None,
                                        o.bandwidth_bps or 0.0)))
    best = frontier[0] if frontier else None
    return PlanReport(policy=policy, slo=slo, outcomes=outcomes,
                      frontier=tuple(frontier), best=best)
