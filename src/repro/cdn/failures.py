"""Failure scenarios: edge loss mid-show, optional recovery.

A failure plan is a set of per-edge down intervals ``[at, until)``
(``until=None`` keeps the edge down for the rest of the run).  The plan
partitions the timeline into **epochs** — maximal intervals over which
the alive-edge set is constant — which is the shape the engine consumes:
within an epoch nothing changes; at an epoch boundary dying edges hand
their active clients over to the survivors (see
:mod:`repro.cdn.engine`).

Plans are deliberately strict: an edge id must exist in the topology,
down intervals of one edge must not overlap, and no epoch may leave the
tier empty — each violation raises :class:`~repro.errors.CdnError` up
front rather than producing a silently degenerate simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._typing import IntArray
from ..errors import CdnError


@dataclass(frozen=True)
class EdgeFailure:
    """One edge-down interval.

    Attributes
    ----------
    edge:
        Edge id (index into the topology's edge tuple).
    at:
        Failure instant (seconds since trace start).
    until:
        Recovery instant, exclusive; ``None`` means the edge never
        comes back.
    """

    edge: int
    at: float
    until: float | None = None

    def __post_init__(self) -> None:
        if self.edge < 0:
            raise CdnError(f"edge id must be non-negative, got {self.edge}")
        if self.at < 0:
            raise CdnError(
                f"failure time must be non-negative, got {self.at}")
        if self.until is not None and self.until <= self.at:
            raise CdnError(
                f"recovery time {self.until} must be after the failure "
                f"at {self.at}")

    def down_at(self, t: float) -> bool:
        """Whether the edge is down at instant ``t``."""
        if t < self.at:
            return False
        return self.until is None or t < self.until


@dataclass(frozen=True)
class Epoch:
    """A maximal interval ``[t_lo, t_hi)`` with a constant alive set."""

    t_lo: float
    t_hi: float
    alive: IntArray = field(repr=False)

    @property
    def closes(self) -> bool:
        """Whether the epoch ends at a boundary (vs. running forever)."""
        return math.isfinite(self.t_hi)


@dataclass(frozen=True)
class FailurePlan:
    """All edge failures of one simulation run."""

    failures: tuple[EdgeFailure, ...] = ()

    def validate(self, n_edges: int) -> None:
        """Check the plan against a topology of ``n_edges`` edges."""
        per_edge: dict[int, list[EdgeFailure]] = {}
        for failure in self.failures:
            if failure.edge >= n_edges:
                raise CdnError(
                    f"failure names edge {failure.edge}, but the topology "
                    f"has {n_edges} edge(s)")
            per_edge.setdefault(failure.edge, []).append(failure)
        for edge, group in per_edge.items():
            group.sort(key=lambda f: f.at)
            for prev, cur in zip(group, group[1:], strict=False):
                if prev.until is None or cur.at < prev.until:
                    raise CdnError(
                        f"edge {edge} has overlapping down intervals "
                        f"(at={prev.at} and at={cur.at})")

    def boundaries(self) -> tuple[float, ...]:
        """All instants at which the alive set changes, ascending."""
        times = {f.at for f in self.failures}
        times.update(f.until for f in self.failures if f.until is not None)
        return tuple(sorted(t for t in times if t > 0))

    def epochs(self, n_edges: int) -> tuple[Epoch, ...]:
        """Partition ``[0, inf)`` into constant-alive-set epochs.

        Raises
        ------
        CdnError
            If the plan is inconsistent (via :meth:`validate`) or some
            epoch has no alive edge left to serve clients.
        """
        self.validate(n_edges)
        bounds = self.boundaries()
        edges = list(bounds) + [math.inf]
        out: list[Epoch] = []
        t_lo = 0.0
        for t_hi in edges:
            alive = np.asarray(
                [e for e in range(n_edges)
                 if not any(f.edge == e and f.down_at(t_lo)
                            for f in self.failures)],
                dtype=np.int64)
            if alive.size == 0:
                raise CdnError(
                    f"failure plan leaves no edge alive at t={t_lo}")
            out.append(Epoch(t_lo=t_lo, t_hi=t_hi, alive=alive))
            t_lo = t_hi
        return tuple(out)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready description of the plan."""
        return {
            "failures": [
                {"edge": f.edge, "at": f.at, "until": f.until}
                for f in self.failures
            ],
        }


def parse_failure(spec: str) -> EdgeFailure:
    """Parse an ``EDGE@AT`` or ``EDGE@AT:UNTIL`` CLI failure spec."""
    head, sep, rest = spec.partition("@")
    if not sep:
        raise CdnError(
            f"malformed failure spec {spec!r} (expected EDGE@AT or "
            f"EDGE@AT:UNTIL)")
    try:
        edge = int(head)
    except ValueError:
        raise CdnError(f"malformed failure spec {spec!r}: edge id "
                       f"{head!r} is not an integer") from None
    at_text, sep, until_text = rest.partition(":")
    try:
        at = float(at_text)
        until = float(until_text) if sep else None
    except ValueError:
        raise CdnError(f"malformed failure spec {spec!r}: times must "
                       f"be numbers") from None
    return EdgeFailure(edge=edge, at=at, until=until)
