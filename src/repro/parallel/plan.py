"""Deterministic shard planning for GISMO-live generation.

The engine's determinism contract rests on a *canonical decomposition*:
every generation request is split into a fixed number of **blocks**
(:data:`DEFAULT_BLOCKS` equal time windows of the observation period),
each carrying its own child :class:`~numpy.random.SeedSequence` spawned
from the request seed.  A *shard* is merely a contiguous group of blocks
handed to one worker; because the per-block random streams never depend
on how blocks are grouped, the merged trace is bit-for-bit identical for
**any** shard count and **any** worker count.

The planner runs the cheap, inherently serial stages in-process — the
piecewise-Poisson arrival times and the Zipf client-interest draw, one
vectorized pass each — and packages the expensive per-session stages
(transfer synthesis, bandwidth sampling) into picklable
:class:`ShardSpec` objects for :mod:`repro.parallel.engine` to execute.

Two grouping strategies are offered: ``"sessions"`` balances the session
count per shard (best load balance under a strong diurnal rhythm) and
``"windows"`` balances the wall-clock windows per shard.  The choice
affects scheduling only, never the generated workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray, SeedLike
from ..core.model import LiveWorkloadModel
from ..errors import GenerationError, ScenarioError
from ..rng import make_rng, spawn, spawn_sequences
from ..scenarios import Scenario, TraceEdit, get_scenario
from ..units import DAY

#: Number of canonical blocks a generation request is decomposed into.
#: Part of the determinism contract: the same ``(model, days, seed,
#: blocks)`` yields the same trace for every ``shards``/``jobs`` choice;
#: changing ``blocks`` selects a different (equally valid) workload.
DEFAULT_BLOCKS = 64

#: Valid shard grouping strategies.
STRATEGIES = ("sessions", "windows")


@dataclass(frozen=True)
class BlockSpec:
    """One canonical block: a time window's sessions plus their seed.

    Attributes
    ----------
    index:
        Position of the block in the canonical decomposition.
    session_lo, session_hi:
        Global session-index range ``[lo, hi)`` covered by the block.
    arrivals:
        Arrival times of the block's sessions (global trace time).
    session_client:
        Client index of each of the block's sessions (same length as
        ``arrivals``); lets workers resolve per-transfer clients for
        client-targeted scenario edits without the global table.
    seed_seq:
        The block's spawned seed sequence; workers derive the behaviour
        and bandwidth streams from it statelessly.
    """

    index: int
    session_lo: int
    session_hi: int
    arrivals: FloatArray = field(repr=False)
    session_client: IntArray = field(repr=False)
    seed_seq: np.random.SeedSequence = field(repr=False)

    @property
    def n_sessions(self) -> int:
        """Number of sessions in the block."""
        return self.session_hi - self.session_lo


@dataclass(frozen=True)
class ShardSpec:
    """A picklable unit of generation work: consecutive canonical blocks.

    Attributes
    ----------
    index:
        Shard position; results are merged in this order.
    model:
        The generative model (picklable value object).
    duration:
        Observation-window length in seconds; transfers are clipped to it.
    blocks:
        The canonical blocks this shard executes, in order.
    edits:
        Scenario trace edits to apply to every block's transfers, in
        order.  Row-local and start-preserving (see
        :class:`repro.scenarios.TraceEdit`), so applying them per block
        leaves the merged trace independent of the shard grouping.
    """

    index: int
    model: LiveWorkloadModel
    duration: float
    blocks: tuple[BlockSpec, ...]
    edits: tuple[TraceEdit, ...] = ()

    @property
    def n_sessions(self) -> int:
        """Total sessions across the shard's blocks."""
        return sum(block.n_sessions for block in self.blocks)

    @property
    def n_blocks(self) -> int:
        """Number of canonical blocks in the shard."""
        return len(self.blocks)


@dataclass(frozen=True)
class GenerationPlan:
    """A fully planned generation request.

    Attributes
    ----------
    model:
        The generative model.
    duration:
        Observation-window length in seconds.
    arrivals:
        Global session arrival times (sorted).
    session_client:
        Global client index of each session.
    shards:
        The shard specs, covering every session exactly once.
    strategy:
        The grouping strategy used (load balance only; see module doc).
    """

    model: LiveWorkloadModel
    duration: float
    arrivals: FloatArray = field(repr=False)
    session_client: IntArray = field(repr=False)
    shards: tuple[ShardSpec, ...] = ()
    strategy: str = "sessions"

    @property
    def n_sessions(self) -> int:
        """Total planned session count."""
        return int(self.arrivals.size)

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)


def _shard_cuts(bounds: IntArray, n_blocks: int, shards: int,
                strategy: str) -> list[int]:
    """Block-index cut points grouping ``n_blocks`` blocks into ``shards``.

    ``bounds`` is the cumulative session count at block edges (length
    ``n_blocks + 1``).  Returns ``shards + 1`` non-decreasing cut points
    starting at 0 and ending at ``n_blocks``.
    """
    if strategy == "windows":
        cuts = [(n_blocks * k) // shards for k in range(shards + 1)]
    else:  # "sessions": balance cumulative session counts
        n_sessions = int(bounds[-1])
        targets = [(n_sessions * k) / shards for k in range(1, shards)]
        interior = np.searchsorted(bounds, targets, side="left")
        raw = [0, *np.minimum(interior, n_blocks).tolist(), n_blocks]
        cuts = [int(c) for c in np.maximum.accumulate(raw)]
    return cuts


def plan_block_stream(model: LiveWorkloadModel, days: float, *,
                      seed: SeedLike = None,
                      blocks: int = DEFAULT_BLOCKS,
                      scenario: str | Scenario | None = None
                      ) -> GenerationPlan:
    """Plan a generation request as one shard per canonical block.

    The streaming entry point (:class:`repro.stream.GenerationStream`)
    executes blocks one at a time in canonical order, so it needs the
    finest-grained decomposition: ``shards == blocks`` under the
    ``"windows"`` strategy, which maps shard ``k`` to exactly block ``k``.
    The underlying workload is the same pure function of ``(model, days,
    seed, blocks)`` as every other execution mode.
    """
    return plan_generation(model, days, seed=seed, shards=blocks,
                           strategy="windows", blocks=blocks,
                           scenario=scenario)


def emit_horizons(plan: GenerationPlan) -> FloatArray:
    """Per-shard emit horizons for time-ordered streaming.

    ``emit_horizons(plan)[k]`` is a lower bound on the start time of every
    transfer produced by shards *after* ``k`` (``+inf`` for the last
    shard).  A shard's earliest transfer starts exactly at its first
    session arrival, and arrivals are globally sorted, so the bound is the
    arrival of the first session beyond shard ``k`` — known from the plan
    alone, before any transfer is synthesized.  A streaming merge may
    therefore emit everything with ``start < horizon[k]`` once shards
    ``0..k`` have executed, and still produce the exact global start
    order.
    """
    horizons = np.full(len(plan.shards), np.inf, dtype=np.float64)
    hi = 0
    for k, shard in enumerate(plan.shards):
        if shard.blocks:
            hi = shard.blocks[-1].session_hi
        if hi < plan.arrivals.size:
            horizons[k] = plan.arrivals[hi]
    return horizons


def plan_generation(model: LiveWorkloadModel, days: float, *,
                    seed: SeedLike = None, shards: int = 1,
                    strategy: str = "sessions",
                    blocks: int = DEFAULT_BLOCKS,
                    scenario: str | Scenario | None = None
                    ) -> GenerationPlan:
    """Plan a generation request as shard specs over canonical blocks.

    Runs the serial planning stages (arrival times, client interest) and
    splits the remaining work into ``shards`` picklable specs.  The
    resulting workload is a pure function of ``(model, days, seed,
    blocks, scenario)`` — never of ``shards``, ``strategy``, or worker
    count.

    Parameters
    ----------
    model:
        The generative model.
    days:
        Observation-window length in days (positive).
    seed:
        Request seed; the same seed reproduces the same plan.
    shards:
        Number of shard specs to produce (at least 1).  Shards beyond
        the block count come back empty.
    strategy:
        ``"sessions"`` (balance session counts) or ``"windows"``
        (balance time windows).
    blocks:
        Canonical block count (see :data:`DEFAULT_BLOCKS`).
    scenario:
        Optional workload perturbation: a spec string
        (``"flash-crowd+zapping"``), a
        :class:`~repro.scenarios.Scenario`, or ``None`` for the
        baseline.  The scenario's model perturbation is applied here,
        before arrival planning, and its trace edits ride along in the
        shard specs — so every execution mode generates the identical
        perturbed workload.

    Raises
    ------
    GenerationError
        If ``days`` is non-positive.
    ScenarioError
        If ``scenario`` is an unknown name or a malformed spec.
    ValueError
        If ``shards``, ``blocks``, or ``strategy`` is invalid.
    """
    if days <= 0:
        raise GenerationError(f"days must be positive, got {days}")
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if blocks < 1:
        raise ValueError(f"blocks must be at least 1, got {blocks}")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"strategy must be one of {STRATEGIES}, got {strategy!r}")

    resolved = get_scenario(scenario)
    if resolved is not None:
        perturbed = resolved.perturb_model(model)
        if perturbed.n_clients != model.n_clients:
            # Downstream consumers (client tables, online sessionizers)
            # size state from the request model; population changes are
            # expressed as trace edits (e.g. blackout), never by
            # resizing the client universe mid-plan.
            raise ScenarioError(
                f"scenario {resolved.spec_string()!r} changed n_clients "
                f"({model.n_clients} -> {perturbed.n_clients}); scenarios "
                "must preserve the client universe")
        model = perturbed

    duration = days * DAY
    edits = (resolved.trace_edits(model, duration)
             if resolved is not None else ())
    rng = make_rng(seed)
    arrival_rng, identity_rng = spawn(rng, 2)
    arrivals = model.arrival_process().generate(duration, arrival_rng)
    session_client = model.interest_law().sample(
        arrivals.size, identity_rng) - 1
    block_seqs = spawn_sequences(rng, blocks)

    # Canonical block edges: equal time windows over [0, duration).  The
    # arrivals are sorted, so each block is a contiguous session range.
    edges = duration * np.arange(1, blocks) / blocks
    bounds = np.empty(blocks + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[-1] = arrivals.size
    bounds[1:-1] = np.searchsorted(arrivals, edges, side="left")

    block_specs = [
        BlockSpec(index=b, session_lo=int(bounds[b]),
                  session_hi=int(bounds[b + 1]),
                  arrivals=arrivals[bounds[b]:bounds[b + 1]],
                  session_client=session_client[bounds[b]:bounds[b + 1]],
                  seed_seq=block_seqs[b])
        for b in range(blocks)
    ]
    cuts = _shard_cuts(bounds, blocks, shards, strategy)
    shard_specs = tuple(
        ShardSpec(index=k, model=model, duration=duration,
                  blocks=tuple(block_specs[cuts[k]:cuts[k + 1]]),
                  edits=edits)
        for k in range(shards)
    )
    return GenerationPlan(model=model, duration=duration, arrivals=arrivals,
                          session_client=session_client, shards=shard_specs,
                          strategy=strategy)
