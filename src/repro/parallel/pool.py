"""Ordered task execution: process pool with an inline fallback.

:func:`map_ordered` is the one scheduling primitive the subsystem uses.
It dispatches picklable tasks to a
:class:`~concurrent.futures.ProcessPoolExecutor` and returns results **in
submission order**, so reductions downstream are independent of worker
completion order — the second half of the determinism contract.  With
``jobs=1`` it degrades to a plain in-process loop, which keeps single-job
runs debuggable (no pickling, no subprocesses, ordinary tracebacks) and
bit-identical to pooled runs.

Progress is reported through the stdlib :mod:`logging` channel
``repro.parallel`` (dispatch at INFO, per-task completion at DEBUG); the
CLI's ``-v/--verbose`` flag turns it on.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Iterable, Sequence, TypeVar

from concurrent.futures import ProcessPoolExecutor

_T = TypeVar("_T")
_R = TypeVar("_R")

#: The subsystem's logger; enable with ``logging.basicConfig`` or the
#: CLI's ``-v`` flag.
logger = logging.getLogger("repro.parallel")


def map_ordered(fn: Callable[[_T], _R], items: Iterable[_T], *,
                jobs: int = 1, label: str = "task") -> list[_R]:
    """Apply ``fn`` to every item, returning results in item order.

    Parameters
    ----------
    fn:
        A picklable (module-level) callable.
    items:
        The work items; consumed eagerly.
    jobs:
        Worker-process count.  ``1`` executes inline in this process;
        higher values use a process pool capped at ``len(items)``.
    label:
        Noun used in log messages (``"shard"``, ``"chunk"``, ...).

    Raises
    ------
    ValueError
        If ``jobs`` is not positive.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    tasks: Sequence[_T] = list(items)
    workers = min(jobs, len(tasks))
    started = time.perf_counter()
    results: list[_R] = []
    if workers <= 1:
        logger.info("running %d %s(s) inline", len(tasks), label)
        for index, task in enumerate(tasks):
            t0 = time.perf_counter()
            results.append(fn(task))
            logger.debug("%s %d/%d done in %.3fs", label, index + 1,
                         len(tasks), time.perf_counter() - t0)
    else:
        logger.info("dispatching %d %s(s) across %d worker processes",
                    len(tasks), label, workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            for index, future in enumerate(futures):
                results.append(future.result())
                logger.debug("%s %d/%d collected", label, index + 1,
                             len(tasks))
    logger.info("%d %s(s) finished in %.3fs", len(tasks), label,
                time.perf_counter() - started)
    return results
