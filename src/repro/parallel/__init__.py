"""``repro.parallel``: deterministic sharded workload engine.

The scale-out subsystem: paper-scale workloads (28 days, millions of
transfers) are generated and characterized in shards across worker
processes, with a hard determinism contract — *the same model and seed
produce a bit-identical result for any shard count and any worker
count*.

Three layers:

* :mod:`repro.parallel.plan` — splits a generation request into
  picklable :class:`ShardSpec` units over a canonical block
  decomposition, with per-block child seeds spawned via
  ``numpy.random.SeedSequence``.
* :mod:`repro.parallel.engine` — executes shard specs inline or on a
  :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
  per-shard traces through :func:`repro.trace.transform.merge_traces`.
* :mod:`repro.parallel.characterize` — map-reduce log
  characterization: line-aligned file chunks, per-chunk
  :class:`~repro.trace.streaming.StreamingCharacterizer` accumulators,
  exact merge.

Progress is logged on the ``repro.parallel`` channel (the CLI's
``-v/--verbose`` flag enables it).
"""

from .characterize import (
    DEFAULT_CHUNK_BYTES,
    LogChunk,
    characterize_chunk,
    characterize_logs,
    plan_log_chunks,
)
from .engine import ShardResult, generate_shard, generate_sharded
from .plan import (
    DEFAULT_BLOCKS,
    BlockSpec,
    GenerationPlan,
    ShardSpec,
    plan_generation,
)
from .pool import map_ordered

__all__ = [
    "DEFAULT_BLOCKS",
    "DEFAULT_CHUNK_BYTES",
    "BlockSpec",
    "GenerationPlan",
    "LogChunk",
    "ShardResult",
    "ShardSpec",
    "characterize_chunk",
    "characterize_logs",
    "generate_shard",
    "generate_sharded",
    "map_ordered",
    "plan_generation",
    "plan_log_chunks",
]
