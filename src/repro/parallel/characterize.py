"""Map-reduce characterization of WMS-style logs.

A month-long log is one long sequential read for
:class:`~repro.trace.streaming.StreamingCharacterizer`; this module turns
it into a map-reduce: :func:`plan_log_chunks` splits each file into
line-aligned byte ranges, workers characterize chunks independently, and
the exact-merge contract of
:meth:`~repro.trace.streaming.StreamingCharacterizer.merge` reduces the
per-chunk accumulators to the identical
:class:`~repro.trace.streaming.StreamingSummary` the serial path yields.

Determinism: the chunk plan depends only on the input files and
``chunk_bytes`` — never on ``jobs`` — and accumulators are reduced in
chunk order, so the reported summary is independent of the worker count.
"""

from __future__ import annotations

import functools
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .._typing import FloatArray
from ..errors import LogParseError
from ..trace.streaming import StreamingCharacterizer, StreamingSummary
from ..trace.wms_log import _parse_fields_header, iter_log_lines
from .pool import logger, map_ordered

#: Default target chunk size for splitting log files, in bytes.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class LogChunk:
    """One line-aligned byte range of a log file.

    Attributes
    ----------
    index:
        Global position of the chunk across the whole plan; reductions
        run in this order.
    path:
        The log file the range refers to.
    byte_lo, byte_hi:
        Half-open byte range ``[lo, hi)``, aligned to line boundaries.
    fields:
        The file's ``#Fields`` layout, extracted once by the planner so
        chunks past the header remain parseable on their own.
    """

    index: int
    path: str
    byte_lo: int
    byte_hi: int
    fields: tuple[str, ...]

    @property
    def n_bytes(self) -> int:
        """Size of the chunk in bytes."""
        return self.byte_hi - self.byte_lo


def _scan_fields(path: str | Path) -> tuple[str, ...] | None:
    """Extract the ``#Fields`` layout heading a log file.

    Returns ``None`` for files containing no data lines at all (nothing
    to characterize).  Raises :class:`~repro.errors.LogParseError` if a
    data line precedes the header, mirroring the serial reader.
    """
    with open(path, "r", encoding="ascii") as stream:
        for number, line in iter_log_lines(stream):
            if line.startswith("#"):
                if line.startswith("#Fields:"):
                    return tuple(_parse_fields_header(line, number))
                continue
            raise LogParseError("data before #Fields header",
                                line_number=number, line=line)
    return None


def plan_log_chunks(paths: Sequence[str | Path], *,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES
                    ) -> list[LogChunk]:
    """Split log files into line-aligned chunks of roughly ``chunk_bytes``.

    Cut points land on the line boundary at or after each even byte
    split, so no log entry straddles two chunks.  Files with no data
    lines contribute no chunks.  The plan is a pure function of the
    files and ``chunk_bytes`` (never of the worker count), which is what
    keeps the reduced summary independent of ``jobs``.

    Raises
    ------
    ValueError
        If ``chunk_bytes`` is not positive.
    LogParseError
        If a file has data lines before its ``#Fields`` header.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    chunks: list[LogChunk] = []
    for path in paths:
        fields = _scan_fields(path)
        if fields is None:
            continue
        size = os.path.getsize(path)
        n_chunks = max(1, math.ceil(size / chunk_bytes))
        cuts = [0]
        with open(path, "rb") as stream:
            for k in range(1, n_chunks):
                stream.seek(k * size // n_chunks)
                stream.readline()
                cuts.append(min(stream.tell(), size))
        cuts.append(size)
        for lo, hi in zip(cuts, cuts[1:]):
            if lo < hi:
                chunks.append(LogChunk(index=len(chunks), path=str(path),
                                       byte_lo=lo, byte_hi=hi,
                                       fields=fields))
    return chunks


def characterize_chunk(chunk: LogChunk, *, diurnal_bins: int = 96,
                       bandwidth_edges: FloatArray | None = None
                       ) -> StreamingCharacterizer:
    """Characterize one chunk into a fresh accumulator (the map step).

    Module-level so chunks can be shipped to worker processes; the
    returned :class:`~repro.trace.streaming.StreamingCharacterizer`
    pickles back to the parent for reduction.
    """
    characterizer = StreamingCharacterizer(diurnal_bins=diurnal_bins,
                                           bandwidth_edges=bandwidth_edges)
    with open(chunk.path, "rb") as stream:
        stream.seek(chunk.byte_lo)
        blob = stream.read(chunk.n_bytes)
    characterizer.consume_lines(blob.decode("ascii").splitlines(),
                                list(chunk.fields))
    return characterizer


def characterize_logs(paths: str | Path | Sequence[str | Path], *,
                      jobs: int = 1, diurnal_bins: int = 96,
                      bandwidth_edges: FloatArray | None = None,
                      chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                      top_k: int = 10) -> StreamingSummary:
    """Characterize WMS-style logs with a parallel map-reduce.

    Splits the inputs into line-aligned chunks, characterizes them across
    ``jobs`` worker processes, and merges the accumulators in chunk
    order.  Reports the identical
    :class:`~repro.trace.streaming.StreamingSummary` a single serial
    :class:`~repro.trace.streaming.StreamingCharacterizer` pass produces,
    for any ``jobs`` and ``chunk_bytes``.

    Parameters
    ----------
    paths:
        One log path or a sequence of them.
    jobs:
        Worker-process count; ``1`` runs inline.
    diurnal_bins, bandwidth_edges, top_k:
        Forwarded to the characterizer/summary (see
        :class:`~repro.trace.streaming.StreamingCharacterizer`).
    chunk_bytes:
        Target chunk size for splitting files.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    chunks = plan_log_chunks(paths, chunk_bytes=chunk_bytes)
    worker = functools.partial(characterize_chunk,
                               diurnal_bins=diurnal_bins,
                               bandwidth_edges=bandwidth_edges)
    parts = map_ordered(worker, chunks, jobs=jobs, label="chunk")
    t0 = time.perf_counter()
    total = StreamingCharacterizer(diurnal_bins=diurnal_bins,
                                   bandwidth_edges=bandwidth_edges)
    for part in parts:
        total.merge(part)
    logger.info("reduced %d chunk accumulator(s) in %.3fs",
                len(parts), time.perf_counter() - t0)
    return total.summary(top_k=top_k)
