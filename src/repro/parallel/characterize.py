"""Map-reduce characterization of WMS-style logs and binary traces.

A month-long log is one long sequential read for
:class:`~repro.trace.streaming.StreamingCharacterizer`; this module turns
it into a map-reduce: :func:`plan_log_chunks` splits each file into
chunks — line-aligned byte ranges for text logs, runs of footer-indexed
segments for columnar binary traces (the codec is sniffed per file) —
workers characterize chunks independently, and the exact-merge contract
of :meth:`~repro.trace.streaming.StreamingCharacterizer.merge` reduces
the per-chunk accumulators to the identical
:class:`~repro.trace.streaming.StreamingSummary` the serial path yields.

Determinism: the chunk plan depends only on the input files and
``chunk_bytes`` — never on ``jobs`` — and accumulators are reduced in
chunk order, so the reported summary is independent of the worker count.
"""

from __future__ import annotations

import functools
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from .._typing import FloatArray
from ..errors import LogParseError
from ..trace.codecs import ENTRY_COLUMNS, _DTYPE_SIZES, BinaryTraceReader, detect_codec
from ..trace.streaming import StreamingCharacterizer, StreamingSummary
from ..trace.wms_log import _parse_fields_header, iter_log_lines
from .pool import logger, map_ordered

#: Default target chunk size for splitting log files, in bytes.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class LogChunk:
    """One independently characterizable piece of a trace file.

    Attributes
    ----------
    index:
        Global position of the chunk across the whole plan; reductions
        run in this order.
    path:
        The trace file the chunk refers to.
    byte_lo, byte_hi:
        Half-open byte range ``[lo, hi)``.  For text chunks these are
        file offsets aligned to line boundaries; for binary chunks they
        are cumulative *payload* bytes (the summed on-disk size of the
        covered segments), kept for size accounting.
    fields:
        The file's ``#Fields`` layout (text chunks only), extracted once
        by the planner so chunks past the header remain parseable on
        their own.  Empty for binary chunks.
    codec:
        ``"text"`` or ``"binary"``.
    segments:
        The footer segment indices the chunk covers (binary chunks
        only; in file order).
    """

    index: int
    path: str
    byte_lo: int
    byte_hi: int
    fields: tuple[str, ...]
    codec: str = "text"
    segments: tuple[int, ...] = field(default=())

    @property
    def n_bytes(self) -> int:
        """Size of the chunk in bytes."""
        return self.byte_hi - self.byte_lo


def _scan_fields(path: str | Path) -> tuple[str, ...] | None:
    """Extract the ``#Fields`` layout heading a log file.

    Returns ``None`` for files containing no data lines at all (nothing
    to characterize).  Raises :class:`~repro.errors.LogParseError` if a
    data line precedes the header, mirroring the serial reader.
    """
    with open(path, "r", encoding="ascii", errors="replace") as stream:
        for number, line in iter_log_lines(stream):
            if line.startswith("#"):
                if line.startswith("#Fields:"):
                    return tuple(_parse_fields_header(line, number))
                continue
            raise LogParseError("data before #Fields header",
                                line_number=number, line=line)
    return None


def plan_log_chunks(paths: Sequence[str | Path], *,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES
                    ) -> list[LogChunk]:
    """Split log files into line-aligned chunks of roughly ``chunk_bytes``.

    Cut points land on the line boundary at or after each even byte
    split, so no log entry straddles two chunks.  Files with no data
    lines contribute no chunks.  The plan is a pure function of the
    files and ``chunk_bytes`` (never of the worker count), which is what
    keeps the reduced summary independent of ``jobs``.

    Raises
    ------
    ValueError
        If ``chunk_bytes`` is not positive.
    LogParseError
        If a file has data lines before its ``#Fields`` header.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    chunks: list[LogChunk] = []
    for path in paths:
        if detect_codec(path) == "binary":
            _plan_binary_chunks(path, chunk_bytes, chunks)
            continue
        fields = _scan_fields(path)
        if fields is None:
            continue
        size = os.path.getsize(path)
        n_chunks = max(1, math.ceil(size / chunk_bytes))
        cuts = [0]
        with open(path, "rb") as stream:
            for k in range(1, n_chunks):
                stream.seek(k * size // n_chunks)
                stream.readline()
                cuts.append(min(stream.tell(), size))
        cuts.append(size)
        for lo, hi in zip(cuts, cuts[1:], strict=False):
            if lo < hi:
                chunks.append(LogChunk(index=len(chunks), path=str(path),
                                       byte_lo=lo, byte_hi=hi,
                                       fields=fields))
    return chunks


def _segment_payload_bytes(segment: dict[str, Any]) -> int:
    """On-disk payload bytes of one binary segment (excluding padding)."""
    total = 0
    for name in ENTRY_COLUMNS:
        descriptor = segment["columns"][name]
        if descriptor["dtype"] is not None:
            total += int(segment["rows"]) * _DTYPE_SIZES[descriptor["dtype"]]
    return total


def _plan_binary_chunks(path: str | Path, chunk_bytes: int,
                        chunks: list[LogChunk]) -> None:
    """Group a binary trace's segments into roughly ``chunk_bytes`` runs.

    Segments are indivisible (they are the writer's flush batches), so
    the planner packs consecutive segments greedily until a chunk reaches
    the byte target.  Like the text planner, the result depends only on
    the file and ``chunk_bytes``.
    """
    with BinaryTraceReader(path) as reader:
        segments = reader.footer["segments"]
    group: list[int] = []
    group_bytes = 0
    cursor = 0
    for index, segment in enumerate(segments):
        group.append(index)
        group_bytes += max(1, _segment_payload_bytes(segment))
        if group_bytes >= chunk_bytes:
            chunks.append(LogChunk(
                index=len(chunks), path=str(path), byte_lo=cursor,
                byte_hi=cursor + group_bytes, fields=(), codec="binary",
                segments=tuple(group)))
            cursor += group_bytes
            group = []
            group_bytes = 0
    if group:
        chunks.append(LogChunk(
            index=len(chunks), path=str(path), byte_lo=cursor,
            byte_hi=cursor + group_bytes, fields=(), codec="binary",
            segments=tuple(group)))


def consume_chunk(characterizer: StreamingCharacterizer,
                  chunk: LogChunk) -> int:
    """Fold one chunk into ``characterizer``; returns entries consumed.

    Text chunks read their byte range and feed
    :meth:`~repro.trace.streaming.StreamingCharacterizer.consume_lines`
    (undecodable bytes become skipped lines, as in the serial reader);
    binary chunks materialize each covered segment's columns from the
    memory map and feed the vectorized
    :meth:`~repro.trace.streaming.StreamingCharacterizer.consume_columns`
    path — no row dicts, no per-line Python.
    """
    if chunk.codec == "binary":
        parsed = 0
        with BinaryTraceReader(chunk.path) as reader:
            identities = reader.client_identity_map()
            players = np.asarray(
                [identities.get(i, ("", "", ""))[1]
                 for i in range((max(identities) + 1) if identities else 0)],
                dtype=np.str_)
            for index in chunk.segments:
                columns = reader.segment_columns(index)
                client = np.asarray(columns["client_index"], dtype=np.int64)
                parsed += characterizer.consume_columns(
                    columns, players[client])
        return parsed
    with open(chunk.path, "rb") as stream:
        stream.seek(chunk.byte_lo)
        blob = stream.read(chunk.n_bytes)
    return characterizer.consume_lines(
        blob.decode("ascii", errors="replace").splitlines(),
        list(chunk.fields))


def characterize_chunk(chunk: LogChunk, *, diurnal_bins: int = 96,
                       bandwidth_edges: FloatArray | None = None
                       ) -> StreamingCharacterizer:
    """Characterize one chunk into a fresh accumulator (the map step).

    Module-level so chunks can be shipped to worker processes; the
    returned :class:`~repro.trace.streaming.StreamingCharacterizer`
    pickles back to the parent for reduction.
    """
    characterizer = StreamingCharacterizer(diurnal_bins=diurnal_bins,
                                           bandwidth_edges=bandwidth_edges)
    consume_chunk(characterizer, chunk)
    return characterizer


def characterize_logs(paths: str | Path | Sequence[str | Path], *,
                      jobs: int = 1, diurnal_bins: int = 96,
                      bandwidth_edges: FloatArray | None = None,
                      chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                      top_k: int = 10) -> StreamingSummary:
    """Characterize WMS-style logs with a parallel map-reduce.

    Splits the inputs into line-aligned chunks, characterizes them across
    ``jobs`` worker processes, and merges the accumulators in chunk
    order.  Reports the identical
    :class:`~repro.trace.streaming.StreamingSummary` a single serial
    :class:`~repro.trace.streaming.StreamingCharacterizer` pass produces,
    for any ``jobs`` and ``chunk_bytes``.

    Parameters
    ----------
    paths:
        One log path or a sequence of them.
    jobs:
        Worker-process count; ``1`` runs inline.
    diurnal_bins, bandwidth_edges, top_k:
        Forwarded to the characterizer/summary (see
        :class:`~repro.trace.streaming.StreamingCharacterizer`).
    chunk_bytes:
        Target chunk size for splitting files.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    chunks = plan_log_chunks(paths, chunk_bytes=chunk_bytes)
    worker = functools.partial(characterize_chunk,
                               diurnal_bins=diurnal_bins,
                               bandwidth_edges=bandwidth_edges)
    parts = map_ordered(worker, chunks, jobs=jobs, label="chunk")
    t0 = time.perf_counter()
    total = StreamingCharacterizer(diurnal_bins=diurnal_bins,
                                   bandwidth_edges=bandwidth_edges)
    for part in parts:
        total.merge(part)
    logger.info("reduced %d chunk accumulator(s) in %.3fs",
                len(parts), time.perf_counter() - t0)
    return total.summary(top_k=top_k)
