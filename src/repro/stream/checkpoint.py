"""Atomic on-disk checkpoints for the streaming pipeline.

A checkpoint is a single ``.npz`` archive holding the numeric state
arrays of every pipeline stage (generation cursor, open-session table,
characterizer accumulators) plus one JSON document of scalar state,
stored as a zero-dimensional unicode array so the archive loads with
``allow_pickle=False``.

Writes are atomic: the archive is written to a sibling temporary file
and moved into place with :func:`os.replace`, so a checkpoint file on
disk is always complete — a run killed mid-write leaves the previous
checkpoint intact, which is what makes kill-and-resume safe at any
point.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from typing import Any, Mapping

import numpy as np
from numpy.typing import NDArray

from ..errors import CheckpointError

#: Archive member holding the JSON scalar state.
_META_KEY = "__meta__"

#: Bumped when the checkpoint layout changes incompatibly.
FORMAT_VERSION = 1


def save_checkpoint(path: str | os.PathLike[str], meta: Mapping[str, Any],
                    arrays: Mapping[str, NDArray[Any]]) -> None:
    """Atomically write ``meta`` + ``arrays`` to ``path``.

    Parameters
    ----------
    path:
        Destination file (conventionally ``*.npz``).
    meta:
        JSON-serializable scalar state.  The ``format_version`` key is
        added automatically.
    arrays:
        Named numeric arrays; names must not collide with the reserved
        meta member.
    """
    if _META_KEY in arrays:
        raise CheckpointError(
            f"array name {_META_KEY!r} is reserved for checkpoint metadata")
    document = dict(meta)
    document["format_version"] = FORMAT_VERSION
    payload: dict[str, NDArray[Any]] = {
        _META_KEY: np.asarray(json.dumps(document))}
    payload.update(arrays)
    path = os.fspath(path)
    # A unique temp name per call: concurrent writers targeting the same
    # checkpoint path must not share (or unlink) each other's in-flight
    # temp file — a fixed "<path>.tmp" sibling would let one run clobber
    # another's half-written archive and the cleanup below delete it.
    # mkstemp in the target directory keeps os.replace on one filesystem
    # (and therefore atomic).
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=f"{os.path.basename(path)}.", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as stream:
            np.savez(stream, **payload)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on failure
            os.unlink(tmp)


def load_checkpoint(path: str | os.PathLike[str]
                    ) -> tuple[dict[str, Any], dict[str, NDArray[Any]]]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``(meta, arrays)``.

    Raises
    ------
    CheckpointError
        If the file is missing, truncated, or not a checkpoint.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _META_KEY not in archive.files:
                raise CheckpointError(
                    f"{path!r} is not a streaming checkpoint "
                    f"(no {_META_KEY} member)")
            meta: dict[str, Any] = json.loads(str(archive[_META_KEY][()]))
            arrays: dict[str, NDArray[Any]] = {
                name: archive[name] for name in archive.files
                if name != _META_KEY}
    except FileNotFoundError as exc:
        raise CheckpointError(f"checkpoint {path!r} does not exist") from exc
    except (zipfile.BadZipFile, ValueError, OSError,
            json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt: {exc}") from exc
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}, "
            f"this build reads version {FORMAT_VERSION}")
    return meta, arrays


def require_match(meta: Mapping[str, Any], expected: Mapping[str, object],
                  path: str | os.PathLike[str] = "<checkpoint>") -> None:
    """Check that a checkpoint's fingerprint matches the current request.

    ``expected`` maps fingerprint keys (model/seed/chunking identity) to
    the values the resuming run derived from its own arguments; any
    mismatch means the checkpoint belongs to a different workload and
    resuming would silently produce a hybrid — refuse instead.

    Raises
    ------
    CheckpointError
        On the first mismatching or missing key.
    """
    fingerprint = meta.get("fingerprint")
    if not isinstance(fingerprint, Mapping):
        raise CheckpointError(
            f"checkpoint {os.fspath(path)!r} has no workload fingerprint")
    for key, value in expected.items():
        if key not in fingerprint:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} fingerprint is missing "
                f"{key!r}")
        if fingerprint[key] != value:
            raise CheckpointError(
                f"checkpoint {os.fspath(path)!r} was written for "
                f"{key}={fingerprint[key]!r}, this run has {key}={value!r}")
