"""Chunked, time-ordered streaming generation.

The batch engine (:func:`repro.parallel.generate_sharded`) materializes
every shard's transfers and merges them into one
:class:`~repro.trace.store.Trace` — O(trace) memory.  This module produces
the *same* transfers, in the same global start order, as a sequence of
bounded-size :class:`TransferBatch` chunks, holding only:

* the generation plan's arrival/interest arrays (O(sessions) — the serial
  planning stages are shared with every other execution mode);
* the currently executing canonical block (O(trace / blocks));
* a *pending* buffer of transfers that start beyond the next block's
  first arrival (bounded by how far session tails outlive their block's
  time window).

The merge invariant: blocks are time windows, so block ``k``'s earliest
transfer starts at its first session arrival — known from the plan before
any transfer is synthesized (:func:`repro.parallel.plan.emit_horizons`).
After executing blocks ``0..k``, everything with ``start <
emit_horizons(plan)[k]`` can be emitted; a stable merge of the pending
buffer with each new block reproduces exactly the stable sort by start
the batch path applies to the concatenated blocks, so the streamed
column concatenation is **bit-identical** to
``generate_sharded(model, days, seed=seed, blocks=blocks).trace`` for any
``chunk_size``.

The cursor — next block index, pending buffer, emitted count — is the
whole iterator state, which is what makes checkpoint/resume exact: blocks
derive their random streams statelessly from the plan's spawned seed
sequences, so re-planning on resume reproduces the remaining blocks
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np
from numpy.typing import NDArray

from .._typing import FloatArray, IntArray, SeedLike
from ..core.model import LiveWorkloadModel
from ..errors import CheckpointError
from ..parallel.engine import generate_shard
from ..parallel.plan import DEFAULT_BLOCKS, emit_horizons, plan_block_stream
from ..scenarios import Scenario, get_scenario

#: Default number of transfers per emitted batch.
DEFAULT_CHUNK_SIZE = 100_000

#: Pending-buffer columns carried across blocks, in checkpoint order.
_PENDING_COLUMNS: tuple[tuple[str, type[Any]], ...] = (
    ("start", np.float64), ("duration", np.float64),
    ("object_id", np.int64), ("bandwidth_bps", np.float64),
    ("transfer_session", np.int64),
)


@dataclass(frozen=True)
class TransferBatch:
    """One bounded chunk of the global, start-ordered transfer stream.

    Attributes
    ----------
    global_offset:
        Trace position of the batch's first transfer: the streamed trace
        is the concatenation of batches, and ``global_offset + i`` is row
        ``i``'s index in the equivalent in-memory trace.
    client_index, object_id, start, duration, bandwidth_bps:
        The transfer columns, exactly as the batch trace holds them.
    transfer_session:
        Global owning-session index of each transfer.
    horizon:
        Lower bound on the start of every transfer in every *later*
        batch (non-strict: a tied start may equal it).  Consumers use it
        to retire state: the log writer flushes entries ending strictly
        before it, the online sessionizer evicts sessions it provably
        closes.  ``+inf`` on the final flush.
    """

    global_offset: int
    client_index: IntArray = field(repr=False)
    object_id: IntArray = field(repr=False)
    start: FloatArray = field(repr=False)
    duration: FloatArray = field(repr=False)
    bandwidth_bps: FloatArray = field(repr=False)
    transfer_session: IntArray = field(repr=False)
    horizon: float = np.inf

    @property
    def n_transfers(self) -> int:
        """Number of transfers in the batch."""
        return int(self.start.size)


class GenerationStream:
    """Streaming iterator over a GISMO-live generation request.

    Iterating yields :class:`TransferBatch` chunks of at most
    ``chunk_size`` transfers in global start order; the concatenated
    batches are bit-identical to the batch engine's trace for the same
    ``(model, days, seed, blocks)``.  :meth:`block_steps` exposes the
    canonical-block granularity at which the cursor
    (:meth:`state_meta`/:meth:`state_arrays`) is valid for checkpointing.

    Parameters
    ----------
    model:
        The generative model.
    days:
        Observation-window length in days.
    seed:
        Request seed.  Required for resumable runs — an unseeded plan
        cannot be re-created.
    chunk_size:
        Maximum transfers per emitted batch (content is invariant to it).
    blocks:
        Canonical block count; part of the workload's identity (see
        :data:`repro.parallel.plan.DEFAULT_BLOCKS`).
    scenario:
        Optional workload perturbation (spec string or
        :class:`~repro.scenarios.Scenario`); part of the workload's
        identity.  Applied at plan time, so the streamed columns stay
        bit-identical to the batch engine's scenario trace.
    """

    def __init__(self, model: LiveWorkloadModel, days: float, *,
                 seed: SeedLike = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 blocks: int = DEFAULT_BLOCKS,
                 scenario: str | Scenario | None = None) -> None:
        if chunk_size < 1:
            raise ValueError(
                f"chunk_size must be at least 1, got {chunk_size}")
        self.model = model
        self.days = float(days)
        self.chunk_size = int(chunk_size)
        self.blocks = int(blocks)
        self.scenario = get_scenario(scenario)
        self._plan = plan_block_stream(model, days, seed=seed, blocks=blocks,
                                       scenario=self.scenario)
        self._horizons = emit_horizons(self._plan)
        self._next_block = 0
        self._n_emitted = 0
        self._pending = {name: np.empty(0, dtype=dtype)
                         for name, dtype in _PENDING_COLUMNS}

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Number of canonical blocks (block steps) in the stream."""
        return len(self._plan.shards)

    @property
    def next_block(self) -> int:
        """Index of the next block to execute (== blocks completed)."""
        return self._next_block

    @property
    def n_emitted(self) -> int:
        """Transfers emitted so far (the next batch's global offset)."""
        return self._n_emitted

    @property
    def n_pending(self) -> int:
        """Transfers held in the cross-block pending buffer."""
        return int(self._pending["start"].size)

    @property
    def n_sessions(self) -> int:
        """Total planned session count (known up front from the plan)."""
        return self._plan.n_sessions

    @property
    def extent(self) -> float:
        """Observation-window length in seconds."""
        return self._plan.duration

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TransferBatch]:
        for batches in self.block_steps():
            yield from batches

    def block_steps(self) -> Iterator[list[TransferBatch]]:
        """Yield the batches of one canonical block at a time.

        The cursor state is consistent exactly between steps: after
        consuming a step's batches, :meth:`state_meta` and
        :meth:`state_arrays` describe a resumable position.
        """
        while self._next_block < self.n_blocks:
            yield self._advance_block()

    def _advance_block(self) -> list[TransferBatch]:
        block = self._next_block
        result = generate_shard(self._plan.shards[block])
        horizon = float(self._horizons[block])
        produced = {
            "start": result.start, "duration": result.duration,
            "object_id": result.object_id,
            "bandwidth_bps": result.bandwidth_bps,
            "transfer_session": result.transfer_session,
        }
        # Stable merge with the pending buffer: pending rows come from
        # earlier blocks, so keeping them first on equal starts is
        # exactly the batch path's stable sort over blocks in order.
        merged = {name: np.concatenate([col, produced[name]])
                  for name, col in self._pending.items()}
        order = np.argsort(merged["start"], kind="stable")
        merged = {name: col[order] for name, col in merged.items()}
        cut = int(np.searchsorted(merged["start"], horizon, side="left"))
        # Copy the kept tail so the emitted prefix's memory can be freed.
        self._pending = {name: col[cut:].copy()
                         for name, col in merged.items()}

        session_client = self._plan.session_client
        batches: list[TransferBatch] = []
        for lo in range(0, cut, self.chunk_size):
            hi = min(lo + self.chunk_size, cut)
            session = merged["transfer_session"][lo:hi]
            # Only the block's last batch may promise the block horizon:
            # sibling batches after this one hold transfers below it.  A
            # non-final batch's bound is the next emitted transfer's
            # start — starts are sorted, and everything kept past ``cut``
            # begins at or after ``horizon`` which is larger still.
            batch_horizon = (horizon if hi == cut
                             else float(merged["start"][hi]))
            batches.append(TransferBatch(
                global_offset=self._n_emitted + lo,
                client_index=session_client[session],
                object_id=merged["object_id"][lo:hi],
                start=merged["start"][lo:hi],
                duration=merged["duration"][lo:hi],
                bandwidth_bps=merged["bandwidth_bps"][lo:hi],
                transfer_session=session,
                horizon=batch_horizon,
            ))
        self._n_emitted += cut
        self._next_block = block + 1
        return batches

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_meta(self) -> dict[str, int]:
        """The scalar cursor state (valid between block steps)."""
        return {"next_block": self._next_block,
                "n_emitted": self._n_emitted}

    def state_arrays(self) -> dict[str, NDArray[Any]]:
        """The pending-buffer columns (valid between block steps)."""
        return {f"gen_pending_{name}": col.copy()
                for name, col in self._pending.items()}

    def restore(self, meta: Mapping[str, Any],
                arrays: Mapping[str, NDArray[Any]]) -> None:
        """Restore a cursor captured by the two ``state_*`` methods.

        Raises
        ------
        CheckpointError
            If the cursor does not fit this stream's plan.
        """
        next_block = int(meta["next_block"])
        if not 0 <= next_block <= self.n_blocks:
            raise CheckpointError(
                f"checkpoint block cursor {next_block} out of range for "
                f"{self.n_blocks} blocks")
        try:
            pending = {name: np.asarray(arrays[f"gen_pending_{name}"],
                                        dtype=dtype)
                       for name, dtype in _PENDING_COLUMNS}
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint is missing generation state: {exc}") from exc
        self._next_block = next_block
        self._n_emitted = int(meta["n_emitted"])
        self._pending = pending
