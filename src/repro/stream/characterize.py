"""Resumable sequential log characterization.

The parallel map-reduce (:func:`repro.parallel.characterize_logs`) is the
fast path over a finished log set; this module is the *durable* path: one
process walks the same deterministic chunk plan in order, folding each
chunk into a single :class:`~repro.trace.streaming.StreamingCharacterizer`
and checkpointing the accumulator plus the chunk cursor.  A killed run
resumed from its checkpoint reports the same
:class:`~repro.trace.streaming.StreamingSummary` as an uninterrupted one
— the characterizer's state round-trips exactly (see
:meth:`~repro.trace.streaming.StreamingCharacterizer.state_dict`), and
the chunk plan is a pure function of the input files.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from .._typing import FloatArray
from ..errors import CheckpointError
from ..parallel.characterize import DEFAULT_CHUNK_BYTES, consume_chunk, plan_log_chunks
from ..trace.streaming import StreamingCharacterizer, StreamingSummary
from .checkpoint import load_checkpoint, require_match, save_checkpoint

#: Default number of chunks between checkpoint saves.
DEFAULT_CHECKPOINT_EVERY = 4


def _log_fingerprint(paths: Sequence[str | Path],
                     chunk_bytes: int, diurnal_bins: int,
                     edges: FloatArray | None) -> dict[str, Any]:
    """Identity of a characterization request: the exact inputs.

    File sizes stand in for content hashes — rewriting a log mid-run is
    already undefined behaviour for the chunk plan; the size check
    catches the common case (a log that grew or was regenerated).
    """
    return {
        "logs": [[os.fspath(path), os.path.getsize(path)]
                 for path in paths],
        "chunk_bytes": int(chunk_bytes),
        "diurnal_bins": int(diurnal_bins),
        "bandwidth_edges": (None if edges is None
                            else np.asarray(edges, dtype=np.float64).tolist()),
    }


def characterize_logs_resumable(
        paths: str | Path | Sequence[str | Path], *,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        diurnal_bins: int = 96,
        bandwidth_edges: FloatArray | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        top_k: int = 10,
        max_chunks: int | None = None) -> StreamingSummary | None:
    """Characterize logs sequentially with checkpoint/resume.

    Parameters
    ----------
    paths:
        One log path or a sequence of them.
    checkpoint_path:
        When set, the accumulator and chunk cursor are saved here every
        ``checkpoint_every`` chunks (atomically) and at exit.
    resume:
        Continue from ``checkpoint_path`` if it exists; the checkpoint
        must have been written for the same logs (path + size),
        ``chunk_bytes``, and binning configuration.
    diurnal_bins, bandwidth_edges, top_k:
        Forwarded to the characterizer/summary.
    chunk_bytes:
        Chunk-plan granularity (must match across resumes — it defines
        the cursor's meaning).
    max_chunks:
        Process at most this many chunks in *this* call (test/ops hook);
        returns ``None`` when the plan was left unfinished.

    Returns
    -------
    The final :class:`~repro.trace.streaming.StreamingSummary`, or
    ``None`` when ``max_chunks`` stopped the run before the last chunk.

    Raises
    ------
    CheckpointError
        On fingerprint mismatches or a corrupt checkpoint.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be at least 1, got {checkpoint_every}")
    chunks = plan_log_chunks(paths, chunk_bytes=chunk_bytes)
    fingerprint = _log_fingerprint(paths, chunk_bytes, diurnal_bins,
                                   bandwidth_edges)

    characterizer = StreamingCharacterizer(diurnal_bins=diurnal_bins,
                                           bandwidth_edges=bandwidth_edges)
    next_chunk = 0
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True requires a checkpoint_path")
        if os.path.exists(checkpoint_path):
            meta, _ = load_checkpoint(checkpoint_path)
            require_match(meta, fingerprint, checkpoint_path)
            next_chunk = int(meta["next_chunk"])
            if not 0 <= next_chunk <= len(chunks):
                raise CheckpointError(
                    f"checkpoint chunk cursor {next_chunk} out of range "
                    f"for {len(chunks)} chunks")
            characterizer = StreamingCharacterizer.from_state_dict(
                meta["characterizer"])

    def checkpoint_now() -> None:
        assert checkpoint_path is not None
        save_checkpoint(checkpoint_path, {
            "fingerprint": fingerprint,
            "next_chunk": next_chunk,
            "characterizer": characterizer.state_dict(),
        }, {})

    since_checkpoint = 0
    processed = 0
    while next_chunk < len(chunks):
        if max_chunks is not None and processed >= max_chunks:
            break
        consume_chunk(characterizer, chunks[next_chunk])
        next_chunk += 1
        processed += 1
        since_checkpoint += 1
        if checkpoint_path is not None and since_checkpoint >= checkpoint_every:
            checkpoint_now()
            since_checkpoint = 0

    if checkpoint_path is not None and since_checkpoint:
        checkpoint_now()
    if next_chunk < len(chunks):
        return None
    return characterizer.summary(top_k=top_k)
