"""The end-to-end bounded-memory streaming pipeline.

:func:`run_streaming_generation` wires the three streaming stages
together — :class:`~repro.stream.generate.GenerationStream` produces
start-ordered transfer batches, each batch is pushed into the selected
codec's incremental trace writer (text log bytes identical to the batch
writer; the columnar binary codec shares the same reorder buffer) and
the :class:`~repro.stream.sessionize.OnlineSessionizer` (sessions
identical to the batch sessionizer) — while never materializing the
trace.

After every canonical block the pipeline state is a small, serializable
cursor: the generator's pending buffer, the writer's in-flight reorder
buffer, the open-session table, and the collected finalized sessions.
With ``checkpoint_path`` set, that cursor is atomically saved after each
block; a later call with ``resume=True`` restores it, truncates the log
file back to the checkpointed byte offset, and continues — the finished
artifacts are bit-identical to an uninterrupted run, which is what the
kill-and-resume step in CI asserts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

import numpy as np
from numpy.typing import NDArray

from .._typing import SeedLike
from ..core.gismo import synthetic_client_identity
from ..core.model import LiveWorkloadModel
from ..errors import CheckpointError
from ..scenarios import Scenario, get_scenario, scenario_spec_string
from ..trace.codecs import get_codec
from ..trace.wms_log import StreamingTraceWriter
from ..units import DEFAULT_SESSION_TIMEOUT
from .checkpoint import load_checkpoint, require_match, save_checkpoint
from .generate import DEFAULT_CHUNK_SIZE, GenerationStream
from .sessionize import FinalizedSessions, OnlineSessionizer, merge_finalized

#: Prefix namespacing the log writer's buffer inside checkpoint archives.
_WRITER_PREFIX = "log_"

#: Prefix namespacing the collected finalized-session columns.
_SESSIONS_PREFIX = "fin_"


@dataclass(frozen=True)
class StreamRunResult:
    """Outcome of one :func:`run_streaming_generation` call.

    Attributes
    ----------
    n_transfers:
        Transfers emitted by the generation stream so far (across
        resumes).
    n_entries:
        Log entries written so far (0 when no log was requested).
    n_sessions:
        Sessions finalized so far (``None`` when sessionization is off).
    sessions:
        The finalized sessions in canonical ``(client, start)`` order
        when collection is on, else ``None``.  Only meaningful once
        ``completed`` is true.
    completed:
        Whether the stream ran to the end of the observation window.
        False only when ``max_blocks`` stopped the run early.
    blocks_run:
        Canonical blocks executed *by this call*.
    peak_open_sessions:
        High-water mark of the open-session table.
    peak_log_buffered:
        High-water mark of the log writer's reorder buffer.
    peak_pending:
        High-water mark of the generator's cross-block pending buffer.
    """

    n_transfers: int
    n_entries: int
    n_sessions: int | None
    sessions: FinalizedSessions | None
    completed: bool
    blocks_run: int
    peak_open_sessions: int
    peak_log_buffered: int
    peak_pending: int


def _workload_fingerprint(model: LiveWorkloadModel, days: float,
                          seed: int, blocks: int, timeout: float,
                          codec: str, scenario: str = "") -> dict[str, Any]:
    return {
        "model": model.to_dict(),
        "days": float(days),
        "seed": int(seed),
        "blocks": int(blocks),
        "timeout": float(timeout),
        "codec": str(codec),
        "scenario": str(scenario),
    }


def run_streaming_generation(
        model: LiveWorkloadModel, days: float, *,
        seed: SeedLike = None,
        log_path: str | Path | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        blocks: int | None = None,
        timeout: float = DEFAULT_SESSION_TIMEOUT,
        sessionize: bool = True,
        collect_sessions: bool = True,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        max_blocks: int | None = None,
        codec: str = "text",
        software: str = "Windows Media Services 4.1",
        scenario: str | Scenario | None = None) -> StreamRunResult:
    """Generate a workload end to end in bounded memory.

    Parameters
    ----------
    model, days, seed:
        The generation request; for a fixed ``(model, days, seed,
        blocks)`` the log file is byte-identical to
        ``write_wms_log(generate_sharded(...).trace)`` and the collected
        sessions match ``sessionize(trace, timeout).session_columns()``.
    log_path:
        WMS-style log destination; ``None`` skips log writing.
    chunk_size:
        Transfers per streamed batch (outputs are invariant to it).
    blocks:
        Canonical block count (default
        :data:`repro.parallel.plan.DEFAULT_BLOCKS`); also the checkpoint
        granularity.
    timeout:
        Sessionization silence threshold ``T_o``.
    sessionize:
        Run the online sessionizer.
    collect_sessions:
        Keep finalized sessions in memory (O(sessions)); turn off for
        count-only paper-scale runs.
    checkpoint_path:
        When set, the pipeline cursor is saved here after every
        ``checkpoint_every`` blocks (and at exit).  Requires an integer
        ``seed`` — an unseeded request cannot be re-planned on resume.
    resume:
        Continue from ``checkpoint_path`` if it exists (a missing
        checkpoint file starts from scratch, so a kill-anytime retry
        loop needs no existence check).  The checkpoint's workload
        fingerprint must match this call's arguments.
    checkpoint_every:
        Blocks between checkpoint saves.
    max_blocks:
        Stop after this many blocks in *this* call (test/ops hook for
        exercising interrupted runs); the result reports
        ``completed=False`` when the stream was cut short.
    codec:
        Trace serialization for ``log_path``: ``"text"`` (the WMS log)
        or ``"binary"`` (the columnar format of
        :mod:`repro.trace.codecs`).  Part of the checkpoint fingerprint —
        a run cannot resume under a different codec.
    software:
        Log ``#Software`` header value (recorded in the binary header
        too).
    scenario:
        Optional workload perturbation (spec string or
        :class:`~repro.scenarios.Scenario`).  Part of the workload's
        identity and of the checkpoint fingerprint: a run cannot resume
        under a different scenario.

    Raises
    ------
    CheckpointError
        On checkpoint/argument mismatches (wrong workload fingerprint,
        missing log file to resume into, unseeded checkpointed request).
    """
    if checkpoint_path is not None and not isinstance(seed, int):
        raise CheckpointError(
            "checkpointed streaming runs require an integer seed: an "
            "unseeded plan cannot be re-created on resume")
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be at least 1, got {checkpoint_every}")
    codec_impl = get_codec(codec)

    resolved_scenario = get_scenario(scenario)
    stream = GenerationStream(model, days, seed=seed, chunk_size=chunk_size,
                              scenario=resolved_scenario,
                              **({} if blocks is None
                                 else {"blocks": blocks}))
    sessionizer = (OnlineSessionizer(model.n_clients, timeout=timeout)
                   if sessionize else None)
    fingerprint: dict[str, Any] | None = None
    if checkpoint_path is not None:
        assert isinstance(seed, int)  # enforced above
        fingerprint = _workload_fingerprint(
            model, days, seed, stream.blocks, timeout, codec,
            scenario_spec_string(resolved_scenario))

    collected: list[FinalizedSessions] = []
    restored: tuple[dict[str, Any], dict[str, NDArray[Any]]] | None = None
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True requires a checkpoint_path")
        if os.path.exists(checkpoint_path):
            restored = load_checkpoint(checkpoint_path)

    meta: dict[str, Any] | None = None
    if restored is not None:
        assert checkpoint_path is not None and fingerprint is not None
        meta, arrays = restored
        require_match(meta, fingerprint, checkpoint_path)
        stream.restore(meta["generator"], arrays)
        if sessionizer is not None:
            if meta.get("sessionizer") is None:
                raise CheckpointError(
                    "checkpoint was written without sessionization; "
                    "cannot resume with sessionize=True")
            sessionizer.restore(meta["sessionizer"], arrays)
        if sessionizer is not None and collect_sessions:
            try:
                collected = [FinalizedSessions(
                    client_index=np.asarray(
                        arrays[f"{_SESSIONS_PREFIX}client"], dtype=np.int64),
                    start=np.asarray(arrays[f"{_SESSIONS_PREFIX}start"],
                                     dtype=np.float64),
                    end=np.asarray(arrays[f"{_SESSIONS_PREFIX}end"],
                                   dtype=np.float64),
                    n_transfers=np.asarray(
                        arrays[f"{_SESSIONS_PREFIX}count"], dtype=np.int64),
                )]
            except KeyError as exc:
                raise CheckpointError(
                    "checkpoint was written without collected sessions; "
                    f"missing {exc}") from exc

    own_stream: IO[Any] | None = None
    writer: StreamingTraceWriter | None = None
    try:
        if log_path is not None:
            if restored is not None:
                assert meta is not None
                offset = meta.get("log_offset")
                if offset is None:
                    raise CheckpointError(
                        "checkpoint was written without a log file; "
                        "cannot resume log output")
                if not os.path.exists(log_path):
                    raise CheckpointError(
                        f"log file {os.fspath(log_path)!r} is missing; the "
                        "checkpoint expects its first "
                        f"{offset} bytes")
                if os.path.getsize(log_path) < offset:
                    raise CheckpointError(
                        f"log file {os.fspath(log_path)!r} is shorter than "
                        f"the checkpointed offset {offset}")
                own_stream = codec_impl.reopen_stream(log_path, int(offset))
                writer = codec_impl.make_writer(
                    own_stream, synthetic_client_identity,
                    software=software, write_header=False)
                writer.restore(
                    meta["writer"],
                    {name[len(_WRITER_PREFIX):]: col
                     for name, col in arrays.items()
                     if name.startswith(_WRITER_PREFIX)})
            else:
                own_stream = codec_impl.open_stream(log_path)
                writer = codec_impl.make_writer(
                    own_stream, synthetic_client_identity, software=software)

        peak_open = sessionizer.peak_open if sessionizer is not None else 0
        peak_buffered = writer.n_buffered if writer is not None else 0
        peak_pending = stream.n_pending
        blocks_run = 0
        since_checkpoint = 0

        def checkpoint_now() -> None:
            assert checkpoint_path is not None
            arrays: dict[str, NDArray[Any]] = {}
            arrays.update(stream.state_arrays())
            doc: dict[str, Any] = {
                "fingerprint": fingerprint,
                "generator": stream.state_meta(),
                "sessionizer": None,
                "writer": None,
                "log_offset": None,
            }
            if sessionizer is not None:
                doc["sessionizer"] = sessionizer.state_meta()
                arrays.update(sessionizer.state_arrays())
            if writer is not None:
                assert own_stream is not None
                own_stream.flush()
                doc["writer"] = writer.state_meta()
                doc["log_offset"] = own_stream.tell()
                arrays.update({f"{_WRITER_PREFIX}{name}": col
                               for name, col
                               in writer.state_arrays().items()})
            if sessionizer is not None and collect_sessions:
                merged = merge_finalized(collected)
                collected[:] = [merged]
                arrays[f"{_SESSIONS_PREFIX}client"] = merged.client_index
                arrays[f"{_SESSIONS_PREFIX}start"] = merged.start
                arrays[f"{_SESSIONS_PREFIX}end"] = merged.end
                arrays[f"{_SESSIONS_PREFIX}count"] = merged.n_transfers
            save_checkpoint(checkpoint_path, doc, arrays)

        for batches in stream.block_steps():
            for batch in batches:
                if writer is not None:
                    writer.push(
                        client_index=batch.client_index,
                        object_id=batch.object_id,
                        start=batch.start, duration=batch.duration,
                        bandwidth_bps=batch.bandwidth_bps,
                        global_offset=batch.global_offset,
                        horizon=batch.horizon)
                    peak_buffered = max(peak_buffered, writer.n_buffered)
                if sessionizer is not None:
                    finalized = sessionizer.push_batch(batch)
                    if collect_sessions and finalized.n_sessions:
                        collected.append(finalized)
            peak_pending = max(peak_pending, stream.n_pending)
            if sessionizer is not None:
                peak_open = max(peak_open, sessionizer.peak_open)
            blocks_run += 1
            since_checkpoint += 1
            if (checkpoint_path is not None
                    and since_checkpoint >= checkpoint_every):
                checkpoint_now()
                since_checkpoint = 0
            if max_blocks is not None and blocks_run >= max_blocks:
                break

        completed = stream.next_block >= stream.n_blocks
        if completed:
            if writer is not None:
                writer.finish()
            if sessionizer is not None:
                finalized = sessionizer.finish()
                if collect_sessions and finalized.n_sessions:
                    collected.append(finalized)
        if checkpoint_path is not None and (since_checkpoint or completed):
            checkpoint_now()

        sessions = None
        if sessionizer is not None and collect_sessions:
            sessions = merge_finalized(collected)
        return StreamRunResult(
            n_transfers=stream.n_emitted,
            n_entries=writer.n_written if writer is not None else 0,
            n_sessions=(sessionizer.n_finalized
                        if sessionizer is not None else None),
            sessions=sessions,
            completed=completed,
            blocks_run=blocks_run,
            peak_open_sessions=peak_open,
            peak_log_buffered=peak_buffered,
            peak_pending=peak_pending,
        )
    finally:
        if own_stream is not None:
            own_stream.close()
