"""Online (single-pass) session reconstruction.

The batch sessionizer (:func:`repro.core.sessionizer.sessionize`) sorts
the whole trace by ``(client, start)`` and scans it — O(trace) memory.
:class:`OnlineSessionizer` consumes the same transfers as start-ordered
batches and keeps only **per-client open-session state**: the running
maximum of the client's transfer ends, the open session's start and
transfer count.  Finalized sessions are emitted incrementally.

Exactness
---------
The per-client running maximum of ends is a plain ``max`` over a set of
floats — associative and commutative *exactly* — so accumulating it
across batches yields bit-for-bit the values the batch scan computes.
Silence gaps, boundaries (``gap > T_o``), session ends, and counts are
derived from those identical values by identical arithmetic; collecting
the emitted sessions in ``(client, start)`` order therefore reproduces
:meth:`repro.core.sessionizer.Sessions.session_columns` exactly, for any
batching of the input (the property suite asserts this, including
timeout-boundary and interleaved-client cases).

Eviction
--------
A session whose latest end ``m`` satisfies ``horizon - m > T_o`` can
never be continued: every future transfer starts at ``s >= horizon``,
and IEEE subtraction is monotone, so ``s - m >= horizon - m > T_o`` —
the gap test fails for every future transfer.  Passing the generation
stream's per-batch horizon thus bounds the open-session table by the
number of sessions genuinely open around the time frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from .._typing import FloatArray, IntArray
from ..arrayops import _scan_running_max
from ..errors import AnalysisError
from ..trace.records import SessionRecord
from ..units import DEFAULT_SESSION_TIMEOUT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .generate import TransferBatch


@dataclass(frozen=True)
class FinalizedSessions:
    """A columnar batch of finalized sessions.

    Attributes
    ----------
    client_index:
        Per-session client index.
    start:
        Per-session start time (its first transfer's start).
    end:
        Per-session end time (latest transfer end).
    n_transfers:
        Per-session transfer count.
    transfer_indices:
        Per-session tuples of global trace indices, only when the
        sessionizer tracks them (see ``track_transfer_indices``).
    """

    client_index: IntArray = field(repr=False)
    start: FloatArray = field(repr=False)
    end: FloatArray = field(repr=False)
    n_transfers: IntArray = field(repr=False)
    transfer_indices: tuple[tuple[int, ...], ...] | None = None

    @property
    def n_sessions(self) -> int:
        """Number of sessions in the batch."""
        return int(self.start.size)

    def iter_records(self) -> Iterator[SessionRecord]:
        """Materialize the sessions as :class:`SessionRecord` rows.

        Requires transfer-index tracking to have been enabled.
        """
        if self.transfer_indices is None:
            raise AnalysisError(
                "transfer indices were not tracked; construct the "
                "sessionizer with track_transfer_indices=True")
        for k in range(self.n_sessions):
            yield SessionRecord(
                client_index=int(self.client_index[k]),
                start=float(self.start[k]),
                end=float(self.end[k]),
                transfer_indices=self.transfer_indices[k],
            )


def _empty_finalized(tracked: bool) -> FinalizedSessions:
    return FinalizedSessions(
        client_index=np.empty(0, dtype=np.int64),
        start=np.empty(0, dtype=np.float64),
        end=np.empty(0, dtype=np.float64),
        n_transfers=np.empty(0, dtype=np.int64),
        transfer_indices=() if tracked else None,
    )


def merge_finalized(parts: Sequence[FinalizedSessions]) -> FinalizedSessions:
    """Concatenate finalized-session batches into ``(client, start)`` order.

    The result is directly comparable to the batch sessionizer's
    :meth:`~repro.core.sessionizer.Sessions.session_columns`: same
    canonical session numbering.  (A client's sessions have strictly
    increasing starts — consecutive sessions are separated by a positive
    gap — so the order is total and the sort permutation unique.)
    """
    if not parts:
        # No parts carries no tracking evidence; match the untracked
        # convention (transfer_indices=None) like merge_parts does.
        return _empty_finalized(False)
    tracked = all(part.transfer_indices is not None for part in parts)
    client = np.concatenate([part.client_index for part in parts])
    start = np.concatenate([part.start for part in parts])
    end = np.concatenate([part.end for part in parts])
    count = np.concatenate([part.n_transfers for part in parts])
    order = np.lexsort((start, client))
    indices: tuple[tuple[int, ...], ...] | None = None
    if tracked:
        flat = [idx for part in parts
                for idx in (part.transfer_indices or ())]
        indices = tuple(flat[k] for k in order.tolist())
    return FinalizedSessions(client_index=client[order], start=start[order],
                             end=end[order], n_transfers=count[order],
                             transfer_indices=indices)


class OnlineSessionizer:
    """Incremental sessionizer over start-ordered transfer batches.

    Feed batches with :meth:`push` (optionally straight from
    :class:`~repro.stream.generate.TransferBatch` chunks via
    :meth:`push_batch`); call :meth:`finish` once the stream ends.  Every
    call returns the sessions it finalized.

    Parameters
    ----------
    n_clients:
        Size of the client index space.
    timeout:
        The silence threshold ``T_o`` in seconds (paper: 1,500).
    track_transfer_indices:
        Keep each open session's global transfer indices so finalized
        sessions can be materialized as
        :class:`~repro.trace.records.SessionRecord` rows.  Costs a Python
        list per open session; leave off for paper-scale runs.
    """

    def __init__(self, n_clients: int, *,
                 timeout: float = DEFAULT_SESSION_TIMEOUT,
                 track_transfer_indices: bool = False) -> None:
        if n_clients < 1:
            raise AnalysisError(
                f"n_clients must be positive, got {n_clients}")
        if timeout <= 0:
            raise AnalysisError(f"timeout must be positive, got {timeout}")
        self.n_clients = int(n_clients)
        self.timeout = float(timeout)
        self.track_transfer_indices = bool(track_transfer_indices)
        self._open = np.zeros(self.n_clients, dtype=bool)
        self._session_start = np.zeros(self.n_clients, dtype=np.float64)
        self._run_max = np.full(self.n_clients, -np.inf, dtype=np.float64)
        self._count = np.zeros(self.n_clients, dtype=np.int64)
        self._indices: dict[int, list[int]] = {}
        self._last_start = -np.inf
        self.n_transfers = 0
        self.n_finalized = 0
        self.peak_open = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_open(self) -> int:
        """Number of currently open sessions."""
        return int(np.count_nonzero(self._open))

    def grow(self, n_clients: int) -> None:
        """Widen the client index space to ``n_clients`` slots.

        Growth appends fresh closed slots only — existing open-session
        state (and therefore every finalized session) is unchanged.
        Live ingest uses this when a feed declares clients beyond the
        current capacity.

        Raises
        ------
        AnalysisError
            If ``n_clients`` would shrink the table.
        """
        n_clients = int(n_clients)
        if n_clients < self.n_clients:
            raise AnalysisError(
                f"cannot shrink the client space from {self.n_clients} "
                f"to {n_clients}")
        if n_clients == self.n_clients:
            return
        extra = n_clients - self.n_clients
        self._open = np.concatenate(
            [self._open, np.zeros(extra, dtype=bool)])
        self._session_start = np.concatenate(
            [self._session_start, np.zeros(extra, dtype=np.float64)])
        self._run_max = np.concatenate(
            [self._run_max, np.full(extra, -np.inf, dtype=np.float64)])
        self._count = np.concatenate(
            [self._count, np.zeros(extra, dtype=np.int64)])
        self.n_clients = n_clients

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push_batch(self, batch: "TransferBatch", *,
                   evict: bool = True) -> FinalizedSessions:
        """Consume one :class:`~repro.stream.generate.TransferBatch`.

        Uses the batch's global offset for index tracking and, with
        ``evict``, its horizon to retire provably closed sessions.
        """
        return self.push(batch.client_index, batch.start, batch.duration,
                         horizon=batch.horizon if evict else None,
                         global_offset=batch.global_offset)

    def push(self, client_index: IntArray, start: FloatArray,
             duration: FloatArray, *, horizon: float | None = None,
             global_offset: int | None = None) -> FinalizedSessions:
        """Consume one start-ordered batch; returns sessions finalized now.

        Parameters
        ----------
        client_index, start, duration:
            The batch's transfer columns.  ``start`` must be
            non-decreasing within the batch and across batches (the
            global trace order).
        horizon:
            Optional promise that all future transfers start at or after
            this value; open sessions it provably closes are finalized
            and returned (their content is unaffected — eviction only
            moves *when* a session is emitted).
        global_offset:
            Trace position of the batch's first transfer; required when
            transfer indices are tracked.

        Raises
        ------
        AnalysisError
            If the batch violates the ordering contract or indexes
            clients out of range.
        """
        client = np.asarray(client_index, dtype=np.int64)
        start = np.asarray(start, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        n = start.size
        if client.size != n or duration.size != n:
            raise AnalysisError("batch columns must have equal lengths")
        if n == 0:
            if horizon is None:
                return _empty_finalized(self.track_transfer_indices)
            result = self._evict(horizon)
            self.n_finalized += result.n_sessions
            return result
        if np.any(np.diff(start) < 0):
            raise AnalysisError("batch starts must be non-decreasing")
        if start[0] < self._last_start:
            raise AnalysisError(
                "batches must arrive in global start order "
                f"(got start {start[0]!r} after {self._last_start!r})")
        if client.min() < 0 or client.max() >= self.n_clients:
            raise AnalysisError("client_index out of range")
        if self.track_transfer_indices and global_offset is None:
            raise AnalysisError(
                "global_offset is required when tracking transfer indices")
        self._last_start = float(start[-1])
        self.n_transfers += n

        # Group the batch by client exactly like the batch sessionizer:
        # a stable argsort on the (narrowed) client column realizes
        # (client, start) order because the batch is start-sorted.
        key: NDArray[Any] = client
        if self.n_clients <= 1 << 8:
            key = client.astype(np.uint8)
        elif self.n_clients <= 1 << 16:
            key = client.astype(np.uint16)
        order = np.argsort(key, kind="stable")
        c = client[order]
        s = start[order]
        e = duration[order]
        e += s

        firsts = np.concatenate(
            ([0], np.flatnonzero(c[1:] != c[:-1]) + 1)).astype(np.int64)
        seg_end = np.concatenate((firsts[1:], [n])).astype(np.int64)
        seg_client = c[firsts]

        # Within-batch per-client running max, then fold in the carried
        # running max: max over the same set of floats in any grouping is
        # the identical float, so true_run matches the batch scan.
        run = _scan_running_max(e, firsts, overwrite=True)
        carried_open = self._open[seg_client]
        carried_run = np.where(carried_open, self._run_max[seg_client],
                               -np.inf)
        true_run = np.maximum(
            run, np.repeat(carried_run, seg_end - firsts))

        gaps = np.empty(n, dtype=np.float64)
        gaps[0] = np.inf
        np.subtract(s[1:], true_run[:-1], out=gaps[1:])
        # First transfer of each client in the batch: gap against the
        # carried running max (+inf when no session is open).
        gaps[firsts] = s[firsts] - carried_run
        boundary = gaps > self.timeout
        bpos = np.flatnonzero(boundary)

        # Which segments contain a boundary, and where their first one is.
        first_b = np.searchsorted(bpos, firsts, side="left")
        has_b = np.zeros(firsts.size, dtype=bool)
        in_range = first_b < bpos.size
        has_b[in_range] = (bpos[first_b[in_range]]
                           < seg_end[in_range])

        parts: list[FinalizedSessions] = []
        tracked = self.track_transfer_indices
        gidx = order + global_offset if global_offset is not None else None

        # (a) Carried sessions closed by this batch's first boundary.
        carried_close = carried_open & has_b
        if np.any(carried_close):
            f = firsts[carried_close]
            p = bpos[first_b[carried_close]]
            cl = seg_client[carried_close]
            prev = true_run[np.maximum(p - 1, 0)]
            end_val = np.where(p > f, prev, self._run_max[cl])
            indices: tuple[tuple[int, ...], ...] | None = None
            if tracked:
                assert gidx is not None
                indices = tuple(
                    tuple(self._indices.pop(int(cl_k))
                          + gidx[f_k:p_k].tolist())
                    for cl_k, f_k, p_k in zip(cl.tolist(), f.tolist(),
                                              p.tolist(), strict=True))
            parts.append(FinalizedSessions(
                client_index=cl.copy(),
                start=self._session_start[cl].copy(),
                end=end_val,
                n_transfers=self._count[cl] + (p - f),
                transfer_indices=indices,
            ))

        # (b) Sessions fully inside the batch: a boundary followed by
        # another boundary of the same client segment.
        if bpos.size:
            seg_of_b = np.searchsorted(firsts, bpos, side="right") - 1
            closes = np.zeros(bpos.size, dtype=bool)
            closes[:-1] = seg_of_b[1:] == seg_of_b[:-1]
            j = np.flatnonzero(closes)
            if j.size:
                p0 = bpos[j]
                p1 = bpos[j + 1]
                inner: tuple[tuple[int, ...], ...] | None = None
                if tracked:
                    assert gidx is not None
                    inner = tuple(
                        tuple(gidx[lo:hi].tolist())
                        for lo, hi in zip(p0.tolist(), p1.tolist(),
                                          strict=True))
                parts.append(FinalizedSessions(
                    client_index=c[p0],
                    start=s[p0],
                    end=true_run[p1 - 1],
                    n_transfers=(p1 - p0).astype(np.int64),
                    transfer_indices=inner,
                ))

        # (c) Update the open-session table.
        # Segments whose last boundary opens a fresh session...
        opened = np.flatnonzero(has_b)
        if opened.size:
            last_b = np.searchsorted(bpos, seg_end[opened],
                                     side="left") - 1
            p_star = bpos[last_b]
            cl = seg_client[opened]
            self._open[cl] = True
            self._session_start[cl] = s[p_star]
            self._count[cl] = seg_end[opened] - p_star
            if tracked:
                assert gidx is not None
                for cl_k, lo, hi in zip(cl.tolist(), p_star.tolist(),
                                        seg_end[opened].tolist(),
                                        strict=True):
                    self._indices[cl_k] = gidx[lo:hi].tolist()
        # ...and segments that only extend their carried session.
        extended = np.flatnonzero(carried_open & ~has_b)
        if extended.size:
            cl = seg_client[extended]
            self._count[cl] += seg_end[extended] - firsts[extended]
            if tracked:
                assert gidx is not None
                for cl_k, lo, hi in zip(cl.tolist(),
                                        firsts[extended].tolist(),
                                        seg_end[extended].tolist(),
                                        strict=True):
                    self._indices[cl_k].extend(gidx[lo:hi].tolist())
        # Every touched segment's running max advances to the batch's.
        self._run_max[seg_client] = true_run[seg_end - 1]

        self.peak_open = max(self.peak_open, self.n_open)
        if horizon is not None:
            parts.append(self._evict(horizon))
        result = merge_parts(
            parts or [_empty_finalized(tracked)])
        self.n_finalized += result.n_sessions
        return result

    def _evict(self, horizon: float) -> FinalizedSessions:
        """Finalize open sessions no future transfer can continue."""
        evict = self._open & ((horizon - self._run_max) > self.timeout)
        idx = np.flatnonzero(evict)
        if idx.size == 0:
            return _empty_finalized(self.track_transfer_indices)
        self._open[idx] = False
        indices: tuple[tuple[int, ...], ...] | None = None
        if self.track_transfer_indices:
            indices = tuple(tuple(self._indices.pop(int(cl)))
                            for cl in idx.tolist())
        return FinalizedSessions(
            client_index=idx.astype(np.int64),
            start=self._session_start[idx].copy(),
            end=self._run_max[idx].copy(),
            n_transfers=self._count[idx].copy(),
            transfer_indices=indices,
        )

    def finish(self) -> FinalizedSessions:
        """Finalize every still-open session (the stream has ended)."""
        result = self._evict(np.inf)
        self.n_finalized += result.n_sessions
        return result

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_meta(self) -> dict[str, Any]:
        """Scalar state (counters and the ordering cursor)."""
        if self.track_transfer_indices:
            from ..errors import CheckpointError

            raise CheckpointError(
                "checkpointing is not supported with transfer-index "
                "tracking enabled")
        return {
            "n_clients": self.n_clients,
            "timeout": self.timeout,
            "last_start": self._last_start,
            "n_transfers": self.n_transfers,
            "n_finalized": self.n_finalized,
            "peak_open": self.peak_open,
        }

    def state_arrays(self) -> dict[str, NDArray[Any]]:
        """The open-session table as named arrays."""
        return {
            "sess_open": self._open.copy(),
            "sess_start": self._session_start.copy(),
            "sess_run_max": self._run_max.copy(),
            "sess_count": self._count.copy(),
        }

    def restore(self, meta: Mapping[str, Any],
                arrays: Mapping[str, NDArray[Any]]) -> None:
        """Restore state captured by the two ``state_*`` methods.

        Raises
        ------
        CheckpointError
            If the checkpointed table does not fit this sessionizer.
        """
        from ..errors import CheckpointError

        if int(meta["n_clients"]) != self.n_clients:
            raise CheckpointError(
                f"checkpoint has {meta['n_clients']} clients, "
                f"sessionizer has {self.n_clients}")
        if float(meta["timeout"]) != self.timeout:  # reprolint: disable=RL007, checkpoint identity requires exact equality
            raise CheckpointError(
                f"checkpoint timeout {meta['timeout']} != {self.timeout}")
        try:
            open_ = np.asarray(arrays["sess_open"], dtype=bool)
            session_start = np.asarray(arrays["sess_start"],
                                       dtype=np.float64)
            run_max = np.asarray(arrays["sess_run_max"], dtype=np.float64)
            count = np.asarray(arrays["sess_count"], dtype=np.int64)
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint is missing sessionizer state: {exc}") from exc
        if open_.size != self.n_clients:
            raise CheckpointError(
                f"checkpoint table has {open_.size} clients, "
                f"expected {self.n_clients}")
        self._open = open_
        self._session_start = session_start
        self._run_max = run_max
        self._count = count
        self._last_start = float(meta["last_start"])
        self.n_transfers = int(meta["n_transfers"])
        self.n_finalized = int(meta["n_finalized"])
        self.peak_open = int(meta["peak_open"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OnlineSessionizer(n_open={self.n_open}, "
                f"n_finalized={self.n_finalized}, "
                f"timeout={self.timeout:.0f}s)")


def merge_parts(parts: Sequence[FinalizedSessions]) -> FinalizedSessions:
    """Concatenate finalized batches *without* re-sorting.

    Used for the per-push return value, where emission order (carried
    closures, internal sessions, evictions) is deterministic but not the
    canonical session order; use :func:`merge_finalized` to obtain the
    canonical ``(client, start)`` numbering.
    """
    if not parts:
        return _empty_finalized(False)
    if len(parts) == 1:
        return parts[0]
    tracked = all(part.transfer_indices is not None for part in parts)
    indices: tuple[tuple[int, ...], ...] | None = None
    if tracked:
        indices = tuple(idx for part in parts
                        for idx in (part.transfer_indices or ()))
    return FinalizedSessions(
        client_index=np.concatenate([p.client_index for p in parts]),
        start=np.concatenate([p.start for p in parts]),
        end=np.concatenate([p.end for p in parts]),
        n_transfers=np.concatenate([p.n_transfers for p in parts]),
        transfer_indices=indices,
    )
