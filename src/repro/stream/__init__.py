"""Bounded-memory streaming pipeline.

Everything the batch pipeline computes — the synthetic trace, the
WMS-style log, the sessionization, the characterization summary — this
subpackage computes in one time-ordered pass with O(open state) memory,
bit-identically, with atomic checkpoint/resume at canonical-block
granularity.  See ``docs/API.md`` ("Streaming at paper scale") for the
memory-bound argument and usage.
"""

from .characterize import characterize_logs_resumable
from .checkpoint import load_checkpoint, require_match, save_checkpoint
from .generate import DEFAULT_CHUNK_SIZE, GenerationStream, TransferBatch
from .pipeline import StreamRunResult, run_streaming_generation
from .sessionize import FinalizedSessions, OnlineSessionizer, merge_finalized

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FinalizedSessions",
    "GenerationStream",
    "OnlineSessionizer",
    "StreamRunResult",
    "TransferBatch",
    "characterize_logs_resumable",
    "load_checkpoint",
    "merge_finalized",
    "require_match",
    "run_streaming_generation",
    "save_checkpoint",
]
