"""Composable workload scenarios over the Table 2 generator.

A scenario is a named, pure, deterministic perturbation of the baseline
live-streaming workload — an arrival surge, a channel-zapping session
mixture, a regional blackout, a bandwidth-class rotation, a
live-vs-VoD duration blend — that composes (``flash-crowd+zapping``)
and flows through every generation engine (batch, sharded, streaming)
bit-identically.  Resolve a spec string with :func:`get_scenario` and
pass the result to :class:`~repro.core.gismo.LiveWorkloadGenerator`,
:func:`~repro.parallel.generate_sharded`, or
:class:`~repro.stream.GenerationStream`; on the CLI, use
``repro generate --scenario ...`` / ``repro plan --scenario ...``.

Every registered scenario carries calibrated envelopes in the conform
golden registry and must satisfy a two-sided sensitivity gate: its
trace trips the statistical gates against the *baseline* envelope and
passes against its *own* — see :mod:`repro.conform.scenarios`.
"""

from __future__ import annotations

from .base import (
    ComposedScenario,
    IdentityScenario,
    Scenario,
    TraceEdit,
    compose,
)
from .perturbations import (
    BimodalShift,
    Blackout,
    BlackoutEdit,
    FlashCrowd,
    LongtailMix,
    Zapping,
)
from .registry import (
    REGISTERED_SCENARIOS,
    SCENARIO_TYPES,
    get_scenario,
    scenario_names,
    scenario_spec_string,
)
from .spec import parse_spec, parse_term, split_composition

__all__ = [
    "REGISTERED_SCENARIOS",
    "SCENARIO_TYPES",
    "BimodalShift",
    "Blackout",
    "BlackoutEdit",
    "ComposedScenario",
    "FlashCrowd",
    "IdentityScenario",
    "LongtailMix",
    "Scenario",
    "TraceEdit",
    "Zapping",
    "compose",
    "get_scenario",
    "parse_spec",
    "parse_term",
    "scenario_names",
    "scenario_spec_string",
    "split_composition",
]
