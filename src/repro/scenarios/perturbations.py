"""The built-in scenario families.

Each scenario here perturbs the Table 2 baseline toward a regime the
related-work papers describe but the single reality-show trace cannot
express (ROADMAP item 1):

* :class:`FlashCrowd` — an unscheduled event: arrival-rate surge with a
  linear ramp, hold, and decay, plus an interest-profile flattening
  (surge audiences are less concentrated on the usual top clients).
* :class:`Zapping` — P2P-television channel surfing (Biernacki &
  Krieger): a sub-population of short-lived, rapidly switching sessions
  blended into the ON/OFF session model.
* :class:`Blackout` — a regional dropout: a deterministic
  pseudo-randomly chosen client fraction contributes nothing during an
  interval (transfers spanning the boundary are truncated at entry).
* :class:`BimodalShift` — a bandwidth-class mix rotation toward a
  broadband-heavy population (KhudaBukhsh et al.'s heterogeneous client
  classes), with broadband stickiness lengthening transfers.
* :class:`LongtailMix` — a live-vs-VoD-like blend: a share of transfers
  follows a heavier, longer on-demand-style duration law.

All parameter perturbations are *moment-matched blends in log space*
where a mixture is being approximated: the perturbed lognormal keeps
the mixture's exact log-mean and log-variance, so the perturbation is a
smooth, invertible function of the mix weight and composes predictably
(and, deliberately, non-commutatively — the second blend sees the
first's output).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .._typing import FloatArray, IntArray
from ..core.model import LiveWorkloadModel
from ..distributions.diurnal import DiurnalProfile
from ..errors import ScenarioError
from ..units import DAY, HOUR, WEEK
from .base import BoolArray, Scenario, TraceEdit

#: Resolution of the rebuilt arrival profile: 15-minute bins over a week.
_SURGE_BINS = 672


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


def _blend_lognormal(mu0: float, sigma0: float, mu1: float, sigma1: float,
                     weight: float) -> tuple[float, float]:
    """Moment-matched lognormal approximation of a two-lognormal mixture.

    Matches the mixture's mean and variance *of the log values* (i.e.
    the underlying normals): the blend keeps the log-domain first two
    moments exact, which is the natural geometry for Table 2's
    log-parameterized laws.  Returns ``(mu, sigma)``.
    """
    mu = (1.0 - weight) * mu0 + weight * mu1
    second = ((1.0 - weight) * (sigma0 * sigma0 + mu0 * mu0)
              + weight * (sigma1 * sigma1 + mu1 * mu1))
    variance = max(second - mu * mu, 1e-12)
    return mu, math.sqrt(variance)


def _uniform_hash(values: IntArray, salt: int) -> FloatArray:
    """Deterministic uniform-[0,1) hash of integer identifiers.

    SplitMix64 finalizer — the same avalanche mix the CDN assignment
    policies use, reimplemented locally so scenarios do not depend on
    :mod:`repro.cdn`.  Seed-independent: the blackout population is a
    fixed pseudo-random property of the client identifier and salt.
    """
    with np.errstate(over="ignore"):
        x = values.astype(np.uint64) + np.uint64(salt) * np.uint64(
            0x9E3779B97F4A7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


@dataclass(frozen=True)
class FlashCrowd(Scenario):
    """Arrival-rate surge: linear ramp up, hold at peak, linear decay.

    The surge multiplies the baseline diurnal profile by a piecewise
    linear envelope (1 → ``peak`` over ``ramp_hours``, held for
    ``hold_hours``, back to 1 over ``decay_hours``) starting at
    ``start_day`` days into the trace.  The profile is rebuilt on a
    fixed 15-minute weekly grid, sampling the base profile at bin
    centers — exact for the paper's own 15-minute-bin profiles.

    ``dilution`` flattens the client interest Zipf (``interest_alpha``
    scaled by ``1 - dilution``): a flash crowd brings an atypical
    audience whose interest is less concentrated, which is also what
    makes the scenario statistically distinguishable (the arrival
    surge alone moves only counts, which the statistical gate families
    deliberately ignore).
    """

    slug = "flash-crowd"

    peak: float = 4.0
    start_day: float = 2.0
    ramp_hours: float = 2.0
    hold_hours: float = 1.0
    decay_hours: float = 6.0
    dilution: float = 0.35

    def __post_init__(self) -> None:
        _require(self.peak >= 1.0,
                 f"flash-crowd peak must be >= 1, got {self.peak}")
        _require(self.start_day >= 0.0,
                 f"flash-crowd start_day must be >= 0, got {self.start_day}")
        _require(self.ramp_hours > 0.0 and self.decay_hours > 0.0,
                 "flash-crowd ramp_hours and decay_hours must be positive, "
                 f"got {self.ramp_hours} and {self.decay_hours}")
        _require(self.hold_hours >= 0.0,
                 f"flash-crowd hold_hours must be >= 0, got {self.hold_hours}")
        _require(0.0 <= self.dilution < 1.0,
                 f"flash-crowd dilution must be in [0, 1), "
                 f"got {self.dilution}")

    def _surge_factor(self, t: FloatArray) -> FloatArray:
        """The surge envelope evaluated at absolute times ``t``."""
        t0 = self.start_day * DAY
        ramp = self.ramp_hours * HOUR
        hold = self.hold_hours * HOUR
        decay = self.decay_hours * HOUR
        up = np.clip((t - t0) / ramp, 0.0, 1.0)
        down = np.clip((t - (t0 + ramp + hold)) / decay, 0.0, 1.0)
        return 1.0 + (self.peak - 1.0) * (up - down)

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        base = model.arrival_profile
        centers = (np.arange(_SURGE_BINS, dtype=np.float64) + 0.5) * (
            WEEK / _SURGE_BINS)
        rates = base.rate(centers) * self._surge_factor(centers)
        profile = DiurnalProfile(rates, period=WEEK)
        return replace(
            model,
            arrival_profile=profile,
            interest_alpha=model.interest_alpha * (1.0 - self.dilution))


@dataclass(frozen=True)
class Zapping(Scenario):
    """Channel-surfing mixture: short, rapidly switching sessions.

    A fraction ``mix`` of session activity behaves like P2P-TV zapping:
    very short transfers (``zap_length_*``), very short gaps
    (``zap_gap_*``), and near-certain feed switching on return
    (``switch_prob``).  The gap/length laws become moment-matched
    log-space blends of the baseline and zapping components, the feed
    switch probability interpolates toward ``switch_prob``, and the
    arrival rate scales by ``1 + mix`` (surfers initiate more
    sessions).  Because the blend reads the *current* model parameters,
    composing ``zapping`` after another duration-shaping scenario gives
    a different (still deterministic) workload than the reverse order.
    """

    slug = "zapping"

    mix: float = 0.35
    zap_gap_log_mu: float = 2.0
    zap_gap_log_sigma: float = 0.8
    zap_length_log_mu: float = 2.3
    zap_length_log_sigma: float = 0.9
    switch_prob: float = 0.85

    def __post_init__(self) -> None:
        _require(0.0 <= self.mix < 1.0,
                 f"zapping mix must be in [0, 1), got {self.mix}")
        _require(self.zap_gap_log_sigma > 0.0
                 and self.zap_length_log_sigma > 0.0,
                 "zapping log-sigmas must be positive, got "
                 f"{self.zap_gap_log_sigma} and {self.zap_length_log_sigma}")
        _require(0.0 <= self.switch_prob <= 1.0,
                 f"zapping switch_prob must be in [0, 1], "
                 f"got {self.switch_prob}")

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        gap_mu, gap_sigma = _blend_lognormal(
            model.gap_log_mu, model.gap_log_sigma,
            self.zap_gap_log_mu, self.zap_gap_log_sigma, self.mix)
        length_mu, length_sigma = _blend_lognormal(
            model.length_log_mu, model.length_log_sigma,
            self.zap_length_log_mu, self.zap_length_log_sigma, self.mix)
        switch = ((1.0 - self.mix) * model.feed_switch_prob
                  + self.mix * self.switch_prob)
        profile = model.arrival_profile.scaled_to_mean(
            model.arrival_profile.mean_rate() * (1.0 + self.mix))
        return replace(
            model,
            arrival_profile=profile,
            gap_log_mu=gap_mu, gap_log_sigma=gap_sigma,
            length_log_mu=length_mu, length_log_sigma=length_sigma,
            feed_switch_prob=switch)


@dataclass(frozen=True)
class BlackoutEdit(TraceEdit):
    """Suppress a client subset's activity inside ``[t0, t1)``.

    Row-local and start-preserving.  Affected clients split into two
    deterministic sub-populations: *leavers* (their transfers starting
    inside the window are dropped — they went away and came back after
    restoration) and *retriers* (their in-window transfers survive but
    are clipped to at most ``stub_seconds`` — aborted reconnect
    attempts that die almost immediately).  Everyone affected has
    in-flight transfers truncated at ``t0``, and transfers starting at
    or after ``t1`` are untouched (the region comes back).  Membership
    is a pure hash of the client index, so the same clients black out
    in every engine and every block grouping.
    """

    fraction: float
    retry_share: float
    stub_seconds: float
    t0: float
    t1: float
    salt: int

    def apply(self, start: FloatArray, duration: FloatArray,
              client_index: IntArray) -> tuple[BoolArray, FloatArray]:
        affected = _uniform_hash(client_index, self.salt) < self.fraction
        retrier = affected & (
            _uniform_hash(client_index, self.salt + 1) < self.retry_share)
        in_window = (start >= self.t0) & (start < self.t1)
        keep = ~(affected & ~retrier & in_window)
        end = start + duration
        truncate = affected & (start < self.t0) & (end > self.t0)
        new_duration = np.where(truncate, self.t0 - start, duration)
        new_duration = np.where(retrier & in_window,
                                np.minimum(new_duration, self.stub_seconds),
                                new_duration)
        return keep, new_duration.astype(np.float64)


@dataclass(frozen=True)
class Blackout(Scenario):
    """Regional dropout: a client fraction goes dark for an interval.

    ``fraction`` of clients (chosen by a deterministic hash with
    ``salt``) lose the stream from ``start_day`` days into the trace
    for ``duration_hours``; their in-flight transfers truncate at the
    boundary.  ``retry_share`` of the affected clients keep retrying
    through the outage, leaving transfers clipped to ``stub_seconds``
    — the short aborted connections a real delivery failure strews
    across a log.  The retry stubs are what make the outage visible to
    the duration-law gates: unbiased row *drops* alone leave every
    fitted marginal untouched.
    """

    slug = "blackout"

    fraction: float = 0.4
    start_day: float = 1.5
    duration_hours: float = 12.0
    retry_share: float = 0.5
    stub_seconds: float = 20.0
    salt: int = 11

    def __post_init__(self) -> None:
        _require(0.0 <= self.fraction <= 1.0,
                 f"blackout fraction must be in [0, 1], got {self.fraction}")
        _require(self.start_day >= 0.0,
                 f"blackout start_day must be >= 0, got {self.start_day}")
        _require(self.duration_hours > 0.0,
                 f"blackout duration_hours must be positive, "
                 f"got {self.duration_hours}")
        _require(0.0 <= self.retry_share <= 1.0,
                 f"blackout retry_share must be in [0, 1], "
                 f"got {self.retry_share}")
        _require(self.stub_seconds > 0.0,
                 f"blackout stub_seconds must be positive, "
                 f"got {self.stub_seconds}")
        _require(self.salt >= 0,
                 f"blackout salt must be >= 0, got {self.salt}")

    def trace_edits(self, model: LiveWorkloadModel,
                    duration: float) -> tuple[TraceEdit, ...]:
        t0 = self.start_day * DAY
        t1 = t0 + self.duration_hours * HOUR
        return (BlackoutEdit(fraction=self.fraction,
                             retry_share=self.retry_share,
                             stub_seconds=self.stub_seconds,
                             t0=t0, t1=t1, salt=self.salt),)


#: Bandwidth classes for the bimodal shift, in bytes/second: a
#: narrowband (modem/ISDN-like, 28.8–56 kbit/s) and a broadband
#: (250–350 kbit/s stream-rate-limited) population, expressed at the
#: byte level the trace records.
_NARROWBAND_LO = 28_800.0 / 8.0
_NARROWBAND_HI = 56_000.0 / 8.0
_BROADBAND_LO = 250_000.0 / 8.0
_BROADBAND_HI = 350_000.0 / 8.0

#: Quantile grid matching the model's serialized bandwidth resolution.
_N_QUANTILES = 512


@dataclass(frozen=True)
class BimodalShift(Scenario):
    """Rotate the client population toward a broadband-heavy mix.

    Installs a two-class bandwidth distribution (``broadband_share`` of
    probability mass uniform on the broadband band, the rest on the
    narrowband band), stored as the model's 512-point quantile curve —
    pure arithmetic, no special functions.  Broadband clients also stay
    longer: ``length_log_mu`` shifts by ``stickiness_gain *
    (broadband_share - 0.5)``, and the feed preference rotates one step
    (the broadband audience skews to the secondary feed), which keeps
    the scenario visible to the duration-law gates even though raw
    bandwidth is not itself a gated statistic.
    """

    slug = "bimodal-shift"

    broadband_share: float = 0.85
    stickiness_gain: float = 0.9

    def __post_init__(self) -> None:
        _require(0.0 <= self.broadband_share <= 1.0,
                 f"bimodal-shift broadband_share must be in [0, 1], "
                 f"got {self.broadband_share}")
        _require(self.stickiness_gain >= 0.0,
                 f"bimodal-shift stickiness_gain must be >= 0, "
                 f"got {self.stickiness_gain}")

    def _quantiles(self) -> tuple[float, ...]:
        probs = (np.arange(_N_QUANTILES, dtype=np.float64) + 0.5
                 ) / _N_QUANTILES
        narrow_mass = 1.0 - self.broadband_share
        values = np.empty(_N_QUANTILES, dtype=np.float64)
        if narrow_mass > 0.0:
            low = probs < narrow_mass
            values[low] = _NARROWBAND_LO + (probs[low] / narrow_mass) * (
                _NARROWBAND_HI - _NARROWBAND_LO)
        else:
            low = np.zeros(_N_QUANTILES, dtype=np.bool_)
        if self.broadband_share > 0.0:
            u = (probs[~low] - narrow_mass) / self.broadband_share
            values[~low] = _BROADBAND_LO + u * (_BROADBAND_HI - _BROADBAND_LO)
        return tuple(float(v) for v in values)

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        preference = model.feed_preference[1:] + model.feed_preference[:1]
        shift = self.stickiness_gain * (self.broadband_share - 0.5)
        return replace(
            model,
            bandwidth_quantiles=self._quantiles(),
            feed_preference=preference,
            length_log_mu=model.length_log_mu + shift)


@dataclass(frozen=True)
class LongtailMix(Scenario):
    """Blend a VoD-like long-tail component into the duration law.

    A ``vod_share`` fraction of transfers behaves like on-demand
    playback of archived content: much longer, moderately dispersed
    lognormal durations (``vod_log_mu``/``vod_log_sigma``).  The
    transfer-length law becomes the moment-matched log-space blend —
    the "long-tail mix" regime where a live system also serves
    time-shifted viewing.  Like :class:`Zapping`, the blend reads the
    current parameters, so composition order matters and is pinned by
    the spec string.
    """

    slug = "longtail-mix"

    vod_share: float = 0.3
    vod_log_mu: float = 6.55
    vod_log_sigma: float = 1.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.vod_share < 1.0,
                 f"longtail-mix vod_share must be in [0, 1), "
                 f"got {self.vod_share}")
        _require(self.vod_log_sigma > 0.0,
                 f"longtail-mix vod_log_sigma must be positive, "
                 f"got {self.vod_log_sigma}")

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        length_mu, length_sigma = _blend_lognormal(
            model.length_log_mu, model.length_log_sigma,
            self.vod_log_mu, self.vod_log_sigma, self.vod_share)
        return replace(
            model, length_log_mu=length_mu, length_log_sigma=length_sigma)
