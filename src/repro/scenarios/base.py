"""Scenario algebra: composable, deterministic workload perturbations.

A :class:`Scenario` is a *pure transform* of a generation request.  It
may act at two points of the engine, and only those two:

* **Model perturbation** (:meth:`Scenario.perturb_model`) — rewrite the
  Table 2 :class:`~repro.core.model.LiveWorkloadModel` before planning
  (arrival profile surges, session-behaviour blends, bandwidth-class
  rotations).  Applied once, in the planner, so every execution mode
  (batch, sharded, streaming) generates from the identical perturbed
  model.
* **Trace edits** (:meth:`Scenario.trace_edits`) — a tuple of
  :class:`TraceEdit` objects applied to every canonical block's
  transfers inside :func:`repro.parallel.engine.generate_shard`.  Edits
  are *row-local* and *start-preserving*: they may drop rows and shrink
  durations, but never change a kept row's start time, reorder rows, or
  look at rows outside the block.  Those constraints make the edited
  trace invariant to how blocks are grouped into shards or chunks —
  which is what keeps scenario generation bit-identical across engines
  *by construction* rather than by testing luck.

Scenarios compose left-to-right (``a + b`` perturbs with ``a`` first,
then ``b``, and concatenates their trace edits in that order).
Composition is **order-sensitive** by design: a scenario that blends the
current model parameters (e.g. a lognormal moment-match) sees whatever
the scenarios to its left already installed.  Both orders are valid,
distinct, deterministic workloads; the canonical spec string
(:meth:`Scenario.spec_string`) records the order, and the streaming
checkpoint fingerprint pins it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import ClassVar

import numpy as np
import numpy.typing as npt

from .._typing import FloatArray, IntArray
from ..core.model import LiveWorkloadModel
from ..errors import ScenarioError

#: Boolean keep-mask type returned by trace edits.
BoolArray = npt.NDArray[np.bool_]


def format_param(value: float | int) -> str:
    """Canonical text form of a scenario parameter value.

    Floats render via ``repr`` (shortest round-tripping form), so
    ``parse(render(s))`` reproduces the exact parameter bits and the
    canonical spec string is stable enough to live in checkpoint
    fingerprints and the golden registry.
    """
    if isinstance(value, bool):  # pragma: no cover - no bool params yet
        raise ScenarioError("scenario parameters must be numbers")
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class TraceEdit(ABC):
    """A pure, row-local edit of generated transfers.

    Implementations are frozen dataclasses (picklable — they travel to
    worker processes inside shard specs).  The contract, enforced by the
    engine's tests: :meth:`apply` may **drop rows** and **shrink
    durations** only.  Start times of kept rows are immutable and row
    order is preserved, so applying the edit per canonical block is
    exactly equivalent to applying it to the merged trace.
    """

    @abstractmethod
    def apply(self, start: FloatArray, duration: FloatArray,
              client_index: IntArray) -> tuple[BoolArray, FloatArray]:
        """Edit one block's (window-clipped) transfers.

        Parameters
        ----------
        start, duration:
            Per-transfer start times and lengths (global trace time).
        client_index:
            Per-transfer owning-client index.

        Returns
        -------
        tuple
            ``(keep, new_duration)`` — a boolean mask over the input
            rows and the edited duration column (same length as the
            input; masked out afterwards).  ``new_duration`` must be
            elementwise ``<=`` the input durations and non-negative.
        """


class Scenario(ABC):
    """One named, composable workload perturbation.

    Concrete scenarios are frozen dataclasses whose fields are the
    scenario's numeric parameters; :attr:`slug` is the registry name the
    spec grammar resolves (``flash-crowd``, ``zapping``, ...).
    """

    #: Registry name of the scenario family (overridden per subclass).
    slug: ClassVar[str] = ""

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        """Return the perturbed generation model (default: unchanged)."""
        return model

    def trace_edits(self, model: LiveWorkloadModel,
                    duration: float) -> tuple[TraceEdit, ...]:
        """Edits to apply to the generated transfers (default: none).

        Parameters
        ----------
        model:
            The (already perturbed) generation model.
        duration:
            Observation-window length in seconds, so edits can resolve
            day-relative parameters to absolute trace time.
        """
        return ()

    def spec_string(self) -> str:
        """Canonical spec text: ``slug(key=value,...)`` in field order.

        Parsing the result reproduces this scenario exactly
        (see :func:`repro.scenarios.get_scenario`), and re-rendering the
        parse yields the identical string — the property the checkpoint
        fingerprint and golden registry rely on.
        """
        params = ",".join(
            f"{f.name}={format_param(getattr(self, f.name))}"
            for f in fields(self))  # type: ignore[arg-type]
        return f"{self.slug}({params})" if params else self.slug

    def atoms(self) -> tuple["Scenario", ...]:
        """The flat sequence of non-composite scenarios, in order."""
        return (self,)

    def __add__(self, other: "Scenario") -> "Scenario":
        return compose(self, other)

    def __str__(self) -> str:
        return self.spec_string()


@dataclass(frozen=True)
class IdentityScenario(Scenario):
    """The no-op scenario: perturbs nothing, edits nothing.

    It exists as the algebra's unit (useful in property tests) and as
    the *deliberately inert* perturbation the conform sensitivity
    self-check injects: a scenario the characterization pipeline cannot
    distinguish from baseline must fail the sensitivity gate, and
    ``identity`` is the canonical such scenario.  It is parseable by
    name but excluded from the registered (gated) scenario set.
    """

    slug: ClassVar[str] = "identity"


class ComposedScenario(Scenario):
    """Left-to-right composition of two or more scenarios.

    Built via :func:`compose` (or ``a + b``); never nested — composing
    compositions flattens into one part tuple.
    """

    slug: ClassVar[str] = "+"

    def __init__(self, parts: tuple[Scenario, ...]) -> None:
        if len(parts) < 2:
            raise ScenarioError(
                f"a composition needs at least two scenarios, "
                f"got {len(parts)}")
        self._parts = parts

    @property
    def parts(self) -> tuple[Scenario, ...]:
        """The composed scenarios, in application order."""
        return self._parts

    def atoms(self) -> tuple[Scenario, ...]:
        return self._parts

    def perturb_model(self, model: LiveWorkloadModel) -> LiveWorkloadModel:
        for part in self._parts:
            model = part.perturb_model(model)
        return model

    def trace_edits(self, model: LiveWorkloadModel,
                    duration: float) -> tuple[TraceEdit, ...]:
        edits: list[TraceEdit] = []
        for part in self._parts:
            edits.extend(part.trace_edits(model, duration))
        return tuple(edits)

    def spec_string(self) -> str:
        return "+".join(part.spec_string() for part in self._parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComposedScenario({self.spec_string()!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ComposedScenario)
                and self._parts == other._parts)

    def __hash__(self) -> int:
        # In-process hashability only (dict/set membership); scenario
        # identity on disk is the canonical spec string, never this.
        return hash(("ComposedScenario", self._parts))  # reprolint: disable=RL011, in-process only


def compose(*scenarios: Scenario) -> Scenario:
    """Compose scenarios left to right, flattening nested compositions.

    ``compose(a)`` is ``a`` itself; ``compose()`` raises.  Application
    order matters (see the module docstring) and is preserved exactly.
    """
    flat: list[Scenario] = []
    for scenario in scenarios:
        flat.extend(scenario.atoms())
    if not flat:
        raise ScenarioError("compose() needs at least one scenario")
    if len(flat) == 1:
        return flat[0]
    return ComposedScenario(tuple(flat))
