"""Scenario spec grammar: parse ``name(k=v,...)+name(...)`` strings.

The grammar is deliberately tiny::

    spec        := scenario ("+" scenario)*
    scenario    := NAME | NAME "(" params? ")"
    params      := param ("," param)*
    param       := KEY "=" NUMBER

``NAME`` and ``KEY`` are ``[a-z0-9-]+`` / ``[a-z_][a-z0-9_]*``;
``NUMBER`` is anything :func:`float` accepts (integers stay integers for
int-typed parameters).  Whitespace is allowed around every token.  The
``+`` separator is only recognized at parenthesis depth zero, so future
parameter syntax inside ``(...)`` can never be mis-split.

Every failure raises :class:`~repro.errors.ScenarioError` with a message
that names the offending fragment and, for unknown names/keys, lists the
valid choices — these surface verbatim on the CLI (exit 2).
"""

from __future__ import annotations

import re
from dataclasses import fields
from typing import TYPE_CHECKING

from ..errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .base import Scenario

_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")
_KEY_RE = re.compile(r"^[a-z_][a-z0-9_]*$")


def split_composition(spec: str) -> list[str]:
    """Split a spec string on ``+`` at parenthesis depth zero.

    ``"flash-crowd(peak=3)+zapping"`` → ``["flash-crowd(peak=3)",
    "zapping"]``.  Raises :class:`ScenarioError` on unbalanced
    parentheses or empty terms (``"a++b"``, ``"+a"``, ``"a+"``).
    """
    text = spec.strip()
    if not text:
        raise ScenarioError(
            "empty scenario spec; expected 'name' or 'name(key=value,...)', "
            "optionally joined with '+'")
    parts: list[str] = []
    depth = 0
    term_start = 0
    for pos, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ScenarioError(
                    f"unbalanced ')' at position {pos} in scenario spec "
                    f"{text!r}")
        elif char == "+" and depth == 0:
            parts.append(text[term_start:pos])
            term_start = pos + 1
    if depth != 0:
        raise ScenarioError(
            f"unbalanced '(' in scenario spec {text!r}")
    parts.append(text[term_start:])
    terms = [part.strip() for part in parts]
    if any(not term for term in terms):
        raise ScenarioError(
            f"empty term in scenario composition {text!r}; "
            "did you write a stray '+'?")
    return terms


def parse_term(term: str) -> tuple[str, dict[str, float]]:
    """Parse one ``name`` / ``name(key=value,...)`` term.

    Returns the scenario name and its raw parameter dict (values as
    floats; conversion to each field's declared type happens against
    the registry in :func:`build_scenario`).
    """
    text = term.strip()
    paren = text.find("(")
    if paren < 0:
        name, body = text, None
    else:
        if not text.endswith(")"):
            raise ScenarioError(
                f"malformed scenario term {text!r}: expected "
                "'name(key=value,...)' with a closing ')'")
        name, body = text[:paren].strip(), text[paren + 1:-1]
    if not _NAME_RE.match(name):
        raise ScenarioError(
            f"invalid scenario name {name!r} in term {text!r}; names are "
            "lower-case words joined by '-'")
    params: dict[str, float] = {}
    if body is not None and body.strip():
        for raw in body.split(","):
            item = raw.strip()
            if "=" not in item:
                raise ScenarioError(
                    f"malformed parameter {item!r} in scenario term "
                    f"{text!r}; expected 'key=value'")
            key, _, value = item.partition("=")
            key = key.strip()
            if not _KEY_RE.match(key):
                raise ScenarioError(
                    f"invalid parameter name {key!r} in scenario term "
                    f"{text!r}")
            if key in params:
                raise ScenarioError(
                    f"duplicate parameter {key!r} in scenario term {text!r}")
            try:
                params[key] = float(value.strip())
            except ValueError:
                raise ScenarioError(
                    f"non-numeric value {value.strip()!r} for parameter "
                    f"{key!r} in scenario term {text!r}") from None
    return name, params


def build_scenario(name: str, params: dict[str, float],
                   types: dict[str, type["Scenario"]]) -> "Scenario":
    """Instantiate a scenario from a parsed term against a type table.

    Unknown names and unknown parameter keys raise
    :class:`ScenarioError` listing the valid choices; out-of-range
    values propagate the constructor's own :class:`ScenarioError`.
    """
    cls = types.get(name)
    if cls is None:
        known = ", ".join(sorted(types))
        raise ScenarioError(
            f"unknown scenario {name!r}; available scenarios: {known}")
    declared = {f.name: f for f in fields(cls)}  # type: ignore[arg-type]
    kwargs: dict[str, float | int] = {}
    for key, value in params.items():
        field = declared.get(key)
        if field is None:
            valid = ", ".join(sorted(declared)) or "(none)"
            raise ScenarioError(
                f"unknown parameter {key!r} for scenario {name!r}; "
                f"valid parameters: {valid}")
        if field.type in ("int", int):
            if value != int(value):
                raise ScenarioError(
                    f"parameter {key!r} of scenario {name!r} must be an "
                    f"integer, got {value!r}")
            kwargs[key] = int(value)
        else:
            kwargs[key] = value
    return cls(**kwargs)  # type: ignore[call-arg]


def parse_spec(spec: str, types: dict[str, type["Scenario"]]) -> "Scenario":
    """Parse a full (possibly composed) spec string into a Scenario."""
    from .base import compose

    terms = split_composition(spec)
    scenarios = [build_scenario(*parse_term(term), types) for term in terms]
    return compose(*scenarios)
