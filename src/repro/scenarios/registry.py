"""The scenario registry: name → scenario family, spec → instance.

:data:`SCENARIO_TYPES` maps every parseable scenario name to its class;
:data:`REGISTERED_SCENARIOS` is the subset that carries conformance
envelopes and must pass the two-sided sensitivity gate (``identity`` is
parseable — it is the inert scenario the self-check injects — but
deliberately *not* registered, because it is indistinguishable from
baseline by construction).
"""

from __future__ import annotations

from ..errors import ScenarioError
from .base import IdentityScenario, Scenario
from .perturbations import (
    BimodalShift,
    Blackout,
    FlashCrowd,
    LongtailMix,
    Zapping,
)
from .spec import parse_spec

#: Every parseable scenario family, by registry name.
SCENARIO_TYPES: dict[str, type[Scenario]] = {
    FlashCrowd.slug: FlashCrowd,
    Zapping.slug: Zapping,
    Blackout.slug: Blackout,
    BimodalShift.slug: BimodalShift,
    LongtailMix.slug: LongtailMix,
    IdentityScenario.slug: IdentityScenario,
}

#: Scenario names that carry golden envelopes and sensitivity gates.
REGISTERED_SCENARIOS: tuple[str, ...] = (
    FlashCrowd.slug,
    Zapping.slug,
    Blackout.slug,
    BimodalShift.slug,
    LongtailMix.slug,
)


def scenario_names() -> tuple[str, ...]:
    """All parseable scenario names, sorted."""
    return tuple(sorted(SCENARIO_TYPES))


def get_scenario(spec: str | Scenario | None) -> Scenario | None:
    """Resolve a scenario spec to a :class:`Scenario` instance.

    Accepts a spec string (``"flash-crowd(peak=3.0)+zapping"``), an
    already-built :class:`Scenario` (returned as-is), or ``None``
    (returned as ``None`` — the unperturbed baseline).  Raises
    :class:`~repro.errors.ScenarioError` on unknown names, malformed
    specs, and out-of-range parameters.
    """
    if spec is None or isinstance(spec, Scenario):
        return spec
    if not isinstance(spec, str):
        raise ScenarioError(
            f"scenario spec must be a string or Scenario, "
            f"got {type(spec).__name__}")
    return parse_spec(spec, SCENARIO_TYPES)


def scenario_spec_string(scenario: str | Scenario | None) -> str:
    """Canonical spec string for fingerprints: ``""`` for no scenario."""
    resolved = get_scenario(scenario)
    return "" if resolved is None else resolved.spec_string()
