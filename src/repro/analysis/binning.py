"""Binning helpers shared by the analysis modules."""

from __future__ import annotations

import numpy as np

from .._typing import FloatArray, IntArray
from ..errors import AnalysisError


def linear_bins(lo: float, hi: float, width: float) -> FloatArray:
    """Equal-width bin edges covering ``[lo, hi]``.

    The final edge is placed at or beyond ``hi`` so the last (possibly
    partial) bin is always included.
    """
    if width <= 0:
        raise AnalysisError(f"bin width must be positive, got {width}")
    if hi < lo:
        raise AnalysisError(f"hi ({hi}) must not precede lo ({lo})")
    n = max(int(np.ceil((hi - lo) / width)), 1)
    return lo + width * np.arange(n + 1, dtype=np.float64)


def log_bins(lo: float, hi: float, n_bins: int) -> FloatArray:
    """Logarithmically spaced bin edges covering ``[lo, hi]``.

    Used for the paper's log-scale frequency panels, where equal-width bins
    would starve the tail.
    """
    if not (0 < lo < hi):
        raise AnalysisError(f"need 0 < lo < hi, got [{lo}, {hi}]")
    if n_bins < 1:
        raise AnalysisError(f"n_bins must be positive, got {n_bins}")
    return np.logspace(np.log10(lo), np.log10(hi), n_bins + 1)


def logspaced_indices(n: int, n_points: int) -> IntArray:
    """Distinct, log-spaced indices into an array of length ``n``.

    Returns at most ``n_points`` strictly increasing indices starting at 0,
    spanning the full range.  Used to thin rank-frequency curves before
    plotting or regression so each decade carries similar weight.
    """
    if n < 1:
        raise AnalysisError(f"n must be positive, got {n}")
    if n_points < 1:
        raise AnalysisError(f"n_points must be positive, got {n_points}")
    if n <= n_points:
        return np.arange(n, dtype=np.int64)
    raw = np.logspace(0.0, np.log10(n), n_points)
    return np.unique(raw.astype(np.int64)) - 1
