"""Unicast-versus-multicast delivery comparison for live workloads.

The paper's server supported multicast but had only unicast enabled
(Section 2.3), so every concurrent viewer of a feed cost a separate
stream — over 8 TB served for content that, multicast, would have been
two streams.  Prior stored-media work (Chesire et al. [11]) studied
multicast savings for streaming workloads; for *live* content the saving
is maximal, because every recipient of a feed is watching the same instant
by definition.

:func:`compare_unicast_multicast` quantifies this on any trace: unicast
egress is (per-feed concurrency x encoded rate) summed over feeds;
multicast egress is one stream per feed whenever at least one viewer is
tuned in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..trace.store import Trace


@dataclass(frozen=True)
class MulticastComparison:
    """Egress statistics of unicast versus multicast delivery.

    Attributes
    ----------
    step:
        Sampling period of the underlying series, seconds.
    unicast_mean_bps, unicast_peak_bps:
        Offered unicast egress (mean / peak over the trace).
    multicast_mean_bps, multicast_peak_bps:
        Egress if each feed were delivered as a single multicast stream.
    unicast_bytes, multicast_bytes:
        Total bytes out over the trace under each scheme.
    """

    step: float
    unicast_mean_bps: float
    unicast_peak_bps: float
    multicast_mean_bps: float
    multicast_peak_bps: float
    unicast_bytes: float
    multicast_bytes: float

    @property
    def mean_savings_factor(self) -> float:
        """Unicast/multicast mean egress ratio (the bandwidth saving)."""
        if self.multicast_mean_bps == 0:
            return float("inf") if self.unicast_mean_bps > 0 else 1.0
        return self.unicast_mean_bps / self.multicast_mean_bps

    @property
    def peak_savings_factor(self) -> float:
        """Unicast/multicast peak egress ratio."""
        if self.multicast_peak_bps == 0:
            return float("inf") if self.unicast_peak_bps > 0 else 1.0
        return self.unicast_peak_bps / self.multicast_peak_bps


def compare_unicast_multicast(trace: Trace, *,
                              encoding_rate_bps: float = 300_000.0,
                              step: float = 60.0) -> MulticastComparison:
    """Compare unicast and multicast egress for ``trace``.

    Parameters
    ----------
    trace:
        The live workload.
    encoding_rate_bps:
        CBR stream rate used for both schemes (for VBR content, the mean
        rate is the right comparison basis: both schemes carry the same
        content).
    step:
        Sampling period of the concurrency series.
    """
    if encoding_rate_bps <= 0:
        raise AnalysisError("encoding_rate_bps must be positive")
    if len(trace) == 0:
        raise AnalysisError("cannot compare delivery schemes on an empty trace")
    from ..simulation.vbr import per_feed_concurrency

    concurrency = per_feed_concurrency(trace, step=step)
    n_steps = next(iter(concurrency.values())).size
    unicast = np.zeros(n_steps)
    multicast = np.zeros(n_steps)
    for counts in concurrency.values():
        unicast += counts * encoding_rate_bps
        multicast += (counts > 0) * encoding_rate_bps

    return MulticastComparison(
        step=step,
        unicast_mean_bps=float(unicast.mean()),
        unicast_peak_bps=float(unicast.max()),
        multicast_mean_bps=float(multicast.mean()),
        multicast_peak_bps=float(multicast.max()),
        unicast_bytes=float(unicast.sum() * step / 8.0),
        multicast_bytes=float(multicast.sum() * step / 8.0),
    )
