"""Self-similarity (Hurst parameter) estimation.

Section 5.3 of the paper connects transfer-length variability to traffic
self-similarity via Crovella and Bestavros [14]: heavy-tailed transfer
durations induce long-range dependence in the aggregate traffic.  These
estimators quantify that on count or rate series:

* :func:`hurst_aggregate_variance` — the aggregated-variance method: block
  means at aggregation level ``m`` have variance ~ ``m^(2H-2)``;
* :func:`hurst_rescaled_range` — the classic R/S statistic, ~ ``n^H``.

Both are regression estimators; they are also the validation tools for the
fGn generator in :mod:`repro.distributions.selfsimilar`.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, as_float_array
from ..errors import AnalysisError


def _log_regression_slope(x: np.ndarray, y: np.ndarray) -> float:
    lx, ly = np.log(x), np.log(y)
    lx -= lx.mean()
    denom = float(np.dot(lx, lx))
    if denom == 0:
        raise AnalysisError("degenerate regression in Hurst estimation")
    return float(np.dot(lx, ly - ly.mean()) / denom)


def hurst_aggregate_variance(series: ArrayLike, *,
                             min_block: int = 4,
                             n_scales: int = 12) -> float:
    """Aggregated-variance Hurst estimate of a stationary series.

    The series is averaged over non-overlapping blocks of log-spaced sizes
    ``m``; the sample variance of the block means is regressed against
    ``m`` in log-log space, and ``H = 1 + slope / 2``.

    Parameters
    ----------
    series:
        The (stationary) series; at least ``16 * min_block`` points.
    min_block:
        Smallest aggregation level.
    n_scales:
        Number of log-spaced aggregation levels.
    """
    arr = as_float_array(series, name="series")
    if arr.size < 16 * min_block:
        raise AnalysisError(
            f"series too short for aggregate-variance estimation "
            f"({arr.size} points)")
    max_block = arr.size // 16
    if max_block <= min_block:
        raise AnalysisError("series too short for the requested min_block")
    blocks = np.unique(np.logspace(np.log10(min_block),
                                   np.log10(max_block),
                                   n_scales).astype(np.int64))
    variances = []
    sizes = []
    for m in blocks:
        n_blocks = arr.size // m
        means = arr[:n_blocks * m].reshape(n_blocks, m).mean(axis=1)
        v = float(means.var())
        if v > 0:
            variances.append(v)
            sizes.append(float(m))
    if len(sizes) < 3:
        raise AnalysisError("not enough usable aggregation levels")
    slope = _log_regression_slope(np.asarray(sizes), np.asarray(variances))
    return 1.0 + slope / 2.0


def hurst_rescaled_range(series: ArrayLike, *, min_window: int = 16,
                         n_scales: int = 10) -> float:
    """Rescaled-range (R/S) Hurst estimate.

    For log-spaced window sizes ``w``, the series is split into windows;
    each window's range of mean-adjusted cumulative sums is divided by its
    standard deviation, and the average R/S statistic is regressed against
    ``w``: the slope is ``H``.
    """
    arr = as_float_array(series, name="series")
    if arr.size < 4 * min_window:
        raise AnalysisError(
            f"series too short for R/S estimation ({arr.size} points)")
    max_window = arr.size // 4
    if max_window <= min_window:
        raise AnalysisError("series too short for the requested min_window")
    windows = np.unique(np.logspace(np.log10(min_window),
                                    np.log10(max_window),
                                    n_scales).astype(np.int64))
    sizes, stats = [], []
    for w in windows:
        n_windows = arr.size // w
        chunks = arr[:n_windows * w].reshape(n_windows, w)
        adjusted = chunks - chunks.mean(axis=1, keepdims=True)
        cumulative = np.cumsum(adjusted, axis=1)
        ranges = cumulative.max(axis=1) - cumulative.min(axis=1)
        stds = chunks.std(axis=1)
        valid = stds > 0
        if valid.any():
            rs = float(np.mean(ranges[valid] / stds[valid]))
            if rs > 0:
                sizes.append(float(w))
                stats.append(rs)
    if len(sizes) < 3:
        raise AnalysisError("not enough usable window sizes")
    return _log_regression_slope(np.asarray(sizes), np.asarray(stats))
