"""Time-series helpers: regular binning and periodic folding.

Figures 4, 16, and 18 of the paper show the same variable three ways: over
the entire trace in 15-minute bins, folded modulo one week, and folded
modulo one day.  :func:`binned_series` produces the first view and
:func:`fold_series` the other two.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import AnalysisError

#: Day labels used by the experiments' folded-week output (day 0 = Sunday,
#: matching the scenario convention that the trace starts on a Sunday).
DAY_LABELS: tuple[str, ...] = ("Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat")


def binned_series(event_times: ArrayLike, *, extent: float,
                  bin_width: float) -> FloatArray:
    """Event counts per regular bin over ``[0, extent)``.

    Events outside the window raise; use this for arrival counts, not
    interval concurrency (see :mod:`repro.analysis.concurrency` for that).
    """
    if extent <= 0:
        raise AnalysisError(f"extent must be positive, got {extent}")
    if bin_width <= 0:
        raise AnalysisError(f"bin_width must be positive, got {bin_width}")
    times = as_float_array(event_times, name="event_times")
    if times.size and (times.min() < 0 or times.max() >= extent):
        raise AnalysisError("event times must lie within [0, extent)")
    n_bins = int(np.ceil(extent / bin_width))
    counts, _ = np.histogram(times, bins=n_bins, range=(0.0, extent))
    return counts.astype(np.float64)


def binned_mean_of_events(event_times: ArrayLike, values: ArrayLike, *,
                          extent: float, bin_width: float) -> FloatArray:
    """Mean of ``values`` over the events falling in each regular bin.

    Bins with no events yield NaN (the paper's figures simply have no point
    there).  Used, e.g., for the mean transfer interarrival per 15-minute
    bin of Figure 18.
    """
    times = as_float_array(event_times, name="event_times")
    vals = as_float_array(values, name="values")
    if times.size != vals.size:
        raise AnalysisError(
            f"event_times and values must have equal length "
            f"({times.size} != {vals.size})")
    if extent <= 0 or bin_width <= 0:
        raise AnalysisError("extent and bin_width must be positive")
    if times.size and (times.min() < 0 or times.max() >= extent):
        raise AnalysisError("event times must lie within [0, extent)")
    n_bins = int(np.ceil(extent / bin_width))
    idx = np.minimum((times / bin_width).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=vals, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    out = np.full(n_bins, np.nan)
    present = counts > 0
    out[present] = sums[present] / counts[present]
    return out


def fold_series(series: ArrayLike, *, bin_width: float,
                period: float) -> FloatArray:
    """Fold a regular series modulo ``period`` and average per phase bin.

    ``series`` holds one value per consecutive ``bin_width`` window starting
    at time zero.  The result has ``period / bin_width`` entries, each the
    mean of the input values whose windows share that phase.  NaN input
    values are ignored (phases observed only as NaN stay NaN).

    ``period`` must be an integer multiple of ``bin_width``.
    """
    arr = as_float_array(series, name="series")
    if bin_width <= 0 or period <= 0:
        raise AnalysisError("bin_width and period must be positive")
    ratio = period / bin_width
    n_phase = int(round(ratio))
    if abs(ratio - n_phase) > 1e-9 or n_phase < 1:
        raise AnalysisError(
            f"period ({period}) must be an integer multiple of "
            f"bin_width ({bin_width})")
    if arr.size == 0:
        return np.full(n_phase, np.nan)
    phase = np.arange(arr.size) % n_phase
    valid = ~np.isnan(arr)
    sums = np.bincount(phase[valid], weights=arr[valid], minlength=n_phase)
    counts = np.bincount(phase[valid], minlength=n_phase)
    out = np.full(n_phase, np.nan)
    present = counts > 0
    out[present] = sums[present] / counts[present]
    return out
