"""Autocorrelation of binned count series.

Figure 8 of the paper shows the autocorrelation function of the number of
active clients over time, with pronounced peaks at lags that are multiples
of 1,440 minutes — one day — demonstrating the diurnal periodicity of the
live workload.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import AnalysisError


def acf(series: ArrayLike, max_lag: int) -> FloatArray:
    """Sample autocorrelation function up to ``max_lag``.

    Uses the standard biased estimator (normalization by ``n`` and the
    overall sample variance), computed via FFT so day-scale lags over a
    month-long minute-resolution series stay fast.  Returns
    ``max_lag + 1`` values with ``acf[0] == 1``.

    Raises
    ------
    AnalysisError
        If the series is shorter than ``max_lag + 1`` or has zero variance.
    """
    arr = as_float_array(series, name="series")
    n = arr.size
    if max_lag < 0:
        raise AnalysisError(f"max_lag must be non-negative, got {max_lag}")
    if n <= max_lag:
        raise AnalysisError(
            f"series length ({n}) must exceed max_lag ({max_lag})")
    centered = arr - arr.mean()
    variance = float(np.dot(centered, centered))
    if variance == 0:
        raise AnalysisError("autocorrelation undefined for a constant series")
    # FFT-based autocovariance with zero padding to avoid circular wrap.
    size = 1 << int(np.ceil(np.log2(2 * n - 1)))
    spectrum = np.fft.rfft(centered, size)
    autocov = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[:max_lag + 1]
    return autocov / variance


def dominant_period(acf_values: ArrayLike, *, min_lag: int = 1) -> int:
    """Lag of the highest autocorrelation peak at or beyond ``min_lag``.

    A *peak* is a strict local maximum; if no interior peak exists, the lag
    of the maximum value in the searched range is returned.  For the
    paper's Figure 8 series (1-minute bins) the result is 1440.
    """
    arr = as_float_array(acf_values, name="acf_values")
    if min_lag < 1 or min_lag >= arr.size:
        raise AnalysisError(
            f"min_lag must be in [1, {arr.size - 1}], got {min_lag}")
    segment = arr[min_lag:]
    if segment.size >= 3:
        interior = (segment[1:-1] > segment[:-2]) & (segment[1:-1] > segment[2:])
        peak_positions = np.nonzero(interior)[0] + 1
        if peak_positions.size:
            best = peak_positions[np.argmax(segment[peak_positions])]
            return int(min_lag + best)
    return int(min_lag + np.argmax(segment))
