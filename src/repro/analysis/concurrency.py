"""Active-entity counting: the paper's ``c(t)`` concurrency profiles.

Section 3.2 studies the number of concurrently active clients and
Section 5.1 the number of concurrent transfers.  Both reduce to the same
computation over a set of ``[start, end)`` intervals: the step function
counting how many intervals cover time ``t``.

Two views are provided: point samples of the step function on a regular
grid (:func:`sampled_concurrency`, used for marginal distributions and
autocorrelation) and exact time-weighted bin averages
(:func:`mean_concurrency_bins`, used for the 15-minute-bin figures).
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import AnalysisError


def _validate_intervals(starts: ArrayLike, ends: ArrayLike
                        ) -> tuple[FloatArray, FloatArray]:
    s = as_float_array(starts, name="starts")
    e = as_float_array(ends, name="ends")
    if s.size != e.size:
        raise AnalysisError(
            f"starts and ends must have equal length ({s.size} != {e.size})")
    if s.size and np.any(e < s):
        raise AnalysisError("every interval end must be >= its start")
    return s, e


def sampled_concurrency(starts: ArrayLike, ends: ArrayLike, *,
                        extent: float, step: float = 60.0) -> FloatArray:
    """Sample the active-interval count at times ``0, step, 2*step, ...``.

    An interval ``[s, e)`` is active at ``t`` when ``s <= t < e``.  Returns
    one count per sample point in ``[0, extent)``.

    Parameters
    ----------
    starts, ends:
        Interval endpoints.
    extent:
        Observation window length.
    step:
        Sampling period in seconds (default one minute, which makes the
        Figure 8 autocorrelation lags directly interpretable in minutes).
    """
    if extent <= 0:
        raise AnalysisError(f"extent must be positive, got {extent}")
    if step <= 0:
        raise AnalysisError(f"step must be positive, got {step}")
    s, e = _validate_intervals(starts, ends)
    n_samples = int(np.ceil(extent / step))
    times = np.arange(n_samples, dtype=np.float64) * step
    s_sorted = np.sort(s)
    e_sorted = np.sort(e)
    started = np.searchsorted(s_sorted, times, side="right")
    ended = np.searchsorted(e_sorted, times, side="right")
    return (started - ended).astype(np.float64)


def mean_concurrency_bins(starts: ArrayLike, ends: ArrayLike, *,
                          extent: float, bin_width: float) -> FloatArray:
    """Exact time-weighted mean active count per bin.

    For each bin ``[k*w, (k+1)*w)`` the mean of the concurrency step
    function is the total interval-time overlapping the bin divided by the
    bin width.  Computed exactly in O(n + bins) by accumulating, for each
    interval, its overlap with every bin it touches via a difference-array
    scheme (constant 1 between the bins fully covered, partial credit at
    the two ends).

    Returns one mean per bin covering ``[0, extent)``; the final partial
    bin (if any) is normalized by its true width.
    """
    if extent <= 0:
        raise AnalysisError(f"extent must be positive, got {extent}")
    if bin_width <= 0:
        raise AnalysisError(f"bin_width must be positive, got {bin_width}")
    s, e = _validate_intervals(starts, ends)
    s = np.clip(s, 0.0, extent)
    e = np.clip(e, 0.0, extent)
    n_bins = int(np.ceil(extent / bin_width))
    # Guard against float error in extent / bin_width overshooting an
    # integer (e.g. 0.9 / 0.3 -> 3.0000000000000004): np.ceil then mints
    # an extra bin of near-zero width whose normalization divides by
    # ~1e-16 and reports an absurd mean.  Collapse such a sliver into the
    # previous bin.
    if n_bins > 1 and extent - (n_bins - 1) * bin_width < 1e-9 * bin_width:
        n_bins -= 1
    overlap = np.zeros(n_bins + 1)

    first = np.floor(s / bin_width).astype(np.int64)
    last = np.floor(e / bin_width).astype(np.int64)
    first = np.clip(first, 0, n_bins - 1)
    last = np.clip(last, 0, n_bins - 1)

    same = first == last
    # Intervals within a single bin: overlap is simply their length.
    np.add.at(overlap, first[same], (e - s)[same])
    # Intervals spanning bins: partial head, partial tail, full middles.
    multi = ~same
    if np.any(multi):
        fs, ls = first[multi], last[multi]
        head = (fs + 1) * bin_width - s[multi]
        tail = e[multi] - ls * bin_width
        np.add.at(overlap, fs, head)
        np.add.at(overlap, ls, tail)
        # Difference array for the fully covered middle bins (fs+1 .. ls-1).
        full = np.zeros(n_bins + 1)
        np.add.at(full, fs + 1, bin_width)
        np.add.at(full, ls, -bin_width)
        overlap += np.cumsum(full)

    widths = np.full(n_bins, bin_width)
    widths[-1] = extent - (n_bins - 1) * bin_width
    return overlap[:n_bins] / widths
