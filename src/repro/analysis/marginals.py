"""Marginal distribution views: the paper's three-panel figures.

Nearly every figure in the paper presents a variable through the same three
panels: a frequency histogram (log-log), the cumulative distribution
``P[X <= x]``, and the complementary distribution ``P[X >= x]`` on log axes.
:class:`Marginal` packages a sample so all three are computed once and read
off cheaply, including the paper's ``floor(t)+1`` display convention for
time measurements (Section 2.3).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import AnalysisError
from ..units import log_display_time
from .binning import log_bins


class Marginal:
    """Empirical marginal distribution of a one-dimensional sample.

    Parameters
    ----------
    values:
        The sample; non-finite entries are rejected.
    display_time:
        When True, values are transformed with the paper's ``floor(t)+1``
        convention before analysis, as done for all time measurements shown
        on logarithmic axes.
    """

    def __init__(self, values: ArrayLike, *, display_time: bool = False) -> None:
        arr = as_float_array(values, name="values")
        if arr.size == 0:
            raise AnalysisError("marginal requires a non-empty sample")
        if not np.all(np.isfinite(arr)):
            raise AnalysisError("marginal sample must be finite")
        if display_time:
            arr = log_display_time(arr)
        self._sorted = np.sort(arr)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Sample size."""
        return int(self._sorted.size)

    @property
    def values(self) -> FloatArray:
        """The sorted sample (copy)."""
        return self._sorted.copy()

    @cached_property
    def _unique(self) -> tuple[FloatArray, FloatArray]:
        support, counts = np.unique(self._sorted, return_counts=True)
        return support, counts.astype(np.float64)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Sample mean."""
        return float(self._sorted.mean())

    def median(self) -> float:
        """Sample median."""
        return float(np.median(self._sorted))

    def std(self) -> float:
        """Sample standard deviation."""
        return float(self._sorted.std())

    def percentile(self, q: float) -> float:
        """Sample percentile at level ``q`` in [0, 100]."""
        return float(np.percentile(self._sorted, q))

    def coefficient_of_variation(self) -> float:
        """Std over mean — the paper's shorthand for 'highly variable'."""
        mean = self.mean()
        if mean == 0:
            raise AnalysisError("coefficient of variation undefined for zero mean")
        return self.std() / mean

    # ------------------------------------------------------------------
    # The three panels
    # ------------------------------------------------------------------
    def frequency(self) -> tuple[FloatArray, FloatArray]:
        """Exact frequency panel: ``(support, fraction of sample)``."""
        support, counts = self._unique
        return support.copy(), counts / self.n

    def cdf(self) -> tuple[FloatArray, FloatArray]:
        """Cumulative panel: ``(support, P[X <= support])``."""
        support, counts = self._unique
        return support.copy(), np.cumsum(counts) / self.n

    def ccdf(self, *, strict: bool = False) -> tuple[FloatArray, FloatArray]:
        """Complementary panel.

        With ``strict=False`` (default) returns ``P[X >= x]`` as the paper's
        CCDF panels are labelled; ``strict=True`` returns ``P[X > x]``.
        Every returned probability is positive, making the panel safe to
        draw on a log axis (``strict=True`` drops the final support point,
        whose strict CCDF is zero).
        """
        support, counts = self._unique
        cumulative = np.cumsum(counts)
        if strict:
            ccdf = 1.0 - cumulative / self.n
            return support[:-1].copy(), ccdf[:-1]
        below = np.concatenate(([0.0], cumulative[:-1]))
        return support.copy(), 1.0 - below / self.n

    def log_binned_frequency(self, n_bins: int = 60
                             ) -> tuple[FloatArray, FloatArray]:
        """Frequency panel smoothed over log-spaced bins.

        Returns bin centers (geometric) and the fraction of the sample per
        bin.  Requires a strictly positive sample.
        """
        if float(self._sorted[0]) <= 0:
            raise AnalysisError(
                "log-binned frequency requires positive values; "
                "construct the Marginal with display_time=True for times")
        lo, hi = float(self._sorted[0]), float(self._sorted[-1])
        if lo == hi:
            return np.asarray([lo]), np.asarray([1.0])
        edges = log_bins(lo, hi * (1 + 1e-12), n_bins)
        counts, _ = np.histogram(self._sorted, bins=edges)
        centers = np.sqrt(edges[:-1] * edges[1:])
        return centers, counts / self.n

    def sample_quantiles(self, probs: ArrayLike) -> FloatArray:
        """Empirical quantiles at the given probability levels."""
        return np.quantile(self._sorted, as_float_array(probs, name="probs"))


def binned_frequency(values: ArrayLike, edges: ArrayLike
                     ) -> tuple[FloatArray, FloatArray]:
    """Histogram fractions over explicit bin edges.

    Returns ``(bin_centers, fraction_of_sample)`` with arithmetic centers;
    values outside the edges are ignored.
    """
    arr = as_float_array(values, name="values")
    edge_arr = as_float_array(edges, name="edges")
    if edge_arr.size < 2:
        raise AnalysisError("need at least two bin edges")
    counts, _ = np.histogram(arr, bins=edge_arr)
    centers = 0.5 * (edge_arr[:-1] + edge_arr[1:])
    total = arr.size if arr.size else 1
    return centers, counts / total
