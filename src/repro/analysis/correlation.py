"""Conditional means and correlation-strength measures.

Section 4.2 of the paper asks whether the high variability of session ON
times is a temporal artifact (like client interarrivals) or fundamental to
live-content interaction, by plotting mean session length against session
starting hour (Figure 10) and observing only a weak relationship.  The
tools here quantify that judgment: per-bin conditional means plus the
fraction of variance the binning explains (the correlation ratio).
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import AnalysisError
from ..units import DAY


def pearson_r(x: ArrayLike, y: ArrayLike) -> float:
    """Pearson correlation coefficient between two equal-length samples."""
    xa = as_float_array(x, name="x")
    ya = as_float_array(y, name="y")
    if xa.size != ya.size:
        raise AnalysisError(f"length mismatch ({xa.size} != {ya.size})")
    if xa.size < 2:
        raise AnalysisError("pearson_r requires at least two points")
    xc, yc = xa - xa.mean(), ya - ya.mean()
    denom = float(np.sqrt(np.dot(xc, xc) * np.dot(yc, yc)))
    if denom == 0:
        raise AnalysisError("pearson_r undefined for a constant sample")
    return float(np.dot(xc, yc) / denom)


def binned_conditional_mean(times: ArrayLike, values: ArrayLike, *,
                            period: float = DAY, n_bins: int = 24
                            ) -> tuple[FloatArray, FloatArray, FloatArray]:
    """Mean of ``values`` conditioned on the phase bin of ``times``.

    Folds ``times`` modulo ``period`` into ``n_bins`` equal bins and
    averages the associated values per bin — Figure 10 with the defaults
    (hour-of-day bins).

    Returns
    -------
    (bin_centers, means, counts)
        Bin centers in seconds-of-period, per-bin means (NaN where empty),
        and per-bin sample counts.
    """
    t = as_float_array(times, name="times")
    v = as_float_array(values, name="values")
    if t.size != v.size:
        raise AnalysisError(f"length mismatch ({t.size} != {v.size})")
    if period <= 0 or n_bins < 1:
        raise AnalysisError("period and n_bins must be positive")
    width = period / n_bins
    idx = np.minimum((np.mod(t, period) / width).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=v, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    means = np.full(n_bins, np.nan)
    present = counts > 0
    means[present] = sums[present] / counts[present]
    centers = (np.arange(n_bins) + 0.5) * width
    return centers, means, counts.astype(np.float64)


def variance_explained_by_bins(times: ArrayLike, values: ArrayLike, *,
                               period: float = DAY, n_bins: int = 24) -> float:
    """Correlation ratio (eta squared) of ``values`` given the phase bin.

    The fraction of the total variance of ``values`` explained by the
    per-bin means: 0 means the binning carries no information (Figure 10's
    "fairly weak correlation"), 1 means values are a function of the bin.
    """
    t = as_float_array(times, name="times")
    v = as_float_array(values, name="values")
    if t.size != v.size:
        raise AnalysisError(f"length mismatch ({t.size} != {v.size})")
    if v.size < 2:
        raise AnalysisError("need at least two observations")
    total_var = float(np.var(v))
    if total_var == 0:
        raise AnalysisError("variance ratio undefined for constant values")
    width = period / n_bins
    idx = np.minimum((np.mod(t, period) / width).astype(np.int64), n_bins - 1)
    sums = np.bincount(idx, weights=v, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    present = counts > 0
    means = np.zeros(n_bins)
    means[present] = sums[present] / counts[present]
    grand_mean = float(v.mean())
    between = float(np.dot(counts[present],
                           (means[present] - grand_mean) ** 2)) / v.size
    return between / total_var
