"""Measurement-statistics toolkit used by the characterization layers.

Each module corresponds to a family of figures in the paper:

* :mod:`~repro.analysis.marginals` — the three-panel frequency / CDF / CCDF
  marginal views (Figures 3, 5, 6, 11-15, 17, 19, 20);
* :mod:`~repro.analysis.concurrency` — active-entity counting ``c(t)``
  (Figures 3, 15);
* :mod:`~repro.analysis.timeseries` — 15-minute binning and folding modulo
  day/week (Figures 4, 16, 18);
* :mod:`~repro.analysis.autocorrelation` — the ACF of binned counts
  (Figure 8);
* :mod:`~repro.analysis.correlation` — conditional means and correlation
  strength (Figure 10);
* :mod:`~repro.analysis.ranks` — rank-frequency profiles (Figures 2, 7).
"""

from .autocorrelation import acf, dominant_period
from .binning import linear_bins, log_bins, logspaced_indices
from .concurrency import mean_concurrency_bins, sampled_concurrency
from .correlation import binned_conditional_mean, pearson_r, variance_explained_by_bins
from .marginals import Marginal, binned_frequency
from .multicast import MulticastComparison, compare_unicast_multicast
from .ranks import group_counts, rank_frequency, share_by_key
from .selfsimilarity import hurst_aggregate_variance, hurst_rescaled_range
from .timeseries import binned_mean_of_events, binned_series, fold_series

__all__ = [
    "Marginal",
    "MulticastComparison",
    "acf",
    "compare_unicast_multicast",
    "hurst_aggregate_variance",
    "hurst_rescaled_range",
    "binned_conditional_mean",
    "binned_frequency",
    "binned_mean_of_events",
    "binned_series",
    "dominant_period",
    "fold_series",
    "group_counts",
    "linear_bins",
    "log_bins",
    "logspaced_indices",
    "mean_concurrency_bins",
    "pearson_r",
    "rank_frequency",
    "sampled_concurrency",
    "share_by_key",
    "variance_explained_by_bins",
]
