"""Rank-frequency profiles and share tables.

Figure 2 of the paper ranks autonomous systems by the share of transfers
and of IP addresses they command, and tabulates transfer shares by country;
Figure 7 ranks clients by their transfer and session counts (the *client
interest profile*).  All reduce to counting by key and sorting descending.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray
from ..errors import AnalysisError


def group_counts(keys: ArrayLike) -> tuple[np.ndarray, FloatArray]:
    """Count occurrences per distinct key.

    Returns ``(unique_keys, counts)`` with counts as floats for downstream
    arithmetic.  Keys may be any NumPy-comparable dtype (ints, strings).
    """
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise AnalysisError(f"keys must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise AnalysisError("group_counts requires a non-empty key array")
    unique, counts = np.unique(arr, return_counts=True)
    return unique, counts.astype(np.float64)


def rank_frequency(counts: ArrayLike, *, normalize: bool = True
                   ) -> tuple[FloatArray, FloatArray]:
    """Sort counts descending into a rank-frequency profile.

    Returns ``(ranks, frequencies)`` where ``ranks`` starts at 1.  With
    ``normalize`` the frequencies are fractions of the total, matching the
    paper's "% of transfers" axes.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise AnalysisError("counts must be a non-empty one-dimensional array")
    arr = arr[arr > 0]
    if arr.size == 0:
        raise AnalysisError("counts must contain at least one positive entry")
    freq = np.sort(arr)[::-1]
    if normalize:
        freq = freq / freq.sum()
    ranks = np.arange(1, freq.size + 1, dtype=np.float64)
    return ranks, freq


def share_by_key(keys: ArrayLike, *, top: int | None = None
                 ) -> list[tuple[str, float]]:
    """Fraction of observations per key, sorted descending.

    Returns up to ``top`` ``(key, share)`` pairs — the Figure 2 (right)
    country table with string keys.
    """
    unique, counts = group_counts(keys)
    shares = counts / counts.sum()
    order = np.argsort(shares, kind="stable")[::-1]
    if top is not None:
        if top < 1:
            raise AnalysisError(f"top must be positive, got {top}")
        order = order[:top]
    return [(str(unique[i]), float(shares[i])) for i in order]
