"""CDN relay placement analysis for live workloads.

The paper motivates live-workload characterization with capacity planning
for "live content delivery infrastructures (e.g., servers, network, CDN)"
(Section 1).  For live streams, a relay placed inside a client autonomous
system converts that AS's viewers into a single origin stream per feed —
IP-level multicast without multicast, which is how live CDNs actually
worked.

:func:`relay_placement_curve` quantifies the planning question: origin
egress as a function of how many of the top ASes get relays.  Because AS
sizes are Zipf (Figure 2), the curve has the classic concave shape —
a few well-placed relays absorb most of the unicast load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import FloatArray
from ..errors import AnalysisError
from ..trace.store import Trace
from .concurrency import sampled_concurrency


@dataclass(frozen=True)
class RelayPlacement:
    """Origin egress under one relay deployment.

    Attributes
    ----------
    n_relays:
        Number of relay-equipped ASes (the largest by transfer count).
    relay_ases:
        The AS numbers chosen.
    origin_mean_bps, origin_peak_bps:
        Origin egress with the relays in place: one stream per
        (relay, feed) with local viewers, plus direct unicast for
        everyone outside relay ASes.
    direct_mean_bps:
        The no-relay (all-unicast) mean egress, for the savings ratio.
    """

    n_relays: int
    relay_ases: tuple[int, ...]
    origin_mean_bps: float
    origin_peak_bps: float
    direct_mean_bps: float

    @property
    def savings_factor(self) -> float:
        """All-unicast mean egress over relayed mean egress."""
        if self.origin_mean_bps == 0:
            return float("inf") if self.direct_mean_bps > 0 else 1.0
        return self.direct_mean_bps / self.origin_mean_bps


def _per_group_concurrency(trace: Trace, group_of_transfer: np.ndarray,
                           groups: np.ndarray, *, step: float
                           ) -> dict[int, FloatArray]:
    out = {}
    ends = np.minimum(trace.end, trace.extent)
    for group in groups:
        mask = group_of_transfer == group
        out[int(group)] = sampled_concurrency(
            trace.start[mask], ends[mask], extent=trace.extent, step=step)
    return out


def relay_placement_curve(trace: Trace, relay_counts: list[int], *,
                          encoding_rate_bps: float = 300_000.0,
                          step: float = 60.0) -> list[RelayPlacement]:
    """Origin egress for each relay deployment size in ``relay_counts``.

    For a deployment of size ``k``, the ``k`` ASes with the most transfers
    receive relays.  At each sample time the origin then serves:

    * one stream per (relay AS, feed) with at least one active viewer, and
    * one stream per active transfer from every other AS.

    Parameters
    ----------
    trace:
        The live workload (client AS annotations required).
    relay_counts:
        Deployment sizes to evaluate (0 = all unicast).
    encoding_rate_bps:
        Stream rate used for every delivery leg.
    step:
        Sampling period of the underlying concurrency series.
    """
    if len(trace) == 0:
        raise AnalysisError("cannot analyze an empty trace")
    if encoding_rate_bps <= 0:
        raise AnalysisError("encoding_rate_bps must be positive")
    if any(k < 0 for k in relay_counts):
        raise AnalysisError("relay counts must be non-negative")

    transfer_as = trace.clients.as_numbers[trace.client_index]
    as_numbers, as_counts = np.unique(transfer_as, return_counts=True)
    # Stable sort so equal-traffic ASes rank in a platform-independent
    # order (ties fall back to ascending AS number, reversed).
    ranked_ases = as_numbers[np.argsort(as_counts, kind="stable")[::-1]]

    # Per-(AS, feed) concurrency for the ASes any deployment could touch;
    # everything else only ever needs its total concurrency.
    max_relays = min(max(relay_counts, default=0), ranked_ases.size)
    candidate_ases = ranked_ases[:max_relays]
    ends = np.minimum(trace.end, trace.extent)

    total_unicast = sampled_concurrency(trace.start, ends,
                                        extent=trace.extent, step=step)
    direct_mean = float(total_unicast.mean()) * encoding_rate_bps

    feeds = np.unique(trace.object_id)
    per_as_feed: dict[tuple[int, int], FloatArray] = {}
    per_as_total: dict[int, FloatArray] = {}
    for as_number in candidate_ases:
        as_mask = transfer_as == as_number
        per_as_total[int(as_number)] = sampled_concurrency(
            trace.start[as_mask], ends[as_mask], extent=trace.extent,
            step=step)
        for feed in feeds:
            mask = as_mask & (trace.object_id == feed)
            per_as_feed[(int(as_number), int(feed))] = sampled_concurrency(
                trace.start[mask], ends[mask], extent=trace.extent,
                step=step)

    results = []
    for k in relay_counts:
        k_eff = min(k, ranked_ases.size)
        chosen = tuple(int(a) for a in ranked_ases[:k_eff])
        origin = total_unicast.astype(np.float64).copy()
        for as_number in chosen:
            # Replace this AS's unicast load with one stream per live feed.
            origin -= per_as_total[as_number]
            for feed in feeds:
                origin += (per_as_feed[(as_number, int(feed))] > 0)
        origin_bps = origin * encoding_rate_bps
        results.append(RelayPlacement(
            n_relays=k,
            relay_ases=chosen,
            origin_mean_bps=float(origin_bps.mean()),
            origin_peak_bps=float(origin_bps.max()),
            direct_mean_bps=direct_mean,
        ))
    return results
