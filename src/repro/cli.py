"""Command-line interface.

Subcommands mirror the library's three faces plus the experiment harness:

* ``repro simulate`` — run the live-show scenario, write a trace.
* ``repro characterize`` — three-layer characterization report of a trace.
* ``repro calibrate`` — fit the Table 2 model from a trace, write JSON.
* ``repro generate`` — GISMO-live synthesis from a model (or defaults).
* ``repro replay`` — replay a trace against the server with admission
  control.
* ``repro experiments`` — regenerate the paper's tables and figures.
* ``repro conform`` — statistical conformance gates + cross-pipeline
  differential oracle against the golden registry.
* ``repro lint`` — AST-based determinism & numeric-discipline linter
  (rules RL000…; see ``docs/LINTING.md``).
* ``repro serve`` — live characterization service (asyncio ingest +
  metrics endpoint + checkpointing).
* ``repro serve-load`` — replay a trace log into a running service and
  report sustained throughput and ingest latency.
* ``repro plan`` — sweep CDN deployments (edge counts x per-edge
  bandwidths) through the two-tier delivery simulation and report the
  minimal deployment meeting a rejection-rate SLO.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import TYPE_CHECKING

from .core.calibrate import calibrate_model
from .core.characterize import characterize
from .core.gismo import LiveWorkloadGenerator
from .core.model import LiveWorkloadModel
from .core.report import render_report
from .simulation.population import PopulationConfig
from .simulation.replay import replay_trace
from .simulation.scenario import LiveShowScenario, ScenarioConfig
from .simulation.server import ServerConfig
from .trace.sanitize import sanitize_trace
from .trace.store import Trace
from .trace.wms_log import write_wms_log
from .units import DEFAULT_SESSION_TIMEOUT

if TYPE_CHECKING:
    from .trace.streaming import StreamingSummary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Hierarchical Characterization of a "
                    "Live Streaming Media Workload' (IMC 2002)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress (repeat for per-shard detail)")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate",
                         help="simulate the live-show world into a trace")
    sim.add_argument("--days", type=float, default=28.0,
                     help="trace length in days (default: 28)")
    sim.add_argument("--rate", type=float, default=0.05,
                     help="mean session arrival rate per second "
                          "(default: 0.05; the paper's trace: ~0.62)")
    sim.add_argument("--clients", type=int, default=50_000,
                     help="population size (default: 50000)")
    sim.add_argument("--seed", type=int, default=None, help="random seed")
    sim.add_argument("--out", type=Path, required=True,
                     help="output .npz trace path")
    sim.add_argument("--wms-log", type=Path, default=None,
                     help="also write a Windows-Media-Server-style log")

    cha = sub.add_parser("characterize",
                         help="three-layer characterization of a trace")
    cha.add_argument("trace", type=Path, nargs="+",
                     help=".npz trace path (or WMS log paths with --log)")
    cha.add_argument("--timeout", type=float,
                     default=DEFAULT_SESSION_TIMEOUT,
                     help="session timeout T_o in seconds (default: 1500)")
    cha.add_argument("--no-sanitize", action="store_true",
                     help="skip the Section 2.4 sanitization pass")
    cha.add_argument("--log", action="store_true",
                     help="treat inputs as WMS-style logs and run the "
                          "streaming map-reduce characterization")
    cha.add_argument("--jobs", type=int, default=1,
                     help="worker processes for --log chunk "
                          "characterization (default: 1, inline)")
    cha.add_argument("--checkpoint", type=Path, default=None,
                     help="with --log: run the sequential resumable "
                          "characterization, checkpointing the "
                          "accumulator to this file")
    cha.add_argument("--resume", action="store_true",
                     help="with --checkpoint: continue from the "
                          "checkpoint if it exists")
    cha.add_argument("--codec", choices=("auto", "text", "binary"),
                     default="auto",
                     help="with --log: expected trace codec of the "
                          "inputs; 'auto' (default) sniffs each file, "
                          "naming one fails fast on a mismatch")

    cal = sub.add_parser("calibrate",
                         help="fit the Table 2 generative model from a trace")
    cal.add_argument("trace", type=Path, help=".npz trace path")
    cal.add_argument("--timeout", type=float,
                     default=DEFAULT_SESSION_TIMEOUT,
                     help="session timeout T_o in seconds (default: 1500)")
    cal.add_argument("--out", type=Path, required=True,
                     help="output model JSON path")

    gen = sub.add_parser("generate",
                         help="GISMO-live synthetic workload generation")
    gen.add_argument("--model", type=Path, default=None,
                     help="model JSON (default: the paper's Table 2 "
                          "parameters)")
    gen.add_argument("--days", type=float, default=7.0,
                     help="workload length in days (default: 7)")
    gen.add_argument("--rate", type=float, default=0.05,
                     help="mean session rate when using default model")
    gen.add_argument("--clients", type=int, default=50_000,
                     help="client population when using default model "
                          "(default: 50000)")
    gen.add_argument("--seed", type=int, default=None, help="random seed")
    gen.add_argument("--scenario", default=None, metavar="SPEC",
                     help="workload perturbation scenario: a registered "
                          "name with optional parameters, '+'-composed "
                          "(e.g. 'flash-crowd', "
                          "'flash-crowd(peak=6.0)+zapping'); the output "
                          "is identical across --shards/--jobs/--stream")
    gen.add_argument("--shards", type=int, default=1,
                     help="split generation into this many shards; the "
                          "merged trace is identical for any value "
                          "(default: 1)")
    gen.add_argument("--jobs", type=int, default=1,
                     help="worker processes executing the shards "
                          "(default: 1, inline)")
    gen.add_argument("--out", type=Path, required=True,
                     help="output .npz trace path (with --stream: the "
                          "WMS-style log path)")
    gen.add_argument("--stream", action="store_true",
                     help="bounded-memory streaming mode: write a "
                          "WMS-style log directly (never materializing "
                          "the trace); bit-identical to generating the "
                          "trace and writing the log from it")
    gen.add_argument("--chunk-size", type=int, default=None,
                     help="transfers per streamed batch (--stream only; "
                          "output is invariant to it)")
    gen.add_argument("--blocks", type=int, default=None,
                     help="canonical block count (--stream only; part "
                          "of the workload identity, default: 64)")
    gen.add_argument("--timeout", type=float,
                     default=DEFAULT_SESSION_TIMEOUT,
                     help="session timeout T_o for the online "
                          "sessionizer (--stream only, default: 1500)")
    gen.add_argument("--no-sessions", action="store_true",
                     help="skip online sessionization (--stream only)")
    gen.add_argument("--checkpoint", type=Path, default=None,
                     help="checkpoint the pipeline cursor to this file "
                          "after every block (--stream only; requires "
                          "--seed)")
    gen.add_argument("--resume", action="store_true",
                     help="continue from --checkpoint if it exists "
                          "(--stream only)")
    gen.add_argument("--max-blocks", type=int, default=None,
                     help="stop after this many blocks (--stream only; "
                          "for exercising interrupted runs)")
    gen.add_argument("--codec", choices=("text", "binary"), default=None,
                     help="trace serialization for --stream output: "
                          "'text' (WMS log, default) or 'binary' (the "
                          "columnar format; ~5x smaller, decodes to the "
                          "identical trace)")

    rep = sub.add_parser("replay",
                         help="replay a trace against the unicast server")
    rep.add_argument("trace", type=Path, help=".npz trace path")
    rep.add_argument("--max-concurrent", type=int, default=None,
                     help="admission-control limit (default: unlimited)")

    exp = sub.add_parser("experiments",
                         help="regenerate the paper's tables and figures")
    exp.add_argument("ids", nargs="*",
                     help="experiment ids to run (default: all)")
    exp.add_argument("--out", type=Path, default=None,
                     help="also write the rendered output to this file")

    figs = sub.add_parser("figures",
                          help="export figure data (.dat + gnuplot scripts)")
    figs.add_argument("ids", nargs="*",
                      help="experiment ids to export (default: all)")
    figs.add_argument("--outdir", type=Path, required=True,
                      help="directory for the exported files")

    con = sub.add_parser("conform",
                         help="statistical conformance gates + "
                              "cross-pipeline differential oracle")
    con.add_argument("--scale", choices=("smoke", "paper"),
                     default="smoke",
                     help="canonical workload matrix to run (default: "
                          "smoke; paper adds the 28-day Table 2-scale "
                          "workload)")
    con.add_argument("--out", type=Path, default=None,
                     help="write the CONFORMANCE.json report here")
    con.add_argument("--update", action="store_true",
                     help="re-pin the golden registry from this run "
                          "instead of gating against it")
    con.add_argument("--registry", type=Path, default=None,
                     help="golden registry path (default: the "
                          "committed src/repro/conform/golden.json)")
    con.add_argument("--no-oracle", action="store_true",
                     help="skip the cross-pipeline differential oracle")
    con.add_argument("--no-mutation", action="store_true",
                     help="skip the mutation self-check")
    con.add_argument("--no-scenarios", action="store_true",
                     help="skip the scenario sensitivity gates, scenario "
                          "oracles, and the inert-scenario self-check")
    con.add_argument("--boot", type=int, default=None,
                     help="bootstrap replicates per parameter "
                          "(default: 200)")

    lnt = sub.add_parser("lint",
                         help="AST-based determinism & numeric-discipline "
                              "linter (rules RL000..)")
    lnt.add_argument("paths", type=Path, nargs="*",
                     help="files or directories to lint "
                          "(default: src/ tests/)")
    lnt.add_argument("--format", choices=("text", "json", "sarif"),
                     default="text",
                     help="report format (default: text); sarif feeds "
                          "GitHub code scanning")
    lnt.add_argument("--select", action="append", default=None,
                     metavar="RLxxx[,RLxxx...]",
                     help="run only these rule IDs (repeatable)")
    lnt.add_argument("--ignore", action="append", default=None,
                     metavar="RLxxx[,RLxxx...]",
                     help="skip these rule IDs (repeatable)")
    lnt.add_argument("--out", type=Path, default=None,
                     help="also write the report to this file")
    lnt.add_argument("--cache-file", type=Path,
                     default=Path(".reprolint-cache.json"),
                     help="incremental analysis cache keyed by file "
                          "content hashes (default: "
                          ".reprolint-cache.json)")
    lnt.add_argument("--no-cache", action="store_true",
                     help="ignore and do not write the analysis cache")

    srv = sub.add_parser("serve",
                         help="live characterization service: TCP/HTTP "
                              "ingest, JSON metrics, checkpointing")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    srv.add_argument("--tcp-port", type=int, default=7070,
                     help="TCP ingest port; 0 picks an ephemeral port "
                          "(default: 7070)")
    srv.add_argument("--http-port", type=int, default=8080,
                     help="HTTP metrics/ingest port; 0 picks an "
                          "ephemeral port (default: 8080)")
    srv.add_argument("--checkpoint", type=Path, default=None,
                     help="periodically checkpoint service state to "
                          "this .npz file")
    srv.add_argument("--checkpoint-interval", type=float, default=30.0,
                     help="seconds between periodic checkpoints "
                          "(default: 30)")
    srv.add_argument("--resume", action="store_true",
                     help="restore state from --checkpoint before "
                          "serving")
    srv.add_argument("--timeout", type=float,
                     default=DEFAULT_SESSION_TIMEOUT,
                     help="session timeout T_o in seconds "
                          "(default: 1500)")
    srv.add_argument("--lateness", type=float, default=None,
                     help="reorder-buffer lateness bound in seconds "
                          "(default: 86400)")
    srv.add_argument("--queue-batches", type=int, default=64,
                     help="per-feed worker queue capacity in batches; "
                          "a full queue sheds input (default: 64)")
    srv.add_argument("--golden", default=None, metavar="WORKLOAD",
                     help="golden-registry workload for /metrics "
                          "parameter drift (e.g. 'small')")

    lod = sub.add_parser("serve-load",
                         help="replay a trace log into a running "
                              "service (load harness)")
    lod.add_argument("log", type=Path,
                     help="trace log to replay (text or binary codec)")
    lod.add_argument("--host", default="127.0.0.1",
                     help="service address (default: 127.0.0.1)")
    lod.add_argument("--tcp-port", type=int, default=7070,
                     help="service TCP ingest port (default: 7070)")
    lod.add_argument("--http-port", type=int, default=None,
                     help="service HTTP port; enables drain/latency "
                          "readout and backpressure recovery")
    lod.add_argument("--feeds", type=int, default=1,
                     help="partition the log across this many feeds "
                          "by object id (default: 1)")
    lod.add_argument("--speedup", type=float, default=0.0,
                     help="replay pacing: data seconds per wall second; "
                          "0 replays unpaced (default: 0)")
    lod.add_argument("--batch-lines", type=int, default=512,
                     help="text lines per send batch (default: 512)")
    lod.add_argument("--transport", choices=("tcp", "http"),
                     default="tcp",
                     help="ingest transport (http carries text only; "
                          "default: tcp)")
    lod.add_argument("--codec", choices=("auto", "text", "binary"),
                     default="auto",
                     help="log codec (default: sniff the file)")
    lod.add_argument("--resume-from-service", action="store_true",
                     help="ask /metrics how far each feed got and "
                          "replay only the remainder")
    lod.add_argument("--max-retries", type=int, default=3,
                     help="reconnect attempts per feed after "
                          "backpressure sheds (default: 3)")
    lod.add_argument("--out", type=Path, default=None,
                     help="write the JSON load report here")

    pln = sub.add_parser("plan",
                         help="sweep CDN deployments for the minimal one "
                              "meeting a rejection-rate SLO")
    pln.add_argument("--trace", type=Path, default=None,
                     help=".npz trace to plan for (default: generate a "
                          "workload from the model defaults)")
    pln.add_argument("--days", type=float, default=1.0,
                     help="generated workload length in days when no "
                          "--trace is given (default: 1)")
    pln.add_argument("--rate", type=float, default=0.05,
                     help="mean session rate for the generated workload "
                          "(default: 0.05)")
    pln.add_argument("--clients", type=int, default=2000,
                     help="client population for the generated workload "
                          "(default: 2000)")
    pln.add_argument("--seed", type=int, default=None,
                     help="random seed for the generated workload")
    pln.add_argument("--scenario", default=None, metavar="SPEC",
                     help="perturbation scenario for the generated "
                          "workload (e.g. 'flash-crowd'); incompatible "
                          "with --trace")
    pln.add_argument("--policy", default="as-hash",
                     help="client->edge assignment policy: as-hash, "
                          "sticky, or least-loaded (default: as-hash)")
    pln.add_argument("--slo", type=float, default=0.01,
                     help="max acceptable rejection rate in [0, 1] "
                          "(default: 0.01)")
    pln.add_argument("--edges", default="1:4:1",
                     help="edge-count sweep: 'a,b,c' or 'lo:hi:step' "
                          "(default: 1:4:1)")
    pln.add_argument("--bandwidth-mbps", default=None,
                     help="per-edge bandwidth sweep in Mbit/s: 'a,b,c' "
                          "or 'lo:hi:step' (default: unlimited)")
    pln.add_argument("--max-connections", type=int, default=None,
                     help="per-edge connection cap (default: unlimited)")
    pln.add_argument("--fail-edge", action="append", default=None,
                     metavar="EDGE@AT[:UNTIL]",
                     help="kill an edge at time AT seconds (optionally "
                          "reviving at UNTIL); repeatable")
    pln.add_argument("--step", type=float, default=60.0,
                     help="concurrency sampling period in seconds "
                          "(default: 60)")
    pln.add_argument("--jobs", type=int, default=1,
                     help="worker processes sharding the sweep "
                          "(default: 1, inline; output is identical "
                          "for any value)")
    pln.add_argument("--out", type=Path, default=None,
                     help="write the full JSON plan report here")

    val = sub.add_parser("validate",
                         help="compare two traces through the calibration "
                              "lens (generator fidelity)")
    val.add_argument("reference", type=Path,
                     help=".npz trace being imitated")
    val.add_argument("candidate", type=Path, help=".npz trace under test")
    val.add_argument("--rtol", type=float, default=0.2,
                     help="max relative error per Table 2 parameter")
    val.add_argument("--ks-max", type=float, default=0.1,
                     help="max two-sample KS on transfer lengths")
    val.add_argument("--corr-min", type=float, default=0.9,
                     help="min diurnal-profile correlation")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        days=args.days, mean_session_rate=args.rate,
        population=PopulationConfig(n_clients=args.clients))
    result = LiveShowScenario(config).run(args.seed)
    result.trace.save_npz(args.out)
    print(f"wrote {result.trace.n_transfers} transfers "
          f"({result.n_sessions} sessions, "
          f"{result.trace.n_clients} clients) to {args.out}")
    if args.wms_log is not None:
        entries = write_wms_log(result.trace, args.wms_log)
        print(f"wrote {entries} log entries to {args.wms_log}")
    return 0


def _render_streaming_summary(summary: StreamingSummary) -> str:
    """Render a :class:`~repro.trace.streaming.StreamingSummary` as text."""
    lines = [
        "streaming characterization",
        f"  entries parsed        {summary.n_entries}",
        f"  entries skipped       {summary.n_skipped}",
        f"  distinct clients      {summary.n_clients}",
        f"  length lognormal      mu={summary.length_log_mu:.3f} "
        f"sigma={summary.length_log_sigma:.3f}",
        f"  bytes served          {summary.bytes_served:.3e}",
        f"  congestion bound      "
        f"{summary.congestion_bound_fraction * 100:.2f}%",
        "  transfers per feed    " + ", ".join(
            f"feed{feed}={count}"
            for feed, count in summary.feed_counts.items()),
    ]
    if summary.top_clients:
        lines.append("  top clients           " + ", ".join(
            f"{player}={count}" for player, count in summary.top_clients[:5]))
    return "\n".join(lines)


def _cmd_characterize(args: argparse.Namespace) -> int:
    if args.checkpoint is not None and not args.log:
        print("--checkpoint requires --log (it checkpoints the streaming "
              "log characterization)", file=sys.stderr)
        return 2
    if args.resume and args.checkpoint is None:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.codec != "auto" and not args.log:
        print("--codec requires --log (npz traces have no codec)",
              file=sys.stderr)
        return 2
    if args.log:
        if args.codec != "auto":
            from .trace.codecs import detect_codec

            for path in args.trace:
                detected = detect_codec(path)
                if detected != args.codec:
                    print(f"{path}: detected codec {detected!r} does not "
                          f"match --codec {args.codec}", file=sys.stderr)
                    return 2
        if args.checkpoint is not None:
            from .errors import CheckpointError
            from .stream import characterize_logs_resumable

            try:
                summary = characterize_logs_resumable(
                    args.trace, checkpoint_path=args.checkpoint,
                    resume=args.resume)
            except CheckpointError as exc:
                print(f"checkpoint error: {exc}", file=sys.stderr)
                return 2
        else:
            from .parallel import characterize_logs

            summary = characterize_logs(args.trace, jobs=args.jobs)
        print(_render_streaming_summary(summary))
        return 0
    if len(args.trace) != 1:
        print("characterize accepts exactly one .npz trace "
              "(multiple inputs need --log)", file=sys.stderr)
        return 2
    trace = Trace.load_npz(args.trace[0])
    if not args.no_sanitize:
        trace, report = sanitize_trace(trace)
        if report.n_removed:
            print(f"sanitization removed {report.n_removed} entries "
                  f"({report.n_spanning} spanning, "
                  f"{report.n_out_of_window} out of window, "
                  f"{report.n_degenerate} degenerate)")
    print(render_report(characterize(trace, timeout=args.timeout)))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    trace = Trace.load_npz(args.trace)
    trace, _ = sanitize_trace(trace)
    result = calibrate_model(trace, timeout=args.timeout)
    args.out.write_text(json.dumps(result.model.to_dict(), indent=2))
    print(f"wrote model to {args.out}")
    print(f"  interest alpha        {result.model.interest_alpha:.4f}")
    print(f"  transfers/session     {result.model.transfers_alpha:.4f}")
    print(f"  gap lognormal         mu={result.model.gap_log_mu:.3f} "
          f"sigma={result.model.gap_log_sigma:.3f}")
    print(f"  length lognormal      mu={result.model.length_log_mu:.3f} "
          f"sigma={result.model.length_log_sigma:.3f}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .errors import ScenarioError
    from .scenarios import get_scenario

    if args.model is not None:
        model = LiveWorkloadModel.from_dict(
            json.loads(args.model.read_text()))
    else:
        model = LiveWorkloadModel.paper_defaults(
            mean_session_rate=args.rate, n_clients=args.clients)
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"--chunk-size must be at least 1, got {args.chunk_size}",
              file=sys.stderr)
        return 2
    try:
        get_scenario(args.scenario)  # fail fast, before any generation
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    if args.stream:
        return _cmd_generate_stream(args, model)
    for flag, name in ((args.chunk_size, "--chunk-size"),
                       (args.blocks, "--blocks"),
                       (args.checkpoint, "--checkpoint"),
                       (args.max_blocks, "--max-blocks"),
                       (args.codec, "--codec")):
        if flag is not None:
            print(f"{name} only applies with --stream", file=sys.stderr)
            return 2
    if args.resume or args.no_sessions:
        print("--resume/--no-sessions only apply with --stream",
              file=sys.stderr)
        return 2
    try:
        workload = LiveWorkloadGenerator(model).generate_sharded(
            args.days, seed=args.seed, shards=args.shards, jobs=args.jobs,
            scenario=args.scenario)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    workload.trace.save_npz(args.out)
    scenario_note = (f" [scenario {args.scenario}]"
                     if args.scenario is not None else "")
    print(f"generated {workload.trace.n_transfers} transfers in "
          f"{workload.n_sessions} sessions over {args.days} days"
          f"{scenario_note} -> {args.out}")
    return 0


def _cmd_generate_stream(args: argparse.Namespace,
                         model: LiveWorkloadModel) -> int:
    from .errors import CheckpointError, ScenarioError
    from .stream import DEFAULT_CHUNK_SIZE, run_streaming_generation

    try:
        result = run_streaming_generation(
            model, args.days, seed=args.seed, log_path=args.out,
            chunk_size=(DEFAULT_CHUNK_SIZE if args.chunk_size is None
                        else args.chunk_size),
            blocks=args.blocks, timeout=args.timeout,
            sessionize=not args.no_sessions, collect_sessions=False,
            checkpoint_path=args.checkpoint, resume=args.resume,
            max_blocks=args.max_blocks,
            scenario=args.scenario,
            codec=args.codec if args.codec is not None else "text")
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2
    state = "complete" if result.completed else "interrupted"
    sessions = ("sessions off" if result.n_sessions is None
                else f"{result.n_sessions} sessions")
    print(f"streamed {result.n_entries} log entries "
          f"({result.n_transfers} transfers, {sessions}) over "
          f"{args.days} days -> {args.out} [{state}]")
    print(f"  peak state: {result.peak_open_sessions} open sessions, "
          f"{result.peak_log_buffered} buffered log entries, "
          f"{result.peak_pending} pending transfers")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load_npz(args.trace)
    config = ServerConfig(max_concurrent=args.max_concurrent)
    result = replay_trace(trace, config=config)
    print(f"requests:          {result.n_requests}")
    print(f"served:            {result.n_served}")
    print(f"rejected:          {result.n_rejected} "
          f"({result.rejection_rate * 100:.2f}%)")
    print(f"peak concurrency:  {result.peak_concurrency}")
    print(f"bytes served:      {result.bytes_served:.3e}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import ALL_EXPERIMENTS, run_all, summary_line

    names = tuple(args.ids) if args.ids else ALL_EXPERIMENTS
    chunks: list[str] = []

    def echo(text: str) -> None:
        chunks.append(text)
        print(text)

    results = run_all(names, echo=echo)
    summary = summary_line(results)
    chunks.append(summary)
    print(summary)
    if args.out is not None:
        args.out.write_text("\n".join(chunks) + "\n")
    return 0 if all(r.passed for r in results) else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments.export import export_all
    from .experiments.runner import ALL_EXPERIMENTS

    names = tuple(args.ids) if args.ids else ALL_EXPERIMENTS
    exported = export_all(args.outdir, names)
    total = sum(len(files) for files in exported.values())
    print(f"exported {total} files for {len(exported)} experiments "
          f"to {args.outdir}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    from .conform import (conformance_document, render_failures,
                          render_summary, run_conformance)
    from .conform.fingerprint import DEFAULT_N_BOOT
    from .conform.registry import REGISTRY_PATH
    from .errors import ReproError

    try:
        result = run_conformance(
            args.scale,
            update=args.update,
            run_oracle=not args.no_oracle,
            run_mutation=not args.no_mutation,
            run_scenarios=not args.no_scenarios,
            n_boot=DEFAULT_N_BOOT if args.boot is None else args.boot,
            registry_path=(REGISTRY_PATH if args.registry is None
                           else args.registry))
    except ReproError as exc:
        print(f"conformance error: {exc}", file=sys.stderr)
        return 2
    print(render_summary(result))
    if args.out is not None:
        args.out.write_text(
            json.dumps(conformance_document(result), indent=2,
                       sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if not result.passed:
        print(render_failures(result), file=sys.stderr)
        return 1
    return 0


def _split_rule_ids(values: list[str] | None) -> list[str] | None:
    """Flatten repeatable comma-separated ``--select``/``--ignore`` args."""
    if values is None:
        return None
    return [token for value in values
            for token in value.split(",") if token]


def _cmd_lint(args: argparse.Namespace) -> int:
    from .errors import LintError
    from .lint import lint_paths, render_json, render_sarif, render_text

    paths = [str(p) for p in args.paths] or ["src", "tests"]
    cache_file = None if args.no_cache else args.cache_file
    try:
        result = lint_paths(paths,
                            select=_split_rule_ids(args.select),
                            ignore=_split_rule_ids(args.ignore),
                            cache_path=cache_file)
    except LintError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result) + "\n"
    print(report, end="")
    if args.out is not None:
        args.out.write_text(report)
    return 0 if result.clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .errors import ReproError
    from .serve.config import DEFAULT_LATENESS, ServeConfig
    from .serve.service import CharacterizationService

    config = ServeConfig(
        host=args.host,
        tcp_port=args.tcp_port,
        http_port=args.http_port,
        checkpoint_path=(None if args.checkpoint is None
                         else str(args.checkpoint)),
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
        timeout=args.timeout,
        lateness=(DEFAULT_LATENESS if args.lateness is None
                  else args.lateness),
        queue_batches=args.queue_batches,
        golden_workload=args.golden,
    )
    try:
        config.validate()
    except ReproError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> int:
        service = CharacterizationService(config)
        try:
            await service.start()
        except ReproError as exc:
            print(f"serve error: {exc}", file=sys.stderr)
            return 2
        print(f"repro-serve listening "
              f"tcp={service.tcp_port} http={service.http_port}",
              flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            await service.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .serve.load import run_load

    try:
        report = run_load(
            args.log,
            host=args.host,
            tcp_port=args.tcp_port,
            http_port=args.http_port,
            feeds=args.feeds,
            speedup=args.speedup,
            batch_lines=args.batch_lines,
            transport=args.transport,
            codec=None if args.codec == "auto" else args.codec,
            resume_from_service=args.resume_from_service,
            max_retries=args.max_retries,
        )
    except ReproError as exc:
        print(f"serve-load error: {exc}", file=sys.stderr)
        return 2
    print(f"replayed {report.lines_sent} lines "
          f"({report.codec} codec, {report.n_feeds} feeds) in "
          f"{report.wall_seconds:.2f}s -> "
          f"{report.lines_per_sec:.0f} lines/s")
    if report.latency_p99_s is not None:
        print(f"  ingest latency        p50={report.latency_p50_s:.6f}s "
              f"p99={report.latency_p99_s:.6f}s")
    if report.retries:
        print(f"  backpressure retries  {report.retries}")
    if args.out is not None:
        args.out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


def _fmt_bandwidth(bps: float | None) -> str:
    return "unlimited" if bps is None else f"{bps / 1e6:g} Mbit/s"


def _cmd_plan(args: argparse.Namespace) -> int:
    import tempfile

    from .cdn import (parse_failure, parse_sweep, plan_deployment,
                      sweep_configs, validate_policy)
    from .cdn.failures import FailurePlan
    from .errors import CdnError

    try:
        validate_policy(args.policy)
        if not 0.0 <= args.slo <= 1.0:
            raise CdnError(f"--slo must be within [0, 1], got {args.slo}")
        edge_counts = tuple(
            int(v) for v in parse_sweep(args.edges, integral=True))
        bandwidths = (None if args.bandwidth_mbps is None else tuple(
            v * 1e6 for v in parse_sweep(args.bandwidth_mbps)))
        # Validate the whole candidate grid up front, before the
        # (potentially slow) workload generation below.
        sweep_configs(edge_counts, bandwidths,
                      max_connections=args.max_connections)
        failures = FailurePlan(tuple(
            parse_failure(spec) for spec in (args.fail_edge or ())))
        failures.validate(min(edge_counts) if edge_counts else 0)
    except CdnError as exc:
        print(f"plan error: {exc}", file=sys.stderr)
        return 2

    # The sweep always reads the workload from an .npz file — a
    # generated workload is materialized to a temp file first — so the
    # worker processes see the exact same bytes as the inline path and
    # the report is identical for any --jobs value.
    if args.trace is not None:
        if args.scenario is not None:
            print("--scenario applies to the generated workload; it is "
                  "incompatible with --trace (pre-recorded traces carry "
                  "no model to perturb)", file=sys.stderr)
            return 2
        trace_path, cleanup = args.trace, None
    else:
        from .errors import ScenarioError

        model = LiveWorkloadModel.paper_defaults(
            mean_session_rate=args.rate, n_clients=args.clients)
        try:
            workload = LiveWorkloadGenerator(model).generate(
                args.days, seed=args.seed, scenario=args.scenario)
        except ScenarioError as exc:
            print(f"scenario error: {exc}", file=sys.stderr)
            return 2
        handle = tempfile.NamedTemporaryFile(
            suffix=".npz", delete=False)
        handle.close()
        workload.trace.save_npz(handle.name)
        trace_path, cleanup = Path(handle.name), Path(handle.name)
        scenario_note = ("" if args.scenario is None
                         else f", scenario={args.scenario}")
        print(f"generated {workload.trace.n_transfers} transfers over "
              f"{args.days} days (rate={args.rate}, "
              f"clients={args.clients}, seed={args.seed}"
              f"{scenario_note})")
    try:
        report = plan_deployment(
            trace_path, policy=args.policy, slo=args.slo,
            edge_counts=edge_counts, bandwidths_bps=bandwidths,
            max_connections=args.max_connections, failures=failures,
            step=args.step, jobs=args.jobs)
    except CdnError as exc:
        print(f"plan error: {exc}", file=sys.stderr)
        return 2
    finally:
        if cleanup is not None:
            cleanup.unlink(missing_ok=True)

    print(f"swept {len(report.outcomes)} deployments "
          f"(policy={report.policy}, slo={report.slo:g})")
    print(f"{'edges':>6} {'bandwidth':>14} {'requests':>9} "
          f"{'rejected':>9} {'rate':>8} {'reassigned':>10}")
    for o in report.outcomes:
        marker = " <- frontier" if o in report.frontier else ""
        print(f"{o.n_edges:>6} {_fmt_bandwidth(o.bandwidth_bps):>14} "
              f"{o.n_requests:>9} {o.n_rejected:>9} "
              f"{o.rejection_rate:>8.4f} {o.n_reassigned:>10}{marker}")
    if args.out is not None:
        args.out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if report.best is None:
        print(f"no swept deployment meets the {args.slo:g} "
              f"rejection-rate SLO", file=sys.stderr)
        return 1
    best = report.best
    print(f"minimal deployment: {best.n_edges} edge(s) at "
          f"{_fmt_bandwidth(best.bandwidth_bps)} "
          f"(rejection rate {best.rejection_rate:.4f}, "
          f"origin peak {best.origin_peak_streams} streams)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core.validate import compare_workloads

    reference = Trace.load_npz(args.reference)
    candidate = Trace.load_npz(args.candidate)
    report = compare_workloads(reference, candidate)
    print(f"comparing {args.candidate} against {args.reference}:")
    for line in report.summary_lines():
        print(line)
    ok = report.within(rtol=args.rtol, ks_max=args.ks_max,
                       corr_min=args.corr_min)
    print("verdict:", "FAITHFUL" if ok else "NOT FAITHFUL",
          f"(rtol={args.rtol}, ks_max={args.ks_max}, "
          f"corr_min={args.corr_min})")
    return 0 if ok else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "characterize": _cmd_characterize,
    "calibrate": _cmd_calibrate,
    "generate": _cmd_generate,
    "replay": _cmd_replay,
    "experiments": _cmd_experiments,
    "conform": _cmd_conform,
    "figures": _cmd_figures,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "serve-load": _cmd_serve_load,
    "plan": _cmd_plan,
    "validate": _cmd_validate,
}


def _configure_logging(verbosity: int) -> None:
    """Map ``-v`` counts onto stdlib logging levels.

    0 keeps the library silent (WARNING), 1 shows shard/chunk dispatch
    and merge timings (INFO), 2+ adds per-task completion detail (DEBUG).
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(name)s %(levelname)s: %(message)s")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
