"""AST-based determinism and numeric-discipline linter.

Every subsystem in this repository stakes its correctness on bit-identical
determinism: seeds are plumbed through :func:`repro.rng.make_rng` and
:func:`repro.rng.spawn`, iteration orders are stable, dtypes are explicit.
``repro.lint`` enforces those contracts *statically* — the same code
patterns that caused past regressions (global RNG construction, ``'<U1'``
dtype truncation, unstable tie-breaking) are flagged before they ship.

The linter is pure stdlib (``ast`` + ``tokenize``), so ``make lint`` works
from a clean checkout with no extra dependencies.  It runs alongside two
optional third-party gates (``mypy --strict`` and ``ruff``); see
``docs/LINTING.md`` for the division of labour.

Beyond the per-file AST pass, a whole-program *flow* pass
(:mod:`repro.lint.graph` + :mod:`repro.lint.flow`) resolves imports and
calls across the project and evaluates interprocedural rule families:
RNG escape/consumption (RL020–RL023), float32→sink dtype propagation
(RL030–RL032), and asyncio discipline (RL040–RL043).  An incremental
cache keyed by file content hashes makes warm reruns parse nothing.

Public API
----------
:func:`lint_paths`
    Lint files and directories; returns a :class:`LintResult`.
:func:`lint_source`
    Lint a single source string (the unit-test entry point).
:data:`RULES`
    The rule registry, ordered by rule ID.

Suppressions
------------
A violation is silenced by an inline comment on the flagged line::

    if alpha == 1.0:  # reprolint: disable=RL007, exact mathematical branch

Suppression comments are themselves linted: an unknown rule ID or a
suppression that no longer matches any violation raises ``RL010``.
"""

from __future__ import annotations

from .engine import LintResult, lint_paths, lint_source
from .report import render_json, render_text
from .rules import FLOW_RULE_IDS, RULES, Rule, Violation, active_rule_ids
from .sarif import render_sarif

__all__ = [
    "FLOW_RULE_IDS",
    "LintResult",
    "RULES",
    "Rule",
    "Violation",
    "active_rule_ids",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
]
