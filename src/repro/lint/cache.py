"""Incremental analysis cache keyed by file content hash.

The per-file pass (parse → visitor → suppression extraction) is pure in
the file's bytes and the applicable rule set, so its outputs — raw
violations and suppression directives — are cached per file under the
content's SHA-256.  The whole-program flow pass is pure in *every*
library file, so its output is cached once under a project key: the
hash of all ``(module, content-hash)`` pairs plus the active flow rule
IDs.  ``RULES_VERSION`` is part of the envelope, so changing rule logic
invalidates everything at once.

Suppression application is *not* cached: staleness judgments depend on
the active rule set of the current run, which ``--select``/``--ignore``
can change without touching any file.  Applying suppressions is cheap;
extracting them (a tokenize pass) is what the cache skips.

The cache file is JSON, written atomically, and entirely disposable —
a corrupt or version-skewed file degrades to a cold run, never an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .rules import RULES_VERSION, Violation
from .suppressions import Suppression

#: Envelope layout version (distinct from RULES_VERSION: this one tracks
#: the cache *format*, that one tracks rule *logic*).
CACHE_FORMAT = 1


def content_hash(source: str) -> str:
    """SHA-256 of the file contents (the per-file cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_key(file_hashes: list[tuple[str, str]],
                flow_ids: frozenset[str]) -> str:
    """Key for the flow pass: every module's content plus the rule set."""
    digest = hashlib.sha256()
    digest.update(f"rules-version:{RULES_VERSION}".encode())
    for rule_id in sorted(flow_ids):
        digest.update(rule_id.encode())
    for module, file_hash in sorted(file_hashes):
        digest.update(f"{module}={file_hash}".encode())
    return digest.hexdigest()


@dataclass
class FileEntry:
    """Cached per-file pass output."""

    hash: str
    ids: tuple[str, ...]           #: applicable per-file rule IDs, sorted
    violations: list[Violation] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)


@dataclass
class LintCache:
    """In-memory cache state, loaded from / saved to one JSON file."""

    files: dict[str, FileEntry] = field(default_factory=dict)
    flow_key: str | None = None
    flow_violations: list[Violation] = field(default_factory=list)
    dirty: bool = False

    # -- per-file ----------------------------------------------------------

    def lookup(self, path: str, file_hash: str,
               ids: tuple[str, ...]) -> FileEntry | None:
        """The cached entry for ``path``, if content and rules match."""
        entry = self.files.get(path)
        if entry is None or entry.hash != file_hash or entry.ids != ids:
            return None
        return entry

    def store(self, path: str, entry: FileEntry) -> None:
        """Record one file's per-file pass output."""
        self.files[path] = entry
        self.dirty = True

    # -- flow pass ---------------------------------------------------------

    def lookup_flow(self, key: str) -> list[Violation] | None:
        """Cached flow-pass violations when the project key matches."""
        if self.flow_key != key:
            return None
        return list(self.flow_violations)

    def store_flow(self, key: str, violations: list[Violation]) -> None:
        """Record the flow pass output under its project key."""
        self.flow_key = key
        self.flow_violations = list(violations)
        self.dirty = True


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------

def load_cache(path: Path) -> LintCache:
    """Load a cache file; any problem degrades to an empty (cold) cache."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return LintCache()
    if not isinstance(payload, dict) \
            or payload.get("format") != CACHE_FORMAT \
            or payload.get("rules_version") != RULES_VERSION:
        return LintCache()
    try:
        return _decode(payload)
    except (KeyError, TypeError, ValueError):
        return LintCache()


def save_cache(path: Path, cache: LintCache) -> None:
    """Atomically persist the cache (best effort: failures are ignored)."""
    payload = _encode(cache)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, separators=(",", ":"),
                      sort_keys=True)
        os.replace(tmp_name, path)
    except OSError:
        return


def _encode(cache: LintCache) -> dict[str, Any]:
    return {
        "format": CACHE_FORMAT,
        "rules_version": RULES_VERSION,
        "files": {
            path: {
                "hash": entry.hash,
                "ids": list(entry.ids),
                "violations": [_encode_violation(v)
                               for v in entry.violations],
                "suppressions": [_encode_suppression(s)
                                 for s in entry.suppressions],
            }
            for path, entry in sorted(cache.files.items())
        },
        "flow": {
            "key": cache.flow_key,
            "violations": [_encode_violation(v)
                           for v in cache.flow_violations],
        },
    }


def _decode(payload: dict[str, Any]) -> LintCache:
    cache = LintCache()
    for path, raw in payload.get("files", {}).items():
        cache.files[str(path)] = FileEntry(
            hash=str(raw["hash"]),
            ids=tuple(str(i) for i in raw["ids"]),
            violations=[_decode_violation(v) for v in raw["violations"]],
            suppressions=[_decode_suppression(str(path), s)
                          for s in raw["suppressions"]],
        )
    flow = payload.get("flow", {})
    key = flow.get("key")
    cache.flow_key = str(key) if key is not None else None
    cache.flow_violations = [_decode_violation(v)
                             for v in flow.get("violations", [])]
    return cache


def _encode_violation(violation: Violation) -> list[Any]:
    return [violation.path, violation.line, violation.col,
            violation.rule_id, violation.message]


def _decode_violation(raw: list[Any]) -> Violation:
    path, line, col, rule_id, message = raw
    return Violation(str(path), int(line), int(col), str(rule_id),
                     str(message))


def _encode_suppression(sup: Suppression) -> list[Any]:
    return [sup.line, sup.col, list(sup.rule_ids), sup.reason,
            sup.malformed]


def _decode_suppression(path: str, raw: list[Any]) -> Suppression:
    line, col, rule_ids, reason, malformed = raw
    return Suppression(path=path, line=int(line), col=int(col),
                       rule_ids=tuple(str(r) for r in rule_ids),
                       reason=str(reason), malformed=bool(malformed))
