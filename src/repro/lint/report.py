"""Rendering lint results as terminal text or CI-consumable JSON."""

from __future__ import annotations

import json

from .engine import LintResult
from .rules import RULES

#: Bumped when the JSON schema changes shape.  v2 added the ``cache``
#: block (hits/misses/flow_from_cache) alongside the incremental cache.
JSON_SCHEMA_VERSION = 2


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RLxxx message`` per hit."""
    lines = [violation.render() for violation in result.violations]
    if result.violations:
        n_files = len({v.path for v in result.violations})
        lines.append(f"{len(result.violations)} violation"
                     f"{'s' if len(result.violations) != 1 else ''} "
                     f"in {n_files} file{'s' if n_files != 1 else ''} "
                     f"({result.files_checked} checked)")
    else:
        lines.append(f"clean: {result.files_checked} files checked")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report for the CI artifact."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "flow_from_cache": result.flow_from_cache,
        },
        "rules": {rule.id: {"name": rule.name, "summary": rule.summary}
                  for rule in RULES},
        "violations": [
            {"path": v.path, "line": v.line, "col": v.col,
             "rule": v.rule_id, "message": v.message}
            for v in result.violations
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
