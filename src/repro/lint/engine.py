"""File discovery, rule applicability, caching, and orchestration.

The engine turns paths into a deterministic file list (sorted recursive
walk — the linter obeys its own ordering rules), classifies each file as
``library`` or ``test`` context, applies the per-rule package and
exemption filters, runs the per-file AST pass, runs the whole-program
flow pass (:mod:`repro.lint.flow`) over the library files, and folds
both streams through suppression handling.

Two cache granularities (:mod:`repro.lint.cache`) make no-op reruns
cheap: per-file outputs are keyed by content hash + applicable rules,
and the flow pass — whose output depends on *every* library file — is
keyed by the hash of all of them.  Suppression *application* always
reruns (it depends on the active rule set), but on a warm cache no file
is parsed or tokenized at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import LintError
from .cache import (FileEntry, LintCache, content_hash, load_cache,
                    project_key, save_cache)
from .flow import analyze_project
from .rules import (FLOW_RULE_IDS, LIBRARY, RULES, TEST, Violation,
                    active_rule_ids, check_tree, rule)
from .suppressions import (Suppression, apply_suppressions,
                           extract_suppressions)

_KNOWN_IDS = frozenset(r.id for r in RULES)


@dataclass
class LintResult:
    """Outcome of a lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: Per-file cache statistics (both zero when no cache is in play).
    cache_hits: int = 0
    cache_misses: int = 0
    #: True when the whole-program flow pass was served from cache.
    flow_from_cache: bool = False

    @property
    def clean(self) -> bool:
        return not self.violations


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Raises
    ------
    LintError
        If a path does not exist or a file argument is not Python source.
    """
    seen: dict[str, Path] = {}
    for path in paths:
        if not path.exists():
            raise LintError(f"path does not exist: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = (path,)
        else:
            raise LintError(f"not a Python file: {path}")
        for candidate in candidates:
            seen.setdefault(candidate.resolve().as_posix(), candidate)
    return [seen[key] for key in sorted(seen)]


def classify_context(path: Path) -> str:
    """``test`` for anything under a ``tests`` directory, else ``library``."""
    return TEST if "tests" in path.resolve().parts else LIBRARY


def module_path(path: Path) -> str | None:
    """Dotted module path rooted at the ``repro`` package, when present."""
    parts = path.resolve().with_suffix("").parts
    try:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return None
    module = parts[anchor:]
    if module and module[-1] == "__init__":
        module = module[:-1]
    return ".".join(module)


def _applicable_ids(path: Path, context: str,
                    selected: frozenset[str]) -> frozenset[str]:
    posix = path.resolve().as_posix()
    module = module_path(path)
    applicable = set()
    for rule_id in selected:
        spec = rule(rule_id)
        if context not in spec.contexts:
            continue
        if any(posix.endswith(suffix) for suffix in spec.exempt):
            continue
        if spec.packages is not None and (
                module is None or not any(
                    module == pkg or module.startswith(pkg + ".")
                    for pkg in spec.packages)):
            continue
        applicable.add(rule_id)
    return frozenset(applicable)


# --------------------------------------------------------------------------
# Per-file bookkeeping
# --------------------------------------------------------------------------

@dataclass
class _FileState:
    """Everything the run needs to remember about one file."""

    path: Path
    posix: str
    context: str
    module: str | None
    applicable: frozenset[str]
    source: str
    hash: str
    raw: list[Violation] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    tree: ast.Module | None = None
    parse_failed: bool = False


def _per_file_pass(state: _FileState, cache: LintCache,
                   result: LintResult) -> None:
    """Raw violations + suppressions for one file, via cache when warm."""
    per_file_ids = tuple(sorted(state.applicable - FLOW_RULE_IDS))
    entry = cache.lookup(state.posix, state.hash, per_file_ids)
    if entry is not None:
        state.raw = list(entry.violations)
        state.suppressions = list(entry.suppressions)
        result.cache_hits += 1
        return
    result.cache_misses += 1
    applicable = frozenset(per_file_ids)
    try:
        state.tree = ast.parse(state.source, filename=state.posix)
    except SyntaxError as exc:
        state.parse_failed = True
        if "RL000" in applicable:
            state.raw = [Violation(
                state.posix, exc.lineno or 1, (exc.offset or 0) + 1,
                "RL000", f"syntax error: {exc.msg}")]
    else:
        state.raw = [v for v in check_tree(state.tree, state.posix)
                     if v.rule_id in applicable]
        state.suppressions = extract_suppressions(state.source, state.posix)
    cache.store(state.posix, FileEntry(
        hash=state.hash, ids=per_file_ids,
        violations=list(state.raw),
        suppressions=list(state.suppressions)))


def _flow_pass(states: list[_FileState], flow_ids: frozenset[str],
               cache: LintCache, result: LintResult) -> list[Violation]:
    """Whole-program violations over the library files, via cache."""
    members = [s for s in states
               if s.context == LIBRARY and s.module is not None]
    if not members or not flow_ids:
        return []
    key = project_key([(s.module, s.hash) for s in members
                       if s.module is not None], flow_ids)
    cached = cache.lookup_flow(key)
    if cached is not None:
        result.flow_from_cache = True
        return cached
    trees: dict[str, tuple[str, ast.Module]] = {}
    for state in members:
        if state.parse_failed:
            continue
        if state.tree is None:
            try:
                state.tree = ast.parse(state.source, filename=state.posix)
            except SyntaxError:
                state.parse_failed = True
                continue
        trees[state.module or ""] = (state.posix, state.tree)
    violations = [v for v in analyze_project(trees)
                  if v.rule_id in flow_ids]
    cache.store_flow(key, violations)
    return violations


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def lint_paths(paths: Sequence[Path | str], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               cache_path: Path | None = None) -> LintResult:
    """Lint files and directories; the library/CLI entry point.

    ``cache_path`` enables the incremental cache (the CLI defaults it to
    ``.reprolint-cache.json``; the library default is off so test
    fixtures stay hermetic).
    """
    selected = active_rule_ids(select, ignore)
    files = discover_files([Path(p) for p in paths])
    cache = load_cache(cache_path) if cache_path is not None else LintCache()
    result = LintResult()

    states: list[_FileState] = []
    for file_path in files:
        posix = file_path.as_posix()
        context = classify_context(file_path)
        source = file_path.read_text(encoding="utf-8")
        states.append(_FileState(
            path=file_path, posix=posix, context=context,
            module=module_path(file_path),
            applicable=_applicable_ids(file_path, context, selected),
            source=source, hash=content_hash(source)))

    for state in states:
        _per_file_pass(state, cache, result)
        result.files_checked += 1

    flow_violations = _flow_pass(states, selected & FLOW_RULE_IDS,
                                 cache, result)
    by_path: dict[str, list[Violation]] = {}
    for violation in flow_violations:
        by_path.setdefault(violation.path, []).append(violation)

    for state in states:
        merged = state.raw + [
            v for v in by_path.get(state.posix, [])
            if v.rule_id in state.applicable]
        merged.sort(key=lambda v: (v.line, v.col, v.rule_id))
        outcome = apply_suppressions(merged, state.suppressions,
                                     active_ids=state.applicable,
                                     known_ids=_KNOWN_IDS)
        result.violations.extend(outcome.kept + outcome.hygiene)

    result.violations.sort(
        key=lambda v: (v.path, v.line, v.col, v.rule_id))
    if cache_path is not None and cache.dirty:
        save_cache(cache_path, cache)
    return result


def lint_source(source: str, *, path: str = "<string>",
                context: str = LIBRARY,
                module: str | None = None,
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string (unit-test and fixture entry point).

    ``context`` is ``library`` or ``test``; ``module`` is the dotted
    module path used for package-scoped rules (defaults to a guess from
    ``path`` when it contains a ``repro`` component).  Flow rules run
    over a single-module project, so interprocedural findings *within*
    the string are reported; cross-module resolution needs
    :func:`lint_paths`.
    """
    selected = active_rule_ids(select, ignore)
    fake = Path(path if path != "<string>" else "string.py")
    if module is not None:
        # Honour an explicit module path by faking a file location for it.
        fake = Path("/".join(module.split("."))).with_suffix(".py")
    applicable = _applicable_ids(fake, context, selected)
    per_file = applicable - FLOW_RULE_IDS
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if "RL000" not in per_file:
            return []
        return [Violation(path, exc.lineno or 1, (exc.offset or 0) + 1,
                          "RL000", f"syntax error: {exc.msg}")]
    raw = [v for v in check_tree(tree, path) if v.rule_id in per_file]
    flow_ids = applicable & FLOW_RULE_IDS
    if flow_ids:
        module_name = module or module_path(fake) or "fixture"
        raw.extend(v for v in analyze_project(
            {module_name: (path, tree)}) if v.rule_id in flow_ids)
    raw.sort(key=lambda v: (v.line, v.col, v.rule_id))
    suppressions = extract_suppressions(source, path)
    outcome = apply_suppressions(raw, suppressions,
                                 active_ids=applicable,
                                 known_ids=_KNOWN_IDS)
    return outcome.kept + outcome.hygiene
