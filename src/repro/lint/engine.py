"""File discovery, per-file rule applicability, and orchestration.

The engine turns paths into a deterministic file list (sorted recursive
walk — the linter obeys its own ordering rules), classifies each file as
``library`` or ``test`` context, applies the per-rule package and
exemption filters, runs the AST pass, and folds in suppression handling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import LintError
from .rules import RULES, Violation, active_rule_ids, check_tree, rule
from .rules import LIBRARY, TEST
from .suppressions import apply_suppressions, extract_suppressions

_KNOWN_IDS = frozenset(r.id for r in RULES)


@dataclass
class LintResult:
    """Outcome of a lint run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Raises
    ------
    LintError
        If a path does not exist or a file argument is not Python source.
    """
    seen: dict[str, Path] = {}
    for path in paths:
        if not path.exists():
            raise LintError(f"path does not exist: {path}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = (path,)
        else:
            raise LintError(f"not a Python file: {path}")
        for candidate in candidates:
            seen.setdefault(candidate.resolve().as_posix(), candidate)
    return [seen[key] for key in sorted(seen)]


def classify_context(path: Path) -> str:
    """``test`` for anything under a ``tests`` directory, else ``library``."""
    return TEST if "tests" in path.resolve().parts else LIBRARY


def module_path(path: Path) -> str | None:
    """Dotted module path rooted at the ``repro`` package, when present."""
    parts = path.resolve().with_suffix("").parts
    try:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return None
    module = parts[anchor:]
    if module and module[-1] == "__init__":
        module = module[:-1]
    return ".".join(module)


def _applicable_ids(path: Path, context: str,
                    selected: frozenset[str]) -> frozenset[str]:
    posix = path.resolve().as_posix()
    module = module_path(path)
    applicable = set()
    for rule_id in selected:
        spec = rule(rule_id)
        if context not in spec.contexts:
            continue
        if any(posix.endswith(suffix) for suffix in spec.exempt):
            continue
        if spec.packages is not None:
            if module is None or not any(
                    module == pkg or module.startswith(pkg + ".")
                    for pkg in spec.packages):
                continue
        applicable.add(rule_id)
    return frozenset(applicable)


def lint_source(source: str, *, path: str = "<string>",
                context: str = LIBRARY,
                module: str | None = None,
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string (unit-test and fixture entry point).

    ``context`` is ``library`` or ``test``; ``module`` is the dotted
    module path used for package-scoped rules (defaults to a guess from
    ``path`` when it contains a ``repro`` component).
    """
    selected = active_rule_ids(select, ignore)
    fake = Path(path if path != "<string>" else "string.py")
    if module is not None:
        # Honour an explicit module path by faking a file location for it.
        fake = Path("/".join(module.split("."))).with_suffix(".py")
    applicable = _applicable_ids(fake, context, selected)
    return _lint_text(source, path, applicable)


def lint_paths(paths: Sequence[Path | str], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> LintResult:
    """Lint files and directories; the library/CLI entry point."""
    selected = active_rule_ids(select, ignore)
    files = discover_files([Path(p) for p in paths])
    result = LintResult()
    for file_path in files:
        context = classify_context(file_path)
        applicable = _applicable_ids(file_path, context, selected)
        source = file_path.read_text(encoding="utf-8")
        result.violations.extend(
            _lint_text(source, file_path.as_posix(), applicable))
        result.files_checked += 1
    result.violations.sort(
        key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return result


def _lint_text(source: str, path: str,
               applicable: frozenset[str]) -> list[Violation]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if "RL000" not in applicable:
            return []
        return [Violation(path, exc.lineno or 1, (exc.offset or 0) + 1,
                          "RL000", f"syntax error: {exc.msg}")]
    raw = [v for v in check_tree(tree, path) if v.rule_id in applicable]
    suppressions = extract_suppressions(source, path)
    outcome = apply_suppressions(raw, suppressions,
                                 active_ids=applicable,
                                 known_ids=_KNOWN_IDS)
    return outcome.kept + outcome.hygiene
