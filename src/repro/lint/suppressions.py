"""Inline suppression comments and their hygiene checks.

Grammar (one comment per line, anywhere after code)::

    # reprolint: disable=RL007
    # reprolint: disable=RL007,RL012
    # reprolint: disable=RL007, exact mathematical special case

Rule IDs are comma/whitespace separated; the first token that is not
shaped like an ID starts the free-text reason.  Comments are discovered
with :mod:`tokenize`, so a ``# reprolint:`` inside a string literal is
never mistaken for a directive.

Suppressions are themselves linted (rule ``RL010``):

* a directive with no parseable rule IDs is malformed;
* an ID that is not a registered rule is unknown;
* an ID that suppressed no violation on its line is *stale* — the code
  was fixed but the comment lingers (staleness is only judged for rules
  active in the current run, so ``--select`` slices do not cry wolf).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from .rules import Violation, is_rule_id

_DIRECTIVE_RE = re.compile(r"#\s*reprolint:\s*disable=(?P<body>.*)$")


@dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: disable=...`` directive."""

    path: str
    line: int
    col: int
    rule_ids: tuple[str, ...]
    reason: str
    malformed: bool = False


@dataclass
class SuppressionOutcome:
    """What suppression application produced."""

    kept: list[Violation] = field(default_factory=list)
    hygiene: list[Violation] = field(default_factory=list)


def extract_suppressions(source: str, path: str) -> list[Suppression]:
    """Scan ``source`` for directives via the token stream."""
    found: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE_RE.search(tok.string)
            if match is None:
                continue
            found.append(_parse_directive(
                match.group("body"), path,
                tok.start[0], tok.start[1] + 1))
    except tokenize.TokenizeError:
        # The AST pass reports the syntax problem (RL000); nothing to do.
        return []
    return found


def _parse_directive(body: str, path: str, line: int,
                     col: int) -> Suppression:
    ids: list[str] = []
    reason = ""
    tokens = [t for t in re.split(r"[,\s]+", body.strip()) if t]
    for index, token in enumerate(tokens):
        if is_rule_id(token):
            ids.append(token)
        else:
            reason = " ".join(tokens[index:])
            break
    return Suppression(path=path, line=line, col=col,
                       rule_ids=tuple(ids), reason=reason,
                       malformed=not ids)


def apply_suppressions(violations: list[Violation],
                       suppressions: list[Suppression],
                       active_ids: frozenset[str],
                       known_ids: frozenset[str]) -> SuppressionOutcome:
    """Filter ``violations`` through ``suppressions``; emit RL010 hygiene.

    A directive silences violations of its rule IDs on its own line.
    ``RL010`` itself can be suppressed (``disable=RL010``), and such
    entries are exempt from staleness so the escape hatch cannot recurse.
    """
    outcome = SuppressionOutcome()
    used: set[tuple[int, str]] = set()

    by_line: dict[int, set[str]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, set()).update(sup.rule_ids)

    for violation in violations:
        silencers = by_line.get(violation.line, set())
        if violation.rule_id in silencers:
            used.add((violation.line, violation.rule_id))
        else:
            outcome.kept.append(violation)

    hygiene_active = "RL010" in active_ids
    rl010_silenced: set[int] = {
        sup.line for sup in suppressions if "RL010" in sup.rule_ids}

    def emit(sup: Suppression, message: str) -> None:
        if not hygiene_active or sup.line in rl010_silenced:
            return
        outcome.hygiene.append(Violation(
            sup.path, sup.line, sup.col, "RL010", message))

    for sup in suppressions:
        if sup.malformed:
            emit(sup, "malformed suppression: no rule IDs after 'disable='")
            continue
        for rule_id in sup.rule_ids:
            if rule_id not in known_ids:
                emit(sup, f"unknown rule id {rule_id} in suppression")
            elif rule_id == "RL010":
                continue  # the escape hatch is never judged stale
            elif (rule_id in active_ids
                  and (sup.line, rule_id) not in used):
                emit(sup, f"stale suppression: {rule_id} no longer fires "
                          f"on line {sup.line}")
    return outcome
