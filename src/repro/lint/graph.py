"""Project-wide module/symbol resolution and the call graph.

The per-file pass in :mod:`repro.lint.rules` sees one AST at a time; the
flow rules in :mod:`repro.lint.flow` need to know *what a call refers
to* across the whole project — through aliased imports, package
re-exports, relative imports, and ``self.method()`` dispatch.  This
module builds that picture:

:class:`ModuleIndex`
    One parsed module: its import alias table (local name → absolute
    dotted target, relative imports resolved against the module path),
    its functions and methods (nested defs included, with
    ``outer.<locals>.inner`` qualnames), and its classes.

:class:`Project`
    The module set plus name canonicalization.  ``canonical()`` chases
    import chains across modules — ``repro.lint.lint_paths`` resolves to
    ``repro.lint.engine.lint_paths`` through the package re-export — and
    ``resolve_call()`` turns a call site into an absolute function name
    where statically possible.  Resolution is deliberately conservative:
    an unresolvable callee is ``None``, never a guess.

``Project.call_graph()`` maps each project function to the project
functions it calls; cycles are fine — consumers iterate summaries to a
fixpoint rather than relying on a topological order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Sentinel path component for functions nested inside other functions
#: (CPython's own qualname convention).
_LOCALS = "<locals>"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, addressable by absolute dotted name."""

    name: str                 #: absolute: ``module.qualname``
    module: str               #: dotted module path
    qualname: str             #: e.g. ``FeedWorker.run`` or ``f.<locals>.g``
    path: str                 #: source file (violation attribution)
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_name: str | None    #: immediately enclosing class, if a method


@dataclass
class ModuleIndex:
    """Symbol tables for one parsed module."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool
    #: local alias -> absolute dotted target (imports only).
    imports: dict[str, str] = field(default_factory=dict)
    #: qualname -> function (methods and nested functions included).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> method names defined directly on it.
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


def shallow_children(node: ast.AST) -> list[ast.AST]:
    """Child statements/expressions, not descending into nested scopes.

    Function and class bodies introduce new scopes with their own
    analyses; walking into them from the enclosing scope would blur,
    e.g., an ``async def`` helper's awaits into its synchronous parent.
    """
    out: list[ast.AST] = []
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        out.append(child)
    return out


def shallow_walk(node: ast.AST) -> list[ast.AST]:
    """Every node in ``node``'s own scope (nested scopes excluded)."""
    out: list[ast.AST] = []
    stack = shallow_children(node)
    while stack:
        cursor = stack.pop()
        out.append(cursor)
        stack.extend(shallow_children(cursor))
    return out


def _resolve_relative(package: str, level: int, module: str | None) -> str:
    """Absolute module targeted by ``from <dots><module> import ...``."""
    parts = package.split(".") if package else []
    ascend = level - 1
    if ascend:
        parts = parts[:-ascend] if ascend < len(parts) else []
    if module:
        parts.extend(module.split("."))
    return ".".join(parts)


def index_module(name: str, path: str, tree: ast.Module) -> ModuleIndex:
    """Build the symbol tables for one module."""
    index = ModuleIndex(name=name, path=path, tree=tree,
                        is_package=path.endswith("__init__.py"))
    _collect_imports(index, tree)
    _collect_defs(index, tree, prefix="", class_name=None)
    return index


def _collect_imports(index: ModuleIndex, tree: ast.Module) -> None:
    # Imports anywhere in the file count (function-local imports are
    # idiomatic in this repo for optional/lazy deps).
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                index.imports[local] = (alias.name if alias.asname
                                        else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(index.package, node.level,
                                         node.module)
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                index.imports[local] = f"{base}.{alias.name}"


def _collect_defs(index: ModuleIndex, node: ast.AST, *, prefix: str,
                  class_name: str | None) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{child.name}"
            index.functions[qualname] = FunctionInfo(
                name=f"{index.name}.{qualname}",
                module=index.name,
                qualname=qualname,
                path=index.path,
                node=child,
                is_async=isinstance(child, ast.AsyncFunctionDef),
                class_name=class_name,
            )
            _collect_defs(index, child,
                          prefix=f"{qualname}.{_LOCALS}.",
                          class_name=None)
        elif isinstance(child, ast.ClassDef):
            methods = tuple(
                sub.name for sub in child.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)))
            index.classes[f"{prefix}{child.name}"] = methods
            _collect_defs(index, child, prefix=f"{prefix}{child.name}.",
                          class_name=f"{prefix}{child.name}")
        elif isinstance(child, (ast.If, ast.Try, ast.With)):
            # Defs behind `if TYPE_CHECKING:` or try/except still count.
            _collect_defs(index, child, prefix=prefix,
                          class_name=class_name)


class Project:
    """All indexed modules plus cross-module name resolution."""

    #: Chase at most this many import-alias hops (cycles terminate early
    #: via the visited set; the bound is belt and braces).
    _MAX_HOPS = 16

    def __init__(self, modules: dict[str, ModuleIndex]) -> None:
        self.modules = modules
        self._functions: dict[str, FunctionInfo] = {}
        for module in modules.values():
            for info in module.functions.values():
                self._functions[info.name] = info

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trees(cls, trees: dict[str, tuple[str, ast.Module]]
                   ) -> Project:
        """Build a project from ``{module_name: (path, tree)}``."""
        modules = {
            name: index_module(name, path, tree)
            for name, (path, tree) in sorted(trees.items())
        }
        return cls(modules)

    # -- name canonicalization ---------------------------------------------

    def canonical(self, dotted: str) -> str:
        """Chase import aliases until ``dotted`` names a real symbol.

        ``repro.lint.lint_paths`` → ``repro.lint.engine.lint_paths`` when
        the package front re-exports the engine function.  Names that
        leave the project (``numpy.random.default_rng``) come back
        unchanged past the last resolvable hop.
        """
        seen: set[str] = set()
        current = dotted
        for _ in range(self._MAX_HOPS):
            if current in seen:
                return current
            seen.add(current)
            step = self._canonical_step(current)
            if step is None or step == current:
                return current
            current = step
        return current

    def _canonical_step(self, dotted: str) -> str | None:
        module = self._longest_module_prefix(dotted)
        if module is None:
            return None
        rest = dotted[len(module.name):].lstrip(".")
        if not rest:
            return dotted
        head, _, tail = rest.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted  # locally defined symbol: already canonical
        return f"{target}.{tail}" if tail else target

    def _longest_module_prefix(self, dotted: str) -> ModuleIndex | None:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            module = self.modules.get(candidate)
            if module is not None:
                return module
        return None

    # -- lookup ------------------------------------------------------------

    def function(self, absname: str) -> FunctionInfo | None:
        """The project function with this canonical name, if any."""
        return self._functions.get(self.canonical(absname))

    def functions(self) -> list[FunctionInfo]:
        """Every project function, in deterministic name order."""
        return [self._functions[name] for name in sorted(self._functions)]

    def class_of(self, absname: str) -> str | None:
        """Canonical name when ``absname`` names a project class."""
        canonical = self.canonical(absname)
        module = self._longest_module_prefix(canonical)
        if module is None:
            return None
        rest = canonical[len(module.name):].lstrip(".")
        return canonical if rest in module.classes else None

    # -- call-site resolution ----------------------------------------------

    def resolve_call(self, module: ModuleIndex, owner: FunctionInfo | None,
                     func: ast.expr,
                     local_types: dict[str, str] | None = None
                     ) -> str | None:
        """Absolute dotted name of a call target, or ``None``.

        ``owner`` is the enclosing function (``self.x()`` dispatches into
        its class); ``local_types`` optionally maps local variable names
        to class absnames for one-hop instance dispatch
        (``w = Worker(); w.run()``).
        """
        parts: list[str] = []
        cursor = func
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.reverse()
        root = cursor.id

        if root in ("self", "cls") and owner is not None \
                and owner.class_name is not None and len(parts) == 1:
            return self.canonical(
                f"{owner.module}.{owner.class_name}.{parts[0]}")

        if local_types is not None and root in local_types \
                and len(parts) == 1:
            return self.canonical(f"{local_types[root]}.{parts[0]}")

        if not parts and owner is not None:
            nested = self._resolve_nested(owner, root)
            if nested is not None:
                return nested

        target = module.imports.get(root)
        if target is not None:
            suffix = ".".join(parts)
            return self.canonical(f"{target}.{suffix}" if suffix else target)

        # A bare local definition in the same module.
        qualname = ".".join([root, *parts])
        if qualname in module.functions or root in module.classes:
            return self.canonical(f"{module.name}.{qualname}")
        return None

    def _resolve_nested(self, owner: FunctionInfo, name: str) -> str | None:
        """A bare name called inside ``owner`` may be its nested def."""
        module = self.modules.get(owner.module)
        if module is None:
            return None
        qualname = f"{owner.qualname}.{_LOCALS}.{name}"
        if qualname in module.functions:
            return f"{owner.module}.{qualname}"
        return None

    # -- call graph ---------------------------------------------------------

    def call_graph(self) -> dict[str, tuple[str, ...]]:
        """``{function absname: called project-function absnames}``.

        Only edges to *project* functions appear; external calls are the
        flow pass's business (it needs their names, not graph edges).
        """
        graph: dict[str, tuple[str, ...]] = {}
        for info in self.functions():
            module = self.modules[info.module]
            callees: set[str] = set()
            for node in shallow_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(module, info, node.func)
                if resolved is not None and resolved in self._functions:
                    callees.add(resolved)
            graph[info.name] = tuple(sorted(callees))
        return graph
