"""SARIF 2.1.0 output for GitHub code-scanning annotations.

The document is the minimal valid shape code scanning consumes: one run,
a ``tool.driver`` carrying the full rule registry (so every ``ruleId``
in ``results`` resolves), and one ``result`` per violation with a
physical location.  Paths are emitted exactly as linted (repo-relative
when the CLI was invoked from the repo root, which is how CI runs it).
"""

from __future__ import annotations

import json
from typing import Any

from .engine import LintResult
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(result: LintResult) -> str:
    """The SARIF document for ``result`` as an indented JSON string."""
    rules: list[dict[str, Any]] = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in RULES
    ]
    results: list[dict[str, Any]] = [
        {
            "ruleId": violation.rule_id,
            "ruleIndex": _RULE_INDEX[violation.rule_id],
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col,
                        },
                    }
                }
            ],
        }
        for violation in result.violations
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri":
                            "https://example.invalid/repro/docs/LINTING.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


_RULE_INDEX = {rule.id: index for index, rule in enumerate(RULES)}
