"""Interprocedural dataflow: RNG escape, dtype propagation, asyncio.

Built on :mod:`repro.lint.graph`.  The analysis is *intraprocedural with
function summaries*: each function is analyzed on its own AST with a
small abstract-tag lattice (``rng``, ``f32``, ``f64``, ``executor``,
``lock``, ``param:i``), and the effects that cross function boundaries —
"returns an rng", "leaks parameter 2 to a module global", "blocks on
file I/O" — are folded into a :class:`FunctionSummary`.  Summaries are
iterated to a fixpoint (the lattice is finite and the transfer functions
monotone, so cycles in the call graph converge), then a second pass
walks every function with the final summaries and emits violations.

Rule families (IDs are stable; see :mod:`repro.lint.rules`):

RL020–RL023 (RNG flow)
    A ``make_rng``/``spawn``-derived ``Generator`` must not be bound to
    a module global (directly or through a callee), must not be drawn
    from after ``spawn``/``spawn_sequences`` split it, and must not
    cross a pickle/executor process boundary — SeedSequences are the
    sanctioned cross-process currency.

RL030–RL032 (dtype propagation)
    float32/float64 mixing in arithmetic, and float32 values reaching a
    serialization/codec sink (directly or through a callee).  The
    artifact contract is float64 end to end.

RL040–RL043 (asyncio discipline)
    Blocking calls inside ``async def`` (reported at the *deepest*
    project frame: a direct external call, or a call into a synchronous
    project function whose summary blocks — calls into ``async``
    project functions are never re-reported at the caller), bare
    never-awaited coroutine calls, unbounded ``asyncio.Queue``
    construction, and ``await`` of long-wait operations while a lock is
    held.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from .graph import FunctionInfo, ModuleIndex, Project, shallow_walk
from .rules import Violation

# --------------------------------------------------------------------------
# Abstract tags
# --------------------------------------------------------------------------

_RNG = "rng"          #: a numpy Generator derived from the seed tree
_RNG_SEQ = "rng-seq"  #: a sequence of Generators (repro.rng.spawn result)
_F32 = "f32"
_F64 = "f64"
_EXECUTOR = "executor"
_LOCK = "lock"
_PARAM = "param:"     #: prefix; ``param:2`` marks the owner's third arg


def _param_indices(tags: set[str]) -> list[int]:
    return sorted(int(t[len(_PARAM):]) for t in tags if t.startswith(_PARAM))


# --------------------------------------------------------------------------
# Name sets
# --------------------------------------------------------------------------

#: Calls that mint a Generator.  ``repro.rng.make_rng`` is also derived
#: from its own summary; listing it keeps single-file fixture projects
#: (where repro.rng is not indexed) honest.
_RNG_FACTORIES = frozenset((
    "numpy.random.default_rng", "repro.rng.make_rng",
))

#: Calls returning a list of child Generators / SeedSequences.  Their
#: first argument is the parent, which must not be drawn from afterwards.
_SPAWN_CALLS = frozenset(("repro.rng.spawn", "repro.rng.spawn_sequences"))

#: Generator methods that consume bit-stream state.
_DRAW_METHODS = frozenset((
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "normal", "standard_normal", "uniform", "exponential", "lognormal",
    "poisson", "pareto", "zipf", "binomial", "geometric", "beta", "gamma",
    "weibull", "bytes",
))

#: External calls that synchronously block (I/O, sleeps, subprocesses).
_BLOCKING_CALLS = frozenset((
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.fdopen", "os.replace", "os.rename", "os.remove", "os.makedirs",
    "shutil.copy", "shutil.copyfile", "shutil.move", "shutil.rmtree",
    "numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.savetxt",
    "numpy.load", "numpy.loadtxt", "numpy.genfromtxt",
    "socket.create_connection",
))

#: Blocking builtins (flagged only when not shadowed by an import/local).
_BLOCKING_BUILTINS = frozenset(("open", "input"))

#: pathlib-style I/O method names on unresolved receivers.
_BLOCKING_METHODS = frozenset((
    "read_text", "write_text", "read_bytes", "write_bytes",
    "unlink", "mkdir", "touch",
))

#: Calls that move an object across a process/serialization boundary.
_BOUNDARY_CALLS = frozenset((
    "pickle.dump", "pickle.dumps",
    "multiprocessing.Pool", "multiprocessing.Process",
))

#: Executor constructors; their instances' submit/map are boundaries.
_EXECUTOR_CTORS = frozenset((
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "multiprocessing.Pool",
))

_EXECUTOR_METHODS = frozenset(("submit", "map"))

#: External serialization sinks for the dtype rules.
_DTYPE_SINK_CALLS = frozenset((
    "numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.savetxt",
    "pickle.dump", "pickle.dumps", "struct.pack",
))

#: Project modules whose public functions are codec/serialization sinks.
_DTYPE_SINK_MODULES = (
    "repro.trace.codecs", "repro.trace.store", "repro.trace.wms_log",
    "repro.stream.checkpoint",
)

_LOCK_CTORS = frozenset((
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
    "asyncio.BoundedSemaphore", "threading.Lock", "threading.RLock",
))

_QUEUE_CTORS = frozenset((
    "asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue",
))

#: Awaitables that can park the coroutine for a long time (RL043).
_ASYNC_WAIT_CALLS = frozenset((
    "asyncio.sleep", "asyncio.wait", "asyncio.wait_for", "asyncio.gather",
))

_ASYNC_WAIT_METHODS = frozenset((
    "get", "put", "join", "wait", "wait_for", "acquire", "drain",
))

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
              ast.Mod, ast.Pow, ast.MatMult)


def _pretty(dotted: str) -> str:
    return dotted.replace("numpy.", "np.")


def _short(absname: str) -> str:
    return absname.rsplit(".", 1)[-1]


# --------------------------------------------------------------------------
# Function summaries
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FunctionSummary:
    """Boundary-crossing effects of one function, for its callers."""

    returns_rng: bool = False
    #: ``'f32'``/``'f64'`` when the return value has a known float dtype.
    returns_dtype: str | None = None
    #: Evidence string when calling this (sync) function blocks.
    blocking: str | None = None
    #: Parameter indices bound to a module global inside (RL023 at caller).
    rng_leak_params: frozenset[int] = frozenset()
    #: Parameter indices passed into a process boundary inside (RL022).
    rng_boundary_params: frozenset[int] = frozenset()
    #: Parameter indices reaching a serialization sink inside (RL032).
    f32_sink_params: frozenset[int] = frozenset()


class FlowAnalysis:
    """Summary fixpoint plus the emission pass over one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: dict[str, FunctionSummary] = {}
        #: class absname -> attribute name -> tags (``self.x = Lock()``).
        self.class_attrs: dict[str, dict[str, frozenset[str]]] = {}

    def run(self) -> list[Violation]:
        """Compute summaries, then emit violations for every scope."""
        self._collect_class_attrs()
        self._fixpoint()
        out: list[Violation] = []
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            _Analyzer(self, module, None, out).run()
        for info in self.project.functions():
            _Analyzer(self, self.project.modules[info.module],
                      info, out).run()
        return out

    # -- class attribute tags ---------------------------------------------

    def _collect_class_attrs(self) -> None:
        for module_name in sorted(self.project.modules):
            module = self.project.modules[module_name]
            for cls_qualname in sorted(module.classes):
                absname = f"{module.name}.{cls_qualname}"
                attrs: dict[str, frozenset[str]] = {}
                for method in module.classes[cls_qualname]:
                    info = module.functions.get(f"{cls_qualname}.{method}")
                    if info is None:
                        continue
                    self._scan_self_assigns(module, info, attrs)
                if attrs:
                    self.class_attrs[absname] = attrs

    def _scan_self_assigns(self, module: ModuleIndex, info: FunctionInfo,
                           attrs: dict[str, frozenset[str]]) -> None:
        for node in shallow_walk(info.node):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            resolved = self.project.resolve_call(module, info,
                                                node.value.func)
            tags = _ctor_tags(resolved)
            if resolved in _RNG_FACTORIES \
                    or self._returns_rng_name(resolved):
                tags = tags | {_RNG}
            if not tags:
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs[target.attr] = attrs.get(
                        target.attr, frozenset()) | tags

    def _returns_rng_name(self, resolved: str | None) -> bool:
        if resolved is None:
            return False
        info = self.project.function(resolved)
        if info is None:
            return False
        summary = self.summaries.get(info.name)
        return summary is not None and summary.returns_rng

    # -- fixpoint ----------------------------------------------------------

    def _fixpoint(self) -> None:
        funcs = self.project.functions()
        self.summaries = {info.name: FunctionSummary() for info in funcs}
        # The lattice height bounds the iteration count far below this.
        for _ in range(len(funcs) + 2):
            changed = False
            for info in funcs:
                analyzer = _Analyzer(
                    self, self.project.modules[info.module], info, None)
                updated = analyzer.run()
                if updated != self.summaries[info.name]:
                    self.summaries[info.name] = updated
                    changed = True
            if not changed:
                return


def _ctor_tags(resolved: str | None) -> frozenset[str]:
    if resolved is None:
        return frozenset()
    if resolved in _LOCK_CTORS:
        return frozenset((_LOCK,))
    if resolved in _EXECUTOR_CTORS:
        return frozenset((_EXECUTOR,))
    return frozenset()


# --------------------------------------------------------------------------
# Per-function abstract interpretation
# --------------------------------------------------------------------------

class _Analyzer:
    """One pass over one scope (a function body or the module top level).

    With ``out=None`` the pass only computes the scope's summary (the
    fixpoint mode); with an output list it also emits violations using
    the final summaries.
    """

    def __init__(self, flow: FlowAnalysis, module: ModuleIndex,
                 owner: FunctionInfo | None,
                 out: list[Violation] | None) -> None:
        self.flow = flow
        self.project = flow.project
        self.module = module
        self.owner = owner
        self.out = out
        self.path = owner.path if owner is not None else module.path
        self.is_async = owner is not None and owner.is_async
        self.tags: dict[str, set[str]] = {}
        self.local_types: dict[str, str] = {}
        self.spawned: set[str] = set()
        self.globals_declared: set[str] = set()
        self.lock_depth = 0
        # Mutable summary fields, frozen on return.
        self._returns_rng = False
        self._returns_dtype: str | None = None
        self._blocking: str | None = None
        self._leak_params: set[int] = set()
        self._boundary_params: set[int] = set()
        self._sink_params: set[int] = set()

    # -- entry -------------------------------------------------------------

    def run(self) -> FunctionSummary:
        if self.owner is not None:
            node = self.owner.node
            params = [*node.args.posonlyargs, *node.args.args,
                      *node.args.kwonlyargs]
            for index, param in enumerate(params):
                self.tags[param.arg] = {f"{_PARAM}{index}"}
            self._stmts(node.body)
        else:
            self._stmts(self.module.tree.body)
        return FunctionSummary(
            returns_rng=self._returns_rng,
            returns_dtype=self._returns_dtype,
            blocking=self._blocking,
            rng_leak_params=frozenset(self._leak_params),
            rng_boundary_params=frozenset(self._boundary_params),
            f32_sink_params=frozenset(self._sink_params),
        )

    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        if self.out is None:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.out.append(Violation(self.path, int(line), int(col) + 1,
                                  rule_id, message))

    # -- statements --------------------------------------------------------

    def _stmts(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes get their own analyzer
        if isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
        elif isinstance(node, ast.Assign):
            tags = self._expr(node.value)
            for target in node.targets:
                self._bind(target, tags, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._expr(node.value), node.value)
        elif isinstance(node, ast.AugAssign):
            self._expr(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                tags = self._expr(node.value)
                if _RNG in tags or _RNG_SEQ in tags:
                    self._returns_rng = True
                if _F32 in tags:
                    self._returns_dtype = _F32
                elif _F64 in tags and self._returns_dtype is None:
                    self._returns_dtype = _F64
        elif isinstance(node, ast.Expr):
            self._check_unawaited(node.value)
            self._expr(node.value)
        elif isinstance(node, ast.If):
            self._expr(node.test)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_tags = self._expr(node.iter)
            element = {_RNG} if _RNG_SEQ in iter_tags else set()
            self._bind(node.target, element, None)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, ast.While):
            self._expr(node.test)
            self._stmts(node.body)
            self._stmts(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Try):
            self._stmts(node.body)
            for handler in node.handlers:
                self._stmts(handler.body)
            self._stmts(node.orelse)
            self._stmts(node.finalbody)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = False
        for item in node.items:
            tags = self._expr(item.context_expr)
            locked = locked or _LOCK in tags
            if item.optional_vars is not None:
                self._bind(item.optional_vars, tags, item.context_expr)
        if locked:
            self.lock_depth += 1
        self._stmts(node.body)
        if locked:
            self.lock_depth -= 1

    # -- binding -----------------------------------------------------------

    def _bind(self, target: ast.expr, tags: set[str],
              value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if _RNG in tags or _RNG_SEQ in tags:
                if self.owner is None:
                    self._emit(target, "RL020",
                               f"Generator bound to module global '{name}'; "
                               "generators must stay scoped to their seed "
                               "block")
                elif name in self.globals_declared:
                    self._emit(target, "RL020",
                               f"Generator bound to module global '{name}' "
                               "via `global`; generators must stay scoped "
                               "to their seed block")
            if self.owner is not None and name in self.globals_declared:
                for index in _param_indices(tags):
                    self._leak_params.add(index)
            self.tags[name] = set(tags)
            self.spawned.discard(name)
            self._bind_instance_type(name, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = {_RNG} if _RNG_SEQ in tags else set()
            if isinstance(value, (ast.Tuple, ast.List)) \
                    and len(value.elts) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts,
                                                 strict=True):
                    self._bind(sub_target, self._expr(sub_value), sub_value)
            else:
                for sub_target in target.elts:
                    self._bind(sub_target, set(element), None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags, None)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._expr(target.value)

    def _bind_instance_type(self, name: str, value: ast.expr | None) -> None:
        self.local_types.pop(name, None)
        if not isinstance(value, ast.Call):
            return
        resolved = self.project.resolve_call(self.module, self.owner,
                                             value.func, self.local_types)
        if resolved is not None \
                and self.project.class_of(resolved) is not None:
            self.local_types[name] = resolved

    # -- expressions -------------------------------------------------------

    def _expr(self, node: ast.expr | None) -> set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.tags.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Await):
            if self.lock_depth > 0 and isinstance(node.value, ast.Call):
                self._check_lock_wait(node.value)
            return self._expr(node.value)
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            if isinstance(node.op, _ARITH_OPS) and (
                    (_F32 in left and _F64 in right)
                    or (_F64 in left and _F32 in right)):
                self._emit(node, "RL030",
                           "float32/float64 operands mixed in arithmetic; "
                           "the implicit upcast changes serialized bytes")
            return left | right
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id in ("self", "cls"):
                return set(self._self_attr_tags(node.attr))
            self._expr(node.value)
            return set()
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value)
            self._expr(node.slice)
            return {_RNG} if _RNG_SEQ in base else set()
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            combined: set[str] = set()
            for elt in node.elts:
                combined |= self._expr(elt)
            return combined
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, ast.NamedExpr):
            tags = self._expr(node.value)
            self._bind(node.target, tags, node.value)
            return tags
        if isinstance(node, ast.Lambda):
            return set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for condition in child.ifs:
                    self._expr(condition)
        return set()

    def _self_attr_tags(self, attr: str) -> frozenset[str]:
        if self.owner is None or self.owner.class_name is None:
            return frozenset()
        absname = f"{self.owner.module}.{self.owner.class_name}"
        return self.flow.class_attrs.get(absname, {}).get(attr, frozenset())

    # -- calls -------------------------------------------------------------

    def _call(self, node: ast.Call) -> set[str]:
        resolved = self.project.resolve_call(self.module, self.owner,
                                             node.func, self.local_types)
        bound_method = self._is_bound_call(node.func)
        arg_tags = [self._expr(arg) for arg in node.args]
        kw_tags: dict[str, set[str]] = {
            kw.arg: self._expr(kw.value)
            for kw in node.keywords if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self._expr(kw.value)
        receiver_tags: set[str] = set()
        if isinstance(node.func, ast.Attribute):
            receiver_tags = self._expr(node.func.value)

        self._check_queue_ctor(node, resolved)
        self._check_draw_after_spawn(node)
        self._mark_spawn(node, resolved)
        self._check_blocking(node, resolved)
        self._check_boundary(node, resolved, receiver_tags,
                             arg_tags, kw_tags)
        self._check_dtype_sink(node, resolved, arg_tags, kw_tags)
        self._check_callee_summary(node, resolved, bound_method,
                                   arg_tags, kw_tags)
        return self._result_tags(node, resolved, receiver_tags)

    def _is_bound_call(self, func: ast.expr) -> bool:
        return (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (func.value.id in ("self", "cls")
                     or func.value.id in self.local_types))

    # RL042 ---------------------------------------------------------------

    def _check_queue_ctor(self, node: ast.Call,
                          resolved: str | None) -> None:
        if resolved not in _QUEUE_CTORS:
            return
        for kw in node.keywords:
            if kw.arg == "maxsize":
                if isinstance(kw.value, ast.Constant) and kw.value.value == 0:
                    break
                return
        else:
            if node.args:
                first = node.args[0]
                if not (isinstance(first, ast.Constant)
                        and first.value == 0):
                    return
        self._emit(node, "RL042",
                   f"{_pretty(resolved)}() without a maxsize bound; "
                   "unbounded buffers defeat the load-shedding contract")

    # RL021 ---------------------------------------------------------------

    def _check_draw_after_spawn(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            return
        name = func.value.id
        if name in self.spawned and func.attr in _DRAW_METHODS:
            self._emit(node, "RL021",
                       f"draw from '{name}.{func.attr}()' after "
                       f"spawn({name}, ...); drawing from a split parent "
                       "reorders the seed-derivation tree")

    def _mark_spawn(self, node: ast.Call, resolved: str | None) -> None:
        if resolved in _SPAWN_CALLS and node.args:
            parent = node.args[0]
            if isinstance(parent, ast.Name):
                self.spawned.add(parent.id)
            return
        # Generator.spawn(n) splits the receiver the same way.
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "spawn"
                and isinstance(func.value, ast.Name)
                and _RNG in self.tags.get(func.value.id, set())):
            self.spawned.add(func.value.id)

    # RL040 + blocking summaries ------------------------------------------

    def _check_blocking(self, node: ast.Call, resolved: str | None) -> None:
        evidence = self._blocking_evidence(node, resolved)
        if evidence is None:
            return
        if self._blocking is None:
            self._blocking = evidence
        if self.is_async and self.owner is not None:
            self._emit(node, "RL040",
                       f"blocking call {evidence} inside async def "
                       f"{self.owner.qualname}; it stalls the event loop")

    def _blocking_evidence(self, node: ast.Call,
                           resolved: str | None) -> str | None:
        if resolved is not None and resolved in _BLOCKING_CALLS:
            return f"{_pretty(resolved)}()"
        func = node.func
        if (isinstance(func, ast.Name)
                and func.id in _BLOCKING_BUILTINS
                and func.id not in self.module.imports
                and func.id not in self.tags):
            return f"{func.id}()"
        if (resolved is None and isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_METHODS):
            return f".{func.attr}()"
        return None

    # RL022/RL031 direct sinks --------------------------------------------

    def _check_boundary(self, node: ast.Call, resolved: str | None,
                        receiver_tags: set[str],
                        arg_tags: list[set[str]],
                        kw_tags: dict[str, set[str]]) -> None:
        if resolved is not None and resolved in _BOUNDARY_CALLS:
            sink = f"{_pretty(resolved)}()"
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr in _EXECUTOR_METHODS
              and _EXECUTOR in receiver_tags):
            sink = f"executor.{node.func.attr}()"
        else:
            return
        for tags in [*arg_tags, *kw_tags.values()]:
            if _RNG in tags or _RNG_SEQ in tags:
                self._emit(node, "RL022",
                           f"Generator passed into {sink}; ship "
                           "SeedSequences (repro.rng.spawn_sequences) "
                           "across process boundaries")
            for index in _param_indices(tags):
                self._boundary_params.add(index)

    def _check_dtype_sink(self, node: ast.Call, resolved: str | None,
                          arg_tags: list[set[str]],
                          kw_tags: dict[str, set[str]]) -> None:
        sink = self._dtype_sink_name(resolved)
        if sink is None:
            return
        for tags in [*arg_tags, *kw_tags.values()]:
            if _F32 in tags:
                self._emit(node, "RL031",
                           f"float32 value reaches serialization sink "
                           f"{sink}; the artifact contract is float64")
            for index in _param_indices(tags):
                self._sink_params.add(index)

    def _dtype_sink_name(self, resolved: str | None) -> str | None:
        if resolved is None:
            return None
        if resolved in _DTYPE_SINK_CALLS:
            return f"{_pretty(resolved)}()"
        for prefix in _DTYPE_SINK_MODULES:
            if resolved.startswith(prefix + "."):
                return f"{_short(resolved)}()"
        return None

    # Interprocedural effects via callee summaries ------------------------

    def _check_callee_summary(self, node: ast.Call, resolved: str | None,
                              bound_method: bool,
                              arg_tags: list[set[str]],
                              kw_tags: dict[str, set[str]]) -> None:
        if resolved is None:
            return
        callee = self.project.function(resolved)
        if callee is None:
            return
        summary = self.flow.summaries.get(callee.name)
        if summary is None:
            return
        self._propagate_blocking(node, callee, summary)
        if not (summary.rng_leak_params or summary.rng_boundary_params
                or summary.f32_sink_params):
            return
        for param_index, tags in self._map_args(callee, bound_method,
                                                arg_tags, kw_tags):
            if param_index in summary.rng_leak_params \
                    and (_RNG in tags or _RNG_SEQ in tags):
                self._emit(node, "RL023",
                           f"rng argument leaks to a module global inside "
                           f"{_short(callee.name)}()")
            if param_index in summary.rng_boundary_params \
                    and (_RNG in tags or _RNG_SEQ in tags):
                self._emit(node, "RL022",
                           f"Generator crosses a process boundary inside "
                           f"{_short(callee.name)}(); ship SeedSequences "
                           "(repro.rng.spawn_sequences) instead")
            if param_index in summary.f32_sink_params and _F32 in tags:
                self._emit(node, "RL032",
                           f"float32 argument reaches a serialization "
                           f"sink inside {_short(callee.name)}()")
            for own_index in _param_indices(tags):
                if param_index in summary.rng_leak_params:
                    self._leak_params.add(own_index)
                if param_index in summary.rng_boundary_params:
                    self._boundary_params.add(own_index)
                if param_index in summary.f32_sink_params:
                    self._sink_params.add(own_index)

    def _propagate_blocking(self, node: ast.Call, callee: FunctionInfo,
                            summary: FunctionSummary) -> None:
        # Deepest-frame discipline: an async callee reports its own
        # blocking sites; its callers never re-report them.
        if callee.is_async or summary.blocking is None:
            return
        evidence = summary.blocking
        if " via " not in evidence:
            evidence = f"{evidence} via {_short(callee.name)}"
        if self._blocking is None:
            self._blocking = evidence
        if self.is_async and self.owner is not None:
            self._emit(node, "RL040",
                       f"call into blocking {_short(callee.name)}() "
                       f"[{summary.blocking}] inside async def "
                       f"{self.owner.qualname}; it stalls the event loop")

    def _map_args(self, callee: FunctionInfo, bound_method: bool,
                  arg_tags: list[set[str]],
                  kw_tags: dict[str, set[str]]
                  ) -> list[tuple[int, set[str]]]:
        offset = 1 if bound_method else 0
        mapped = [(index + offset, tags)
                  for index, tags in enumerate(arg_tags)]
        params = [arg.arg for arg in (*callee.node.args.posonlyargs,
                                      *callee.node.args.args,
                                      *callee.node.args.kwonlyargs)]
        for keyword, tags in kw_tags.items():
            if keyword in params:
                mapped.append((params.index(keyword), tags))
        return mapped

    # RL041 ---------------------------------------------------------------

    def _check_unawaited(self, value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        resolved = self.project.resolve_call(self.module, self.owner,
                                             value.func, self.local_types)
        if resolved is None:
            return
        callee = self.project.function(resolved)
        if callee is not None and callee.is_async:
            self._emit(value, "RL041",
                       f"coroutine {_short(callee.name)}() is never "
                       "awaited; wrap in await or asyncio.create_task")

    # RL043 ---------------------------------------------------------------

    def _check_lock_wait(self, call: ast.Call) -> None:
        resolved = self.project.resolve_call(self.module, self.owner,
                                             call.func, self.local_types)
        what: str | None = None
        if resolved is not None and resolved in _ASYNC_WAIT_CALLS:
            what = f"{_pretty(resolved)}()"
        elif (isinstance(call.func, ast.Attribute)
              and call.func.attr in _ASYNC_WAIT_METHODS):
            what = f".{call.func.attr}()"
        if what is not None:
            self._emit(call, "RL043",
                       f"await of {what} while holding a lock; the lock "
                       "is held across an unbounded wait")

    # -- result tags -------------------------------------------------------

    def _result_tags(self, node: ast.Call, resolved: str | None,
                     receiver_tags: set[str]) -> set[str]:
        if resolved is not None:
            if resolved in _SPAWN_CALLS:
                return ({_RNG_SEQ} if resolved.endswith(".spawn")
                        else set())
            if resolved in _RNG_FACTORIES:
                return {_RNG}
            ctor = _ctor_tags(resolved)
            if ctor:
                return set(ctor)
            if resolved == "numpy.float32":
                return {_F32}
            if resolved == "numpy.float64":
                return {_F64}
            callee = self.project.function(resolved)
            if callee is not None:
                summary = self.flow.summaries.get(callee.name)
                if summary is not None:
                    tags: set[str] = set()
                    if summary.returns_rng:
                        tags.add(_RNG)
                    if summary.returns_dtype is not None:
                        tags.add(summary.returns_dtype)
                    if tags:
                        return tags
        dtype = self._dtype_keyword(node)
        if dtype is not None:
            return {dtype}
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "astype" and node.args:
            cast = self._dtype_of(node.args[0])
            if cast is not None:
                return {cast}
            return set()
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("copy", "spawn") \
                and _RNG in receiver_tags:
            return {_RNG_SEQ} if node.func.attr == "spawn" else {_RNG}
        return set()

    def _dtype_keyword(self, node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_of(kw.value)
        return None

    def _dtype_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in ("float32", "f4", "<f4"):
                return _F32
            if node.value in ("float64", "f8", "<f8"):
                return _F64
            return None
        resolved = self.project.resolve_call(self.module, self.owner, node,
                                             self.local_types) \
            if isinstance(node, (ast.Attribute, ast.Name)) else None
        if resolved == "numpy.float32":
            return _F32
        if resolved == "numpy.float64":
            return _F64
        return None


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def analyze_project(trees: dict[str, tuple[str, ast.Module]]
                    ) -> list[Violation]:
    """Run the flow pass over ``{module: (path, tree)}``; raw violations.

    The caller (the engine) filters by per-file applicability and folds
    the result into suppression handling alongside the per-file rules.
    """
    project = Project.from_trees(trees)
    return FlowAnalysis(project).run()
