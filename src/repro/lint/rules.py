"""Rule registry and the AST visitor that emits violations.

Each rule has a stable ID (``RL000``…), a short name, a one-line summary,
and an applicability scope: the *contexts* it runs in (``library`` for
``src/``, ``test`` for ``tests/``) plus an optional package restriction
and per-file exemptions.  The IDs are part of the repository's public
contract — suppression comments and CI reports reference them — so they
are never renumbered; retired rules leave a gap.

The checks themselves live in :class:`LintVisitor`, a single-pass
``ast.NodeVisitor`` shared by every rule so a file is walked once.  Name
resolution is import-aware: ``np.random.default_rng`` is recognized through
any ``import numpy``/``import numpy as np``/``from numpy import random``
spelling, and *only* through an import — a local variable that happens to
be called ``random`` is not flagged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable

#: Applicability contexts.  ``library`` is everything under ``src/``;
#: ``test`` is everything under ``tests/``.
LIBRARY = "library"
TEST = "test"
_BOTH = frozenset((LIBRARY, TEST))


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule (the check itself lives in the visitor)."""

    id: str
    name: str
    summary: str
    contexts: frozenset[str] = _BOTH
    #: When set, the rule only applies to modules whose dotted path starts
    #: with one of these prefixes (e.g. ``repro.trace``).
    packages: tuple[str, ...] | None = None
    #: POSIX path suffixes exempt from the rule (e.g. ``repro/rng.py``,
    #: the one module allowed to construct generators).
    exempt: tuple[str, ...] = ()
    #: Flow rules are evaluated by the whole-program pass in
    #: :mod:`repro.lint.flow`, not by the per-file :class:`LintVisitor`.
    flow: bool = False


#: Bumped whenever rule *logic* changes in a way that alters findings on
#: unchanged source.  Part of the incremental-cache key, so a version
#: bump invalidates every cached entry.
RULES_VERSION = 2


@dataclass(frozen=True)
class Violation:
    """One rule hit at a precise location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``path:line:col: RLxxx message`` (the text-report line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


RULES: tuple[Rule, ...] = (
    Rule("RL000", "syntax-error",
         "file does not parse; nothing else can be checked"),
    Rule("RL001", "stdlib-random",
         "stdlib `random` module is process-global and unseeded; use "
         "repro.rng.make_rng"),
    Rule("RL002", "global-numpy-rng",
         "np.random.default_rng / legacy global np.random.* bypass the "
         "seed plumbing; route through repro.rng.make_rng/spawn",
         exempt=("repro/rng.py",)),
    Rule("RL003", "rng-construction",
         "direct Generator/bit-generator construction outside repro.rng "
         "fragments the seed-derivation tree; use make_rng/spawn",
         exempt=("repro/rng.py",)),
    Rule("RL004", "wall-clock",
         "wall-clock reads make output depend on when the code ran; "
         "derive timestamps from the trace/seed instead"),
    Rule("RL005", "unsorted-fs-iteration",
         "os.listdir/glob/iterdir order is filesystem-dependent; wrap "
         "the call in sorted(...)"),
    Rule("RL006", "set-iteration-order",
         "iterating or materializing a set hits PYTHONHASHSEED ordering; "
         "sort it first"),
    Rule("RL007", "float-equality",
         "==/!= against a float is representation-sensitive; compare "
         "with a tolerance or restructure (exact asserts are exempt)"),
    Rule("RL008", "dtype-less-constructor",
         "dtype-less numpy constructor in a serialization-adjacent "
         "package; platform-dependent inference corrupts artifacts",
         contexts=frozenset((LIBRARY,)),
         packages=("repro.trace", "repro.conform", "repro.stream",
                   "repro.parallel")),
    Rule("RL009", "fixed-width-str-dtype",
         "explicit-width string dtype ('<U1'-style) silently truncates; "
         "let the data size the itemsize or justify via suppression"),
    Rule("RL010", "suppression-hygiene",
         "suppression comment is malformed, names an unknown rule, or no "
         "longer suppresses anything"),
    Rule("RL011", "builtin-hash",
         "builtin hash() is salted per process for str/bytes; use "
         "hashlib for anything persisted or compared across runs"),
    Rule("RL012", "unstable-argsort",
         "argsort without kind='stable' breaks ties in a platform- and "
         "version-dependent order"),
    # RL013–RL019 reserved for future per-file rules; the flow families
    # below start at RL020 so each family owns a decade.
    Rule("RL020", "rng-module-global",
         "make_rng/spawn-derived Generator bound to a module global "
         "outlives its seed block; pass generators down the call tree",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL021", "draw-after-spawn",
         "drawing from a parent Generator after spawn()/spawn_sequences() "
         "reorders the seed-derivation tree",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL022", "rng-process-boundary",
         "Generator crosses a pickle/executor process boundary; "
         "SeedSequences (spawn_sequences) are the sanctioned currency",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL023", "rng-leak-via-callee",
         "rng argument leaks to a module global inside the callee "
         "(tracked interprocedurally via function summaries)",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL030", "dtype-mixing",
         "float32/float64 operands mixed in arithmetic; the implicit "
         "upcast changes serialized bytes",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL031", "f32-serialization-sink",
         "float32 value reaches a serialization/codec sink; the artifact "
         "contract is float64 end to end",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL032", "f32-sink-via-callee",
         "float32 argument reaches a serialization sink inside the "
         "callee (tracked interprocedurally via function summaries)",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL040", "blocking-in-async",
         "blocking call (sleep, sync file I/O, subprocess) inside "
         "async def stalls the event loop; reported at the deepest "
         "project frame",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL041", "unawaited-coroutine",
         "bare call to an async def; the coroutine is created but never "
         "awaited or scheduled",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL042", "unbounded-asyncio-queue",
         "asyncio.Queue() without a maxsize bound; unbounded buffers "
         "defeat the load-shedding contract",
         contexts=frozenset((LIBRARY,)), flow=True),
    Rule("RL043", "await-under-lock",
         "await of a long-wait operation (queue get/put, sleep, join) "
         "while holding a lock serializes the event loop",
         contexts=frozenset((LIBRARY,)), flow=True),
)

#: IDs evaluated by the whole-program flow pass (repro.lint.flow).
FLOW_RULE_IDS = frozenset(r.id for r in RULES if r.flow)

_RULES_BY_ID = {rule.id: rule for rule in RULES}

_RULE_ID_RE = re.compile(r"^RL\d{3}$")


def active_rule_ids(select: Iterable[str] | None = None,
                    ignore: Iterable[str] | None = None) -> frozenset[str]:
    """Resolve ``--select``/``--ignore`` into the active rule-ID set.

    Raises
    ------
    repro.errors.LintError
        If an ID is not a registered rule.
    """
    from ..errors import LintError

    # The registry has deliberate gaps (RL013–RL019), so the error lists
    # every valid ID instead of rendering a misleading RLxxx..RLyyy range.
    valid = ", ".join(sorted(_RULES_BY_ID))
    chosen = set(_RULES_BY_ID)
    if select is not None:
        requested = set(select)
        unknown = requested - chosen
        if unknown:
            raise LintError(
                f"unknown rule id in --select: {', '.join(sorted(unknown))} "
                f"(valid ids: {valid})")
        chosen = requested
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - set(_RULES_BY_ID)
        if unknown:
            raise LintError(
                f"unknown rule id in --ignore: {', '.join(sorted(unknown))} "
                f"(valid ids: {valid})")
        chosen -= dropped
    return frozenset(chosen)


def rule(rule_id: str) -> Rule:
    """Look up a rule by ID (raises ``KeyError`` for unknown IDs)."""
    return _RULES_BY_ID[rule_id]


def is_rule_id(token: str) -> bool:
    """True when ``token`` is *shaped* like a rule ID (RLnnn)."""
    return _RULE_ID_RE.match(token) is not None


# --------------------------------------------------------------------------
# Name-resolution sets
# --------------------------------------------------------------------------

#: Legacy global-state numpy.random functions plus default_rng: everything
#: that either mutates hidden state or mints a generator outside make_rng.
_NP_RANDOM_GLOBAL = frozenset((
    "default_rng", "seed", "random", "rand", "randn", "randint",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "standard_normal", "normal", "uniform", "exponential", "lognormal",
    "poisson", "pareto", "zipf", "binomial", "beta", "gamma", "bytes",
    "get_state", "set_state", "RandomState",
))

#: Generator/bit-generator constructors (RL003).  SeedSequence is *not*
#: here: building an entropy-pinned SeedSequence is deterministic seed
#: derivation and explicitly allowed as a make_rng argument.
_RNG_CONSTRUCTORS = frozenset((
    "numpy.random.Generator", "numpy.random.PCG64", "numpy.random.PCG64DXSM",
    "numpy.random.MT19937", "numpy.random.Philox", "numpy.random.SFC64",
))

_WALL_CLOCK = frozenset((
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
))

_FS_LISTING = frozenset((
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
))

#: Method names that enumerate a directory on any receiver (pathlib-style).
_FS_METHODS = frozenset(("glob", "rglob", "iterdir"))

_DTYPE_LESS_CTORS = frozenset((
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.fromiter", "numpy.array",
))

_FLOAT_CASTS = frozenset((
    "float", "numpy.float64", "numpy.float32", "numpy.float16",
))

_FLOAT_CONSTANTS = frozenset((
    "numpy.nan", "numpy.inf", "numpy.NaN", "numpy.Inf", "numpy.NAN",
    "math.nan", "math.inf",
))

_STABLE_SORT_KINDS = frozenset(("stable", "mergesort"))

_FIXED_WIDTH_DTYPE_RE = re.compile(r"^[<>|=]?[US]\d+$")


# --------------------------------------------------------------------------
# The visitor
# --------------------------------------------------------------------------

class LintVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting raw violations for every rule.

    Context/package/exemption filtering and suppression handling happen in
    :mod:`repro.lint.engine`; the visitor only knows syntax.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: list[Violation] = []
        #: local alias -> absolute dotted module/name, built from imports.
        self._imports: dict[str, str] = {}
        #: nodes already consumed by an enclosing check (e.g. the Attribute
        #: inside an RL003 constructor call) so they are not double-flagged.
        self._claimed: set[int] = set()
        self._parents: dict[int, ast.AST] = {}

    # -- helpers ----------------------------------------------------------

    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.violations.append(
            Violation(self.path, int(line), int(col) + 1, rule_id, message))

    def _resolve(self, node: ast.expr) -> str | None:
        """Absolute dotted name of ``node``, or None.

        Only chains rooted at an *imported* alias resolve; bare local names
        (``random = ...``) stay unresolved, which keeps the rules from
        flagging coincidental identifiers.
        """
        parts: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self._imports.get(cursor.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

    def _parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def _has_assert_ancestor(self, node: ast.AST) -> bool:
        cursor: ast.AST | None = node
        while cursor is not None:
            if isinstance(cursor, ast.Assert):
                return True
            cursor = self._parent(cursor)
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
                and node.func.id not in self._imports)

    def _is_float_operand(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, (ast.USub, ast.UAdd)):
            return self._is_float_operand(node.operand)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                return (node.func.id in _FLOAT_CASTS
                        and node.func.id not in self._imports)
            resolved = self._resolve(node.func)
            return resolved in _FLOAT_CASTS
        resolved = self._resolve(node)
        return resolved in _FLOAT_CONSTANTS

    # -- entry point ------------------------------------------------------

    def run(self, tree: ast.Module) -> list[Violation]:
        """Walk ``tree`` once and return the raw violations."""
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.visit(tree)
        return self.violations

    # -- imports (alias tracking + RL001) ---------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        """Track aliases; flag stdlib ``random`` imports (RL001)."""
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._imports[local] = (alias.name if alias.asname
                                    else alias.name.split(".")[0])
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(node, "RL001",
                           f"import of stdlib '{alias.name}'")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track from-imports; flag stdlib ``random`` (RL001)."""
        if node.level == 0 and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self._emit(node, "RL001",
                           f"import from stdlib '{node.module}'")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._imports[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Call-site rules: RL003/RL004/RL005/RL006/RL008/RL011/RL012."""
        resolved = self._resolve(node.func)
        keywords = {kw.arg for kw in node.keywords if kw.arg is not None}

        if resolved is not None:
            if resolved in _RNG_CONSTRUCTORS:
                self._claimed.add(id(node.func))
                self._emit(node, "RL003",
                           f"direct construction of {resolved.split('.')[-1]}; "
                           "use repro.rng.make_rng/spawn")
            elif resolved in _WALL_CLOCK:
                self._emit(node, "RL004", f"call to {resolved}")
            elif resolved in _FS_LISTING:
                self._check_sorted_wrapper(node, resolved)
            elif resolved in _DTYPE_LESS_CTORS and "dtype" not in keywords:
                self._emit(node, "RL008",
                           f"{resolved.replace('numpy.', 'np.')} without an "
                           "explicit dtype=")
            elif (resolved == "numpy.argsort"
                  and not self._stable_kind(node)):
                self._emit(node, "RL012",
                           "np.argsort without kind='stable'")

        if isinstance(node.func, ast.Attribute) and resolved is None:
            if node.func.attr in _FS_METHODS:
                self._check_sorted_wrapper(node, f".{node.func.attr}()")
            elif (node.func.attr == "argsort"
                  and not self._stable_kind(node)):
                self._emit(node, "RL012",
                           ".argsort() without kind='stable'")

        if (isinstance(node.func, ast.Name) and node.func.id == "hash"
                and node.func.id not in self._imports):
            self._emit(node, "RL011",
                       "builtin hash() is PYTHONHASHSEED-salted; use "
                       "hashlib or a stable key")

        if (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate", "iter")
                and node.func.id not in self._imports
                and node.args and self._is_set_expr(node.args[0])):
            self._emit(node.args[0], "RL006",
                       f"{node.func.id}() over a set materializes "
                       "hash order; sort first")

        self.generic_visit(node)

    def _stable_kind(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "kind":
                if isinstance(kw.value, ast.Constant):
                    return kw.value.value in _STABLE_SORT_KINDS
                return True  # dynamic kind: give the benefit of the doubt
        return False

    def _check_sorted_wrapper(self, node: ast.Call, what: str) -> None:
        parent = self._parent(node)
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"):
            return
        self._emit(node, "RL005",
                   f"{what} result used without sorted(...)")

    # -- attribute references (RL002) -------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Flag global ``np.random.*`` attribute references (RL002)."""
        if id(node) not in self._claimed:
            resolved = self._resolve(node)
            if (resolved is not None
                    and resolved.startswith("numpy.random.")
                    and resolved.rsplit(".", 1)[1] in _NP_RANDOM_GLOBAL):
                self._emit(node, "RL002",
                           f"{resolved.replace('numpy.', 'np.')} bypasses "
                           "repro.rng seed plumbing")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        """Flag from-imported global ``np.random`` names (RL002)."""
        if isinstance(node.ctx, ast.Load) and id(node) not in self._claimed:
            resolved = self._imports.get(node.id)
            if (resolved is not None
                    and resolved.startswith("numpy.random.")
                    and resolved.rsplit(".", 1)[1] in _NP_RANDOM_GLOBAL):
                self._emit(node, "RL002",
                           f"{resolved.replace('numpy.', 'np.')} bypasses "
                           "repro.rng seed plumbing")
        self.generic_visit(node)

    # -- iteration over sets (RL006) --------------------------------------

    def _check_iter_source(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._emit(iter_node, "RL006",
                       "iteration over a set follows hash order; sort first")

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for`` loops over set expressions (RL006)."""
        self._check_iter_source(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        """Flag comprehension iteration over set expressions (RL006)."""
        self._check_iter_source(node.iter)
        self.generic_visit(node)

    # -- float equality (RL007) -------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag ==/!= with a float operand outside asserts (RL007)."""
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if (any(self._is_float_operand(o) for o in operands)
                    and not self._has_assert_ancestor(node)):
                self._emit(node, "RL007",
                           "==/!= against a float outside an assert")
        self.generic_visit(node)

    # -- fixed-width string dtypes (RL009) --------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        """Flag fixed-width string dtypes like ``'<U1'`` (RL009)."""
        if (isinstance(node.value, str)
                and _FIXED_WIDTH_DTYPE_RE.match(node.value)
                and not isinstance(self._parent(node), ast.Expr)):
            self._emit(node, "RL009",
                       f"fixed-width string dtype {node.value!r} "
                       "truncates silently")
        self.generic_visit(node)


def check_tree(tree: ast.Module, path: str) -> list[Violation]:
    """Run every rule over a parsed module; returns raw violations."""
    return LintVisitor(path).run(tree)
