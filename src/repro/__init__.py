"""repro: a reproduction of *A Hierarchical Characterization of a Live
Streaming Media Workload* (Veloso, Almeida, Meira, Bestavros, Jin — IMC
2002).

The library has three faces:

* **Simulate** — :class:`~repro.simulation.scenario.LiveShowScenario`
  produces a Windows-Media-Server-style trace of a live reality-show
  audience, standing in for the paper's proprietary 28-day log.
* **Characterize** — :func:`~repro.core.characterize.characterize` runs the
  paper's three-layer (client / session / transfer) characterization over
  any trace; :func:`~repro.core.calibrate.calibrate_model` extracts the
  Table 2 generative model from it.
* **Generate** — :class:`~repro.core.gismo.LiveWorkloadGenerator` is the
  paper's GISMO-live extension: synthetic live workloads from a
  :class:`~repro.core.model.LiveWorkloadModel`.

Quickstart
----------
>>> from repro import (LiveShowScenario, sanitize_trace, characterize,
...                    calibrate_model, LiveWorkloadGenerator)
>>> result = LiveShowScenario().run(seed=7)          # doctest: +SKIP
>>> trace, _ = sanitize_trace(result.trace)          # doctest: +SKIP
>>> report = characterize(trace)                     # doctest: +SKIP
>>> model = calibrate_model(trace).model             # doctest: +SKIP
>>> synthetic = LiveWorkloadGenerator(model).generate(days=7, seed=1)  # doctest: +SKIP
"""

from .core.calibrate import CalibrationResult, calibrate_model
from .core.characterize import WorkloadCharacterization, characterize
from .core.gismo import GismoWorkload, LiveWorkloadGenerator
from .core.hierarchy import HierarchicalWorkload
from .core.model import LiveWorkloadModel
from .core.planning import CapacityPlan, denial_rate_at, required_capacity
from .core.report import render_report
from .core.sessionizer import Sessions, session_count_for_timeouts, sessionize
from .core.validate import FidelityReport, compare_workloads
from .errors import ReproError
from .simulation.scenario import (
    LiveShowScenario,
    ScenarioConfig,
    SimulationResult,
)
from .stream import (
    GenerationStream,
    OnlineSessionizer,
    StreamRunResult,
    run_streaming_generation,
)
from .trace.sanitize import SanitizationReport, sanitize_trace
from .trace.store import Trace
from .trace.wms_log import read_wms_log, write_wms_log

__version__ = "1.0.0"

__all__ = [
    "CalibrationResult",
    "CapacityPlan",
    "FidelityReport",
    "GenerationStream",
    "GismoWorkload",
    "HierarchicalWorkload",
    "LiveShowScenario",
    "LiveWorkloadGenerator",
    "LiveWorkloadModel",
    "OnlineSessionizer",
    "ReproError",
    "SanitizationReport",
    "ScenarioConfig",
    "Sessions",
    "SimulationResult",
    "StreamRunResult",
    "Trace",
    "WorkloadCharacterization",
    "calibrate_model",
    "characterize",
    "compare_workloads",
    "denial_rate_at",
    "read_wms_log",
    "render_report",
    "required_capacity",
    "run_streaming_generation",
    "sanitize_trace",
    "session_count_for_timeouts",
    "sessionize",
    "write_wms_log",
    "__version__",
]
