"""Client population: interest ranks, topology, and access links.

The paper maps its 691,889 users to 364,184 IP addresses, over 1,000
autonomous systems, and 11 countries dominated by Brazil (Section 3.1,
Figure 2), and finds a Zipf-like *interest profile*: the frequency of
sessions by the client of rank ``k`` falls as ``k**-0.4704`` (Section 3.5,
Figure 7).  :class:`ClientPopulation` plants exactly this structure:

* client indices double as interest ranks (client 0 is the most interested),
  sampled per session through a :class:`~repro.distributions.zipf.ZipfLaw`;
* autonomous systems are Zipf-sized, with the biggest ASes pinned to Brazil
  and the remainder assigned countries by a skewed categorical;
* IP addresses are shared within an AS at the paper's observed
  users-per-IP ratio (about 1.9);
* access-link speeds follow a 2002-era tier mix (modems through cable),
  which the network model turns into the bimodal bandwidth of Figure 20.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import SeedLike
from ..distributions.zipf import ZipfLaw
from ..errors import ConfigError
from ..rng import make_rng, spawn
from ..trace.store import ClientTable

#: 2002-era access-link tiers as ``(bits_per_second, weight)``.
DEFAULT_ACCESS_TIERS: tuple[tuple[float, float], ...] = (
    (28_800.0, 0.12),    # v.34 modem
    (33_600.0, 0.18),    # v.34+ modem
    (56_000.0, 0.30),    # v.90 modem
    (64_000.0, 0.05),    # single-channel ISDN
    (128_000.0, 0.12),   # dual-channel ISDN
    (256_000.0, 0.13),   # entry DSL
    (512_000.0, 0.06),   # DSL
    (1_000_000.0, 0.04), # cable
)

#: Default country mix (the paper's 11 countries, Brazil dominant).
DEFAULT_COUNTRY_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("BR", 0.800), ("US", 0.070), ("AR", 0.040), ("JP", 0.020),
    ("DE", 0.020), ("CH", 0.015), ("AU", 0.012), ("BE", 0.008),
    ("BO", 0.005), ("SG", 0.005), ("SV", 0.005),
)

#: Client operating systems as logged by the Windows Media player.
DEFAULT_OS_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("Windows_98", 0.46), ("Windows_2000", 0.22), ("Windows_ME", 0.14),
    ("Windows_XP", 0.10), ("Windows_95", 0.05), ("Windows_NT", 0.03),
)


@dataclass(frozen=True)
class PopulationConfig:
    """Parameters of the synthetic client population.

    Attributes
    ----------
    n_clients:
        Number of potential clients (the paper observed ~692k; the default
        is a scale model).
    interest_alpha:
        Zipf exponent of the client interest profile — which client
        initiates each session (the paper: 0.4704 for sessions).
    n_ases:
        Number of autonomous systems (the paper: 1,010).
    as_alpha:
        Zipf exponent of AS sizes (how client mass concentrates in big
        ASes; Figure 2 left/center show a strongly skewed profile).
    users_per_ip:
        Average number of distinct players per IP address (the paper:
        691,889 / 364,184, about 1.9 — NATs and shared machines).
    forced_br_ases:
        The top this-many ASes are pinned to Brazil, so the country share
        of transfers is Brazil-dominated as in Figure 2 (right).
    country_weights:
        Country assignment weights for the remaining ASes.
    access_tiers:
        ``(bps, weight)`` access-link tiers.
    os_weights:
        ``(name, weight)`` operating-system mix.
    """

    n_clients: int = 50_000
    interest_alpha: float = 0.4704
    n_ases: int = 1_010
    as_alpha: float = 1.10
    users_per_ip: float = 1.9
    forced_br_ases: int = 25
    country_weights: tuple[tuple[str, float], ...] = DEFAULT_COUNTRY_WEIGHTS
    access_tiers: tuple[tuple[float, float], ...] = DEFAULT_ACCESS_TIERS
    os_weights: tuple[tuple[str, float], ...] = DEFAULT_OS_WEIGHTS

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ConfigError(f"n_clients must be positive, got {self.n_clients}")
        if self.n_ases < 1:
            raise ConfigError(f"n_ases must be positive, got {self.n_ases}")
        if self.users_per_ip < 1.0:
            raise ConfigError(
                f"users_per_ip must be at least 1, got {self.users_per_ip}")
        if self.interest_alpha < 0 or self.as_alpha < 0:
            raise ConfigError("Zipf exponents must be non-negative")
        for name, pairs in (("country_weights", self.country_weights),
                            ("access_tiers", self.access_tiers),
                            ("os_weights", self.os_weights)):
            if not pairs or any(w <= 0 for _, w in pairs):
                raise ConfigError(f"{name} must be non-empty with positive weights")


def _weighted_choice(rng: np.random.Generator, n: int,
                     pairs: tuple[tuple, ...]) -> np.ndarray:
    values = [v for v, _ in pairs]
    weights = np.asarray([w for _, w in pairs], dtype=np.float64)
    weights = weights / weights.sum()
    idx = rng.choice(len(values), size=n, p=weights)
    return np.asarray(values)[idx]


def _ip_string(as_number: int, host_index: int) -> str:
    """Deterministic dotted quad encoding (AS, host) uniquely."""
    a = 60 + as_number // 256          # 60..64 for AS < 1,280
    b = as_number % 256
    c = host_index // 250
    d = host_index % 250 + 1
    return f"{a}.{b}.{c}.{d}"


class ClientPopulation:
    """The synthetic client population, built once per scenario.

    Build with :meth:`build`; client index ``i`` doubles as interest rank
    ``i + 1``.
    """

    def __init__(self, config: PopulationConfig, as_numbers: np.ndarray,
                 countries: np.ndarray, ips: np.ndarray,
                 access_bps: np.ndarray, os_names: np.ndarray) -> None:
        self.config = config
        self.as_numbers = as_numbers
        self.countries = countries
        self.ips = ips
        self.access_bps = access_bps
        self.os_names = os_names
        self._interest_law = ZipfLaw(config.interest_alpha, config.n_clients)

    @classmethod
    def build(cls, config: PopulationConfig,
              seed: SeedLike = None) -> "ClientPopulation":
        """Construct a population from the given configuration and seed."""
        rng = make_rng(seed)
        as_rng, country_rng, ip_rng, access_rng, os_rng = spawn(rng, 5)
        n = config.n_clients

        # AS membership: Zipf-sized autonomous systems.
        as_law = ZipfLaw(config.as_alpha, config.n_ases)
        as_rank = as_law.sample(n, as_rng)  # 1-based rank = AS number

        # Country per AS: top ASes pinned to BR, the rest drawn categorical.
        as_countries = _weighted_choice(country_rng, config.n_ases,
                                        config.country_weights)
        as_countries[:min(config.forced_br_ases, config.n_ases)] = "BR"
        countries = as_countries[as_rank - 1]

        # IP sharing within each AS at the configured users-per-IP ratio.
        ips = np.empty(n, dtype=object)
        for as_number in np.unique(as_rank):
            members = np.nonzero(as_rank == as_number)[0]
            n_ips = max(int(round(members.size / config.users_per_ip)), 1)
            host_idx = ip_rng.integers(0, n_ips, size=members.size)
            for client, host in zip(members, host_idx, strict=True):
                ips[client] = _ip_string(int(as_number), int(host))

        access = _weighted_choice(access_rng, n, config.access_tiers
                                  ).astype(np.float64)
        os_names = _weighted_choice(os_rng, n, config.os_weights)

        return cls(config,
                   as_numbers=as_rank.astype(np.int64),
                   countries=countries.astype(np.str_),
                   ips=ips.astype(np.str_),
                   access_bps=access,
                   os_names=os_names.astype(np.str_))

    @property
    def n_clients(self) -> int:
        """Number of clients in the population."""
        return self.config.n_clients

    def sample_clients(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` client indices from the Zipf interest profile.

        Client index 0 is the most interested client (interest rank 1).
        """
        return self._interest_law.sample(n, seed) - 1

    def client_table(self) -> ClientTable:
        """Materialize the population as a trace :class:`ClientTable`."""
        player_ids = [f"player-{i:07d}" for i in range(self.n_clients)]
        return ClientTable(
            player_ids=player_ids,
            ips=self.ips,
            as_numbers=self.as_numbers,
            countries=self.countries,
            os_names=self.os_names,
        )

    def resolver(self):
        """Return an ``ip -> (as_number, country)`` callable.

        Stands in for the external IP-to-AS traceback the paper performed;
        pass to :func:`repro.trace.wms_log.read_wms_log`.
        """
        mapping = {str(ip): (int(asn), str(country))
                   for ip, asn, country in zip(self.ips, self.as_numbers,
                                               self.countries, strict=True)}

        def resolve(ip: str) -> tuple[int, str]:
            return mapping.get(ip, (0, ""))

        return resolve
