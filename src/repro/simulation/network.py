"""Last-mile bandwidth and loss model.

Figure 20 of the paper shows a clearly bimodal transfer-bandwidth
distribution: sharp *client-bound* spikes at the common access-link speeds
(modem tiers, ISDN, DSL, cable) and a diffuse *congestion-bound* mode at
very low bandwidths covering roughly 10% of transfers (Section 5.4).

:class:`BandwidthModel` reproduces that shape: a transfer is congestion
bound with probability ``congestion_prob`` (drawing a low lognormal
bandwidth and elevated loss); otherwise its bandwidth is the client's access
speed times a protocol-efficiency factor, capped at the stream encoding
rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import FloatArray, SeedLike
from ..errors import ConfigError
from ..rng import make_rng


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the bandwidth/loss model.

    Attributes
    ----------
    encoding_rate_bps:
        Stream encoding rate; a transfer never exceeds it regardless of the
        client's access speed.
    congestion_prob:
        Probability that a transfer is congestion bound (the paper: ~10%).
    congested_log_mu, congested_log_sigma:
        Lognormal parameters (natural log of bits/second) of the
        congestion-bound bandwidth mode.
    efficiency_lo, efficiency_hi:
        Uniform range of the protocol-efficiency factor applied to the
        access speed for client-bound transfers (smears the spikes
        slightly, as real modem retrains do).
    clean_loss_hi:
        Client-bound transfers draw packet loss uniformly in
        ``[0, clean_loss_hi]``.
    congested_loss_lo, congested_loss_hi:
        Congestion-bound transfers draw loss uniformly in this range.
    """

    encoding_rate_bps: float = 350_000.0
    congestion_prob: float = 0.10
    congested_log_mu: float = 9.2   # exp(9.2) ~ 9.9 kbit/s
    congested_log_sigma: float = 0.9
    efficiency_lo: float = 0.86
    efficiency_hi: float = 0.98
    clean_loss_hi: float = 0.01
    congested_loss_lo: float = 0.02
    congested_loss_hi: float = 0.20

    def __post_init__(self) -> None:
        if self.encoding_rate_bps <= 0:
            raise ConfigError("encoding_rate_bps must be positive")
        if not 0.0 <= self.congestion_prob <= 1.0:
            raise ConfigError(
                f"congestion_prob must be in [0, 1], got {self.congestion_prob}")
        if not 0.0 < self.efficiency_lo <= self.efficiency_hi <= 1.0:
            raise ConfigError("need 0 < efficiency_lo <= efficiency_hi <= 1")
        if self.congested_log_sigma <= 0:
            raise ConfigError("congested_log_sigma must be positive")
        if not (0.0 <= self.congested_loss_lo <= self.congested_loss_hi <= 1.0
                and 0.0 <= self.clean_loss_hi <= 1.0):
            raise ConfigError("loss bounds must lie in [0, 1] and be ordered")


class BandwidthModel:
    """Samples per-transfer bandwidth and packet loss.

    Parameters
    ----------
    config:
        Model parameters; see :class:`NetworkConfig`.
    """

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()

    def sample(self, access_bps: np.ndarray,
               seed: SeedLike = None) -> tuple[FloatArray, FloatArray, np.ndarray]:
        """Sample ``(bandwidth_bps, packet_loss, congested_mask)``.

        Parameters
        ----------
        access_bps:
            Per-transfer client access-link speed (one entry per transfer).
        seed:
            Seed or generator.
        """
        cfg = self.config
        rng = make_rng(seed)
        access = np.asarray(access_bps, dtype=np.float64)
        if access.ndim != 1:
            raise ValueError("access_bps must be one-dimensional")
        if access.size and access.min() <= 0:
            raise ValueError("access speeds must be positive")
        n = access.size

        efficiency = rng.uniform(cfg.efficiency_lo, cfg.efficiency_hi, size=n)
        client_bound = np.minimum(access * efficiency, cfg.encoding_rate_bps)

        congested = rng.random(n) < cfg.congestion_prob
        bandwidth = client_bound.copy()
        n_congested = int(congested.sum())
        if n_congested:
            low = rng.lognormal(cfg.congested_log_mu, cfg.congested_log_sigma,
                                size=n_congested)
            # Congestion can only *reduce* delivered bandwidth.
            bandwidth[congested] = np.minimum(low, client_bound[congested])

        loss = rng.uniform(0.0, cfg.clean_loss_hi, size=n)
        if n_congested:
            loss[congested] = rng.uniform(cfg.congested_loss_lo,
                                          cfg.congested_loss_hi,
                                          size=n_congested)
        return bandwidth, loss, congested
