"""Show schedule: what makes live access *object driven*.

The paper's central thesis is that access to live objects is driven by the
object, not the user: "activities occurring within the reality show" plus
diurnal audience availability explain the concurrency variability
(Section 3.2).  This module models the object side: a weekly repeating
schedule of in-show events (evictions, parties, daily highlights) that
multiply the baseline arrival rate and make viewers stickier while active.

:class:`CompositeRateProfile` combines the audience-availability profile
(:class:`~repro.distributions.diurnal.WeeklyProfile`) with the schedule's
arrival multiplier, yielding the rate profile the scenario's
piecewise-stationary Poisson arrival process consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import ConfigError
from ..units import DAY, HOUR, MINUTE, WEEK


@dataclass(frozen=True)
class ShowEvent:
    """A scheduled in-show event repeating weekly.

    Attributes
    ----------
    name:
        Human-readable label.
    day_of_week:
        0 = Sunday (the scenario convention: traces start on a Sunday).
        Use ``None`` for an event that recurs every day.
    start_hour:
        Start time within the day, in fractional hours.
    duration:
        Event length in seconds.
    arrival_boost:
        Multiplier applied to the client arrival rate while active.
    stickiness_boost:
        Multiplier applied to transfer lengths started while active.
    feed_down:
        When True the live feed is unavailable during the event: no
        transfers can start (the scenario drops them) and arrivals should
        be suppressed via a small ``arrival_boost``.  Models camera/feed
        maintenance windows — the extreme "unpopular time intervals" the
        paper invokes to explain the far tail of transfer interarrivals
        (Section 5.2).
    """

    name: str
    day_of_week: int | None
    start_hour: float
    duration: float
    arrival_boost: float = 1.0
    stickiness_boost: float = 1.0
    feed_down: bool = False

    def __post_init__(self) -> None:
        if self.day_of_week is not None and not 0 <= self.day_of_week <= 6:
            raise ConfigError(f"day_of_week must be in [0, 6], got {self.day_of_week}")
        if not 0 <= self.start_hour < 24:
            raise ConfigError(f"start_hour must be in [0, 24), got {self.start_hour}")
        if self.duration <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration}")
        if self.arrival_boost <= 0 or self.stickiness_boost <= 0:
            raise ConfigError("boost multipliers must be positive")

    def active(self, t: ArrayLike) -> np.ndarray:
        """Boolean mask of which times fall inside an occurrence.

        Occurrences may wrap past midnight (e.g. a party ending at 00:30).
        """
        arr = as_float_array(t, name="t")
        if self.day_of_week is None:
            phase = np.mod(arr, DAY)
            offset = self.start_hour * HOUR
            period = DAY
        else:
            phase = np.mod(arr, WEEK)
            offset = self.day_of_week * DAY + self.start_hour * HOUR
            period = WEEK
        rel = np.mod(phase - offset, period)
        return rel < self.duration


def default_reality_show_events() -> tuple[ShowEvent, ...]:
    """The default weekly event schedule of the simulated reality show.

    Modeled on the rhythm of the 2002 Brazilian show behind the paper's
    trace: a weekly eviction night, a weekend party, and a short daily
    highlights segment.
    """
    return (
        ShowEvent("eviction-night", day_of_week=2, start_hour=21.0,
                  duration=2 * HOUR, arrival_boost=1.9, stickiness_boost=1.5),
        ShowEvent("saturday-party", day_of_week=6, start_hour=22.0,
                  duration=2.5 * HOUR, arrival_boost=1.5, stickiness_boost=1.3),
        ShowEvent("daily-highlights", day_of_week=None, start_hour=13.0,
                  duration=30 * MINUTE, arrival_boost=1.25,
                  stickiness_boost=1.1),
    )


def nightly_maintenance_outages() -> tuple[ShowEvent, ...]:
    """Early-morning feed-maintenance windows of log-spread durations.

    One outage per day of the week around 4 am, with durations spanning
    8 to 120 minutes.  The log-uniform spread of dead-interval lengths
    produces a roughly index-1 far tail of transfer interarrivals — the
    paper's second regime (Section 5.2, Figure 17).
    """
    durations_minutes = (8.0, 15.0, 25.0, 40.0, 60.0, 90.0, 120.0)
    return tuple(
        ShowEvent(f"feed-maintenance-{day}", day_of_week=day,
                  start_hour=4.1, duration=minutes * MINUTE,
                  arrival_boost=1e-3, feed_down=True)
        for day, minutes in enumerate(durations_minutes))


@dataclass(frozen=True)
class ShowSchedule:
    """A collection of :class:`ShowEvent` with combined multipliers.

    Overlapping events multiply together.
    """

    events: tuple[ShowEvent, ...] = field(
        default_factory=default_reality_show_events)

    def arrival_multiplier(self, t: ArrayLike) -> FloatArray:
        """Combined arrival-rate multiplier at times ``t``."""
        arr = as_float_array(t, name="t")
        out = np.ones_like(arr)
        for event in self.events:
            mask = event.active(arr)
            out[mask] *= event.arrival_boost
        return out

    def stickiness_multiplier(self, t: ArrayLike) -> FloatArray:
        """Combined transfer-length multiplier at times ``t``."""
        arr = as_float_array(t, name="t")
        out = np.ones_like(arr)
        for event in self.events:
            mask = event.active(arr)
            out[mask] *= event.stickiness_boost
        return out

    def feed_down_mask(self, t: ArrayLike) -> np.ndarray:
        """Boolean mask of times at which the feed is unavailable."""
        arr = as_float_array(t, name="t")
        mask = np.zeros(arr.size, dtype=bool)
        for event in self.events:
            if event.feed_down:
                mask |= event.active(arr)
        return mask

    def max_arrival_multiplier(self) -> float:
        """Upper bound of the combined arrival multiplier."""
        product = 1.0
        for event in self.events:
            product *= max(event.arrival_boost, 1.0)
        return product


class CompositeRateProfile:
    """Audience availability times show-event boosts.

    Exposes the ``rate`` / ``max_rate`` / ``period`` interface consumed by
    :class:`~repro.distributions.piecewise_poisson.PiecewiseStationaryPoissonProcess`.

    Parameters
    ----------
    base:
        The availability profile (anything with ``rate``, ``max_rate``,
        ``period`` — typically a :class:`~repro.distributions.diurnal.WeeklyProfile`).
    schedule:
        The show schedule providing the arrival multiplier.
    """

    def __init__(self, base, schedule: ShowSchedule) -> None:
        self.base = base
        self.schedule = schedule
        self.period = WEEK

    def rate(self, t: ArrayLike) -> FloatArray:
        """Combined arrival rate at times ``t``."""
        arr = as_float_array(t, name="t")
        return (np.asarray(self.base.rate(arr), dtype=np.float64)
                * self.schedule.arrival_multiplier(arr))

    def max_rate(self) -> float:
        """Upper bound on the combined rate (for thinning)."""
        return float(self.base.max_rate()
                     * self.schedule.max_arrival_multiplier())

    def mean_rate(self, *, resolution: float = 300.0) -> float:
        """Numerically averaged rate over one week."""
        grid = np.arange(0.0, WEEK, resolution)
        return float(self.rate(grid).mean())

    def scaled_to_mean(self, mean_rate: float) -> "CompositeRateProfile":
        """Return a copy whose weekly mean rate equals ``mean_rate``."""
        current = self.mean_rate()
        if current <= 0:
            raise ConfigError("cannot rescale an all-zero composite profile")
        scaled_base = self.base.scaled_to_mean(
            self.base.mean_rate() * mean_rate / current)
        return CompositeRateProfile(scaled_base, self.schedule)
