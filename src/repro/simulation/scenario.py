"""End-to-end scenario: simulate the reality-show audience into a trace.

:class:`LiveShowScenario` assembles the substrates — show schedule, client
population, session behaviour, bandwidth model, server load model — and
produces a :class:`~repro.trace.store.Trace` shaped like the paper's
proprietary 28-day log, together with the generation-time ground truth
(session arrival times, session-to-client assignment, congestion flags)
that the test suite uses to validate the characterization pipeline by
parameter recovery.

The default configuration is a scale model: the same 28-day window and the
same planted distributions as the paper, with the mean session rate (and
hence population and concurrency magnitudes) reduced about twelvefold so
the full experiment suite runs on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._typing import FloatArray, IntArray, SeedLike
from ..distributions.diurnal import (
    REALITY_SHOW_WEEKDAY_SHAPE,
    DiurnalProfile,
    WeeklyProfile,
)
from ..distributions.piecewise_poisson import PiecewiseStationaryPoissonProcess
from ..errors import ConfigError
from ..rng import make_rng, spawn
from ..trace.store import Trace
from ..units import DAY, FIFTEEN_MINUTES
from .network import BandwidthModel, NetworkConfig
from .population import ClientPopulation, PopulationConfig
from .server import ServerConfig, ServerLoadModel
from .show import CompositeRateProfile, ShowSchedule
from .viewer import SessionBehavior, generate_sessions


@dataclass(frozen=True)
class ScenarioConfig:
    """Full configuration of a live-show simulation.

    Attributes
    ----------
    days:
        Trace length in days (the paper: 28).
    mean_session_rate:
        Time-averaged session arrival rate in sessions/second (the paper's
        trace: about 0.62; the scale-model default: 0.05).
    arrival_window:
        Stationarity window of the piecewise Poisson arrival process
        (the paper models 15-minute windows).
    population, behavior, network, server, schedule:
        Sub-component configurations.
    inject_spanning_entries:
        Number of bogus entries, with durations exceeding the trace
        period, injected to exercise the Section 2.4 sanitization.  These
        model the multi-harvest artifacts the paper found in its logs.
    hourly_shape:
        Optional 24-entry relative hourly arrival shape replacing the
        default (:data:`~repro.distributions.diurnal.REALITY_SHOW_HOURLY_SHAPE`);
        e.g. :data:`~repro.distributions.diurnal.DEEP_NIGHT_HOURLY_SHAPE`
        for the Figure 17 far-tail regime.
    qos_abandonment_factor:
        Mean multiplier applied to the durations of congestion-bound
        transfers (in (0, 1]; 1 disables the effect).  Implements the
        QoS-sensitivity the paper flags as future work (Sections 1 and 8):
        for live content, users cannot revisit later, so the paper
        conjectures the abandonment coupling is *weaker* than for stored
        media — this knob lets experiments quantify either assumption.
    audience_trend:
        Ratio of the arrival rate at the end of the trace to the rate at
        its start (linear ramp; 1 = stationary popularity).  Reality shows
        gain audience toward their finale; the knob leaves the configured
        *mean* session rate unchanged.
    """

    days: float = 28.0
    mean_session_rate: float = 0.05
    arrival_window: float = FIFTEEN_MINUTES
    population: PopulationConfig = field(default_factory=PopulationConfig)
    behavior: SessionBehavior = field(default_factory=SessionBehavior)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    schedule: ShowSchedule = field(default_factory=ShowSchedule)
    inject_spanning_entries: int = 12
    hourly_shape: tuple[float, ...] | None = None
    qos_abandonment_factor: float = 1.0
    audience_trend: float = 1.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ConfigError(f"days must be positive, got {self.days}")
        if self.mean_session_rate <= 0:
            raise ConfigError(
                f"mean_session_rate must be positive, got {self.mean_session_rate}")
        if self.arrival_window <= 0:
            raise ConfigError("arrival_window must be positive")
        if self.inject_spanning_entries < 0:
            raise ConfigError("inject_spanning_entries must be non-negative")
        if self.hourly_shape is not None:
            if len(self.hourly_shape) != 24:
                raise ConfigError(
                    f"hourly_shape needs 24 entries, got {len(self.hourly_shape)}")
            if any(v < 0 for v in self.hourly_shape):
                raise ConfigError("hourly_shape entries must be non-negative")
        if not 0.0 < self.qos_abandonment_factor <= 1.0:
            raise ConfigError(
                f"qos_abandonment_factor must be in (0, 1], got "
                f"{self.qos_abandonment_factor}")
        if not self.audience_trend > 0:
            raise ConfigError(
                f"audience_trend must be positive, got {self.audience_trend}")

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return self.days * DAY

    @classmethod
    def smoke(cls) -> "ScenarioConfig":
        """A small, fast configuration for unit tests (about 2 days)."""
        return cls(
            days=2.0,
            mean_session_rate=0.03,
            population=PopulationConfig(n_clients=1_500, n_ases=60,
                                        forced_br_ases=5),
            inject_spanning_entries=3,
        )

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Return a copy with the session rate multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigError(f"factor must be positive, got {factor}")
        return replace(self, mean_session_rate=self.mean_session_rate * factor)


@dataclass(frozen=True)
class SimulationResult:
    """A simulated trace plus generation-time ground truth.

    Attributes
    ----------
    trace:
        The observable trace, as the server would have logged it.
    population:
        The client population behind the trace (provides the IP resolver).
    session_arrivals:
        True session start times, one per generated session.
    session_client:
        True client index of each generated session.
    transfer_session:
        True owning-session index of each transfer *in trace order*.
    congested:
        True congestion-bound flag of each transfer in trace order.
    """

    trace: Trace
    population: ClientPopulation
    session_arrivals: FloatArray = field(repr=False)
    session_client: IntArray = field(repr=False)
    transfer_session: IntArray = field(repr=False)
    congested: np.ndarray = field(repr=False)

    @property
    def n_sessions(self) -> int:
        """Number of generated (ground-truth) sessions."""
        return int(self.session_arrivals.size)


class LiveShowScenario:
    """Assembles and runs the live-show world.

    Parameters
    ----------
    config:
        Scenario configuration (defaults to the 28-day scale model).
    """

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        self.config = config or ScenarioConfig()

    def arrival_profile(self) -> CompositeRateProfile:
        """The arrival-rate profile: audience availability times show events,
        scaled so the weekly mean equals ``config.mean_session_rate``."""
        cfg = self.config
        if cfg.hourly_shape is None:
            base = WeeklyProfile.reality_show(cfg.mean_session_rate)
        else:
            daily = DiurnalProfile(np.asarray(cfg.hourly_shape,
                                              dtype=np.float64), period=DAY)
            base = WeeklyProfile(daily, REALITY_SHOW_WEEKDAY_SHAPE
                                 ).scaled_to_mean(cfg.mean_session_rate)
        composite = CompositeRateProfile(base, cfg.schedule)
        return composite.scaled_to_mean(cfg.mean_session_rate)

    def run(self, seed: SeedLike = None) -> SimulationResult:
        """Simulate the full scenario and return trace plus ground truth."""
        cfg = self.config
        rng = make_rng(seed)
        (pop_rng, arrival_rng, identity_rng, behavior_rng, network_rng,
         server_rng, artifact_rng) = spawn(rng, 7)
        duration = cfg.duration

        population = ClientPopulation.build(cfg.population, pop_rng)

        process = PiecewiseStationaryPoissonProcess(
            self.arrival_profile(), window=cfg.arrival_window)
        if cfg.audience_trend == 1.0:  # reprolint: disable=RL007, exact config sentinel: 1.0 means "no ramp"
            arrivals = process.generate(duration, arrival_rng)
        else:
            # Popularity ramp by thinning: oversample at the ramp's peak,
            # accept each arrival proportionally to the linear trend.  The
            # pre-scaling keeps the configured mean rate exact.
            trend = cfg.audience_trend
            peak = max(1.0, trend)
            oversample = peak / ((1.0 + trend) / 2.0)
            scaled = PiecewiseStationaryPoissonProcess(
                self.arrival_profile().scaled_to_mean(
                    cfg.mean_session_rate * oversample),
                window=cfg.arrival_window)
            candidates = scaled.generate(duration, arrival_rng)
            ramp = 1.0 + (trend - 1.0) * candidates / duration
            keep_arrival = arrival_rng.random(candidates.size) < ramp / peak
            arrivals = candidates[keep_arrival]
        n_sessions = arrivals.size

        session_client = population.sample_clients(n_sessions, identity_rng)

        batch = generate_sessions(
            cfg.behavior, arrivals,
            stickiness=cfg.schedule.stickiness_multiplier,
            seed=behavior_rng)

        # Discard transfers scheduled past the observation window and clip
        # in-progress ones at the final log harvest, as a real collection
        # period does.  Transfers that would start while the feed is down
        # (maintenance outages) cannot happen at all.
        keep = batch.start < duration
        if any(event.feed_down for event in cfg.schedule.events):
            keep &= ~cfg.schedule.feed_down_mask(batch.start)
        starts = batch.start[keep]
        durations = np.minimum(batch.duration[keep], duration - starts)
        object_id = batch.object_id[keep]
        transfer_session = batch.session_index[keep]
        transfer_client = session_client[transfer_session]

        bandwidth, loss, congested = BandwidthModel(cfg.network).sample(
            population.access_bps[transfer_client], network_rng)

        # QoS sensitivity: congestion-bound transfers are abandoned early
        # when the factor is below 1 (Sections 1 and 8 of the paper).
        if cfg.qos_abandonment_factor < 1.0 and congested.any():
            durations = durations.copy()
            durations[congested] *= cfg.qos_abandonment_factor

        # Server load reflects the *true* activity, clipped at the
        # observation window: ends = min(start + duration, window), never
        # past the trace extent.  It is computed before the artifact
        # injection below — the multi-harvest artifacts corrupt only the
        # *recorded* durations, so the logged CPU is artifact-invariant.
        load_model = ServerLoadModel(cfg.server)
        ends = np.minimum(starts + durations, duration)
        concurrency = load_model.concurrency_at(starts, starts, ends)
        server_cpu = load_model.cpu_utilization(concurrency, server_rng)

        # Inject the paper's multi-harvest artifacts: a handful of entries
        # whose recorded duration exceeds the whole trace period.
        n_bogus = min(cfg.inject_spanning_entries, starts.size)
        if n_bogus:
            bogus = artifact_rng.choice(starts.size, size=n_bogus,
                                        replace=False)
            durations = durations.copy()
            durations[bogus] = duration * artifact_rng.uniform(
                1.05, 1.60, size=n_bogus)

        order = np.argsort(starts, kind="stable")
        trace = Trace(
            clients=population.client_table(),
            client_index=transfer_client[order],
            object_id=object_id[order],
            start=starts[order],
            duration=durations[order],
            bandwidth_bps=bandwidth[order],
            packet_loss=loss[order],
            server_cpu=server_cpu[order],
            extent=duration,
        )
        return SimulationResult(
            trace=trace,
            population=population,
            session_arrivals=arrivals,
            session_client=session_client,
            transfer_session=transfer_session[order],
            congested=congested[order],
        )
