"""Minimal discrete-event simulation engine.

A binary-heap event queue with a simulated clock, used by the replay server
(:mod:`repro.simulation.server`) to play synthetic workloads against a
server model for capacity-planning studies.  The bulk trace generation in
:mod:`repro.simulation.scenario` is vectorized and does not go through this
engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("time", "_cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class EventQueue:
    """Priority queue of timed callbacks with a monotone simulated clock.

    Events at equal times fire in scheduling order (a strictly increasing
    sequence number breaks ties), which makes simulations deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, EventHandle,
                               Callable[..., Any], tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def at(self, time: float, callback: Callable[..., Any],
           *args: Any, priority: int = 0) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        At equal times, lower ``priority`` fires first (scheduling order
        breaks remaining ties).  This lets completions free resources
        before same-instant arrivals — the half-open ``[start, end)``
        interval semantics used throughout the library.

        Scheduling in the past raises :class:`SimulationError` — the
        simulated clock never runs backwards.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; simulated clock is at {self._now}")
        handle = EventHandle(time)
        heapq.heappush(self._heap, (time, priority, next(self._seq), handle,
                                    callback, args))
        return handle

    def after(self, delay: float, callback: Callable[..., Any],
              *args: Any, priority: int = 0) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority)

    def step(self) -> bool:
        """Fire the next non-cancelled event; returns False when empty."""
        while self._heap:
            time, _, _, handle, callback, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None) -> int:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the number of events fired.  When ``until`` is given, the
        clock is advanced to exactly ``until`` at the end even if the last
        event fired earlier.
        """
        fired = 0
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            if not self.step():
                break
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return fired
