"""Replay workloads against the event-driven server.

The paper motivates live-workload characterization with capacity planning:
live requests cannot be deferred, so rejecting them denies access outright
(Section 1).  :func:`replay_trace` plays a trace (measured or synthetic)
through :class:`~repro.simulation.server.StreamingServer` under a given
admission-control limit, quantifying exactly how many live moments an
underprovisioned server would deny.
"""

from __future__ import annotations

import numpy as np

from ..trace.store import Trace
from .server import ReplayResult, ServerConfig, StreamingServer


def replay_trace(trace: Trace, *,
                 config: ServerConfig | None = None) -> ReplayResult:
    """Replay every transfer of ``trace`` through a fresh server.

    Parameters
    ----------
    trace:
        The workload; each transfer becomes one request at its start time.
    config:
        Server parameters, including the optional ``max_concurrent``
        admission limit.

    Returns
    -------
    ReplayResult
        Served/rejected counts, peak concurrency, bytes served, and the
        exact concurrency step function.
    """
    server = StreamingServer(config)
    server.submit_workload(trace.start, trace.duration, trace.bandwidth_bps)
    return server.run()


def provisioning_sweep(trace: Trace, limits: list[int],
                       *, base: ServerConfig | None = None
                       ) -> list[tuple[int, ReplayResult]]:
    """Replay ``trace`` under each admission limit in ``limits``.

    Returns ``(limit, result)`` pairs — the data behind a capacity-planning
    curve of denied live requests versus provisioned capacity.
    """
    base = base or ServerConfig()
    out = []
    for limit in limits:
        cfg = ServerConfig(capacity=base.capacity, base_cpu=base.base_cpu,
                           cpu_noise_sigma=base.cpu_noise_sigma,
                           max_concurrent=int(limit))
        out.append((int(limit), replay_trace(trace, config=cfg)))
    return out


def demand_peak(trace: Trace) -> int:
    """Peak concurrent-transfer demand of ``trace`` (no admission control).

    Computed directly from the interval endpoints (no event simulation).
    """
    if len(trace) == 0:
        return 0
    times = np.concatenate([trace.start, trace.end])
    deltas = np.concatenate([np.ones(len(trace)), -np.ones(len(trace))])
    order = np.lexsort((deltas, times))  # ends before starts at equal times
    return int(np.cumsum(deltas[order]).max())
