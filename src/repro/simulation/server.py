"""Unicast streaming server models.

Two layers of fidelity:

* :class:`ServerLoadModel` — a closed-form CPU-utilization model used when
  generating traces in bulk: utilization grows with the number of
  concurrent transfers relative to the configured capacity, plus
  measurement noise.  Scenario defaults keep utilization under the paper's
  10% screening threshold essentially always (Section 2.4).
* :class:`StreamingServer` — an event-driven server for *replaying*
  synthetic workloads (capacity planning, the paper's stated motivation for
  live workload characterization).  Supports an optional admission-control
  limit so the paper's argument — rejecting live requests denies access
  outright — can be demonstrated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, SeedLike
from ..errors import ConfigError, SimulationError
from ..rng import make_rng
from .events import EventQueue


@dataclass(frozen=True)
class ServerConfig:
    """Parameters of the server models.

    Attributes
    ----------
    capacity:
        Number of concurrent transfers at which CPU utilization reaches
        100% (scenario defaults place peak demand far below this, matching
        the paper's observation of a never-stressed server).
    base_cpu:
        Idle CPU utilization floor.
    cpu_noise_sigma:
        Standard deviation of the additive measurement noise on sampled
        utilization.
    max_concurrent:
        Admission-control limit of the replay server; ``None`` disables
        admission control (every request is served).
    """

    capacity: int = 25_000
    base_cpu: float = 0.005
    cpu_noise_sigma: float = 0.004
    max_concurrent: int | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(f"capacity must be positive, got {self.capacity}")
        if not 0.0 <= self.base_cpu < 1.0:
            raise ConfigError(f"base_cpu must be in [0, 1), got {self.base_cpu}")
        if self.cpu_noise_sigma < 0:
            raise ConfigError("cpu_noise_sigma must be non-negative")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ConfigError("max_concurrent must be positive when set")


class ServerLoadModel:
    """Closed-form CPU model: utilization from concurrency.

    Parameters
    ----------
    config:
        Server parameters; see :class:`ServerConfig`.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()

    @staticmethod
    def concurrency_at(times: FloatArray, starts: FloatArray,
                       ends: FloatArray) -> np.ndarray:
        """Number of transfers active at each query time.

        A transfer ``[s, e)`` is active at ``t`` when ``s <= t < e``.
        """
        t = np.asarray(times, dtype=np.float64)
        s_sorted = np.sort(np.asarray(starts, dtype=np.float64))
        e_sorted = np.sort(np.asarray(ends, dtype=np.float64))
        return (np.searchsorted(s_sorted, t, side="right")
                - np.searchsorted(e_sorted, t, side="right"))

    def cpu_utilization(self, concurrency: np.ndarray,
                        seed: SeedLike = None) -> FloatArray:
        """Sampled CPU utilization for each concurrency level."""
        cfg = self.config
        rng = make_rng(seed)
        conc = np.asarray(concurrency, dtype=np.float64)
        clean = cfg.base_cpu + conc / cfg.capacity
        noisy = clean + rng.normal(0.0, cfg.cpu_noise_sigma, size=conc.shape)
        return np.clip(noisy, 0.0, 1.0)


@dataclass
class ReplayResult:
    """Outcome of replaying a workload through :class:`StreamingServer`.

    Attributes
    ----------
    n_requests:
        Requests submitted.
    n_served:
        Requests admitted and served to completion.
    n_rejected:
        Requests turned away by admission control.
    peak_concurrency:
        Maximum simultaneous transfers observed.
    bytes_served:
        Total bytes delivered across served transfers.
    rejected_times:
        Start times of rejected requests (for "who was denied the live
        moment" analyses).
    concurrency_times, concurrency_values:
        The exact step function of concurrency over the replay (change
        points and values after each change).
    """

    n_requests: int = 0
    n_served: int = 0
    n_rejected: int = 0
    peak_concurrency: int = 0
    bytes_served: float = 0.0
    rejected_times: list[float] = field(default_factory=list)
    concurrency_times: list[float] = field(default_factory=list)
    concurrency_values: list[int] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        """Fraction of requests rejected."""
        if self.n_requests == 0:
            return 0.0
        return self.n_rejected / self.n_requests


class StreamingServer:
    """Event-driven unicast server for workload replay.

    Submit transfers with :meth:`submit`, then :meth:`run`.  Admission
    control (when ``config.max_concurrent`` is set) rejects a request if
    the server is already serving that many transfers — the paper's point
    being that for *live* content such a rejection is a denial of access,
    not a deferral.

    Parameters
    ----------
    config:
        Server parameters.
    queue:
        Optionally share an external event queue.
    """

    def __init__(self, config: ServerConfig | None = None,
                 queue: EventQueue | None = None) -> None:
        self.config = config or ServerConfig()
        self.queue = queue or EventQueue()
        self.result = ReplayResult()
        self._active = 0
        self._submitted = False

    def submit(self, start: float, duration: float,
               bandwidth_bps: float = 0.0) -> None:
        """Schedule one transfer request at ``start`` for ``duration``."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration}")
        # Requests carry priority 1 so that same-instant completions
        # (priority 0) free capacity first: intervals are [start, end).
        self.queue.at(start, self._on_request, duration, bandwidth_bps,
                      priority=1)
        self.result.n_requests += 1
        self._submitted = True

    def submit_workload(self, starts: np.ndarray, durations: np.ndarray,
                        bandwidths: np.ndarray | None = None) -> None:
        """Schedule a whole workload from parallel arrays."""
        starts = np.asarray(starts, dtype=np.float64)
        durations = np.asarray(durations, dtype=np.float64)
        if bandwidths is None:
            bandwidths = np.zeros_like(starts)
        bandwidths = np.asarray(bandwidths, dtype=np.float64)
        if not (starts.size == durations.size == bandwidths.size):
            raise SimulationError("workload arrays must have equal length")
        for s, d, b in zip(starts, durations, bandwidths, strict=True):
            self.submit(float(s), float(d), float(b))

    def _record_concurrency(self) -> None:
        self.result.concurrency_times.append(self.queue.now)
        self.result.concurrency_values.append(self._active)

    def _on_request(self, duration: float, bandwidth_bps: float) -> None:
        limit = self.config.max_concurrent
        if limit is not None and self._active >= limit:
            self.result.n_rejected += 1
            self.result.rejected_times.append(self.queue.now)
            return
        self._active += 1
        self.result.peak_concurrency = max(self.result.peak_concurrency,
                                           self._active)
        self._record_concurrency()
        self.queue.after(duration, self._on_complete, duration, bandwidth_bps)

    def _on_complete(self, duration: float, bandwidth_bps: float) -> None:
        self._active -= 1
        self.result.n_served += 1
        self.result.bytes_served += duration * bandwidth_bps / 8.0
        self._record_concurrency()

    def run(self) -> ReplayResult:
        """Run the replay to completion and return the result."""
        if not self._submitted:
            raise SimulationError("no workload submitted before run()")
        self.queue.run()
        if self._active != 0:
            raise SimulationError(
                f"replay ended with {self._active} transfers still active")
        return self.result
