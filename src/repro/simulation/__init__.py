"""The simulated "world" that stands in for the paper's proprietary trace.

The paper's data — 28 days of accesses to two live feeds of a Brazilian
reality show — is not public.  This subpackage builds its closest synthetic
equivalent: a stochastic audience and server model whose *planted* behaviour
matches every distributional finding of the paper, so the characterization
pipeline (:mod:`repro.core`) can be validated by parameter recovery.

Components
----------
* :mod:`~repro.simulation.events` — a minimal discrete-event engine used by
  the replay server.
* :mod:`~repro.simulation.show` — the show schedule: diurnal audience
  availability modulated by scheduled in-show events.
* :mod:`~repro.simulation.population` — the client population: Zipf interest
  ranks, AS/country topology, access-link tiers, shared IPs.
* :mod:`~repro.simulation.viewer` — session behaviour: transfers per
  session, intra-session gaps, stickiness (transfer lengths), feed switching.
* :mod:`~repro.simulation.network` — last-mile bandwidth: client-bound
  spikes plus a congestion-bound mode.
* :mod:`~repro.simulation.server` — the unicast server: CPU-load model and
  an event-driven replay server with optional admission control.
* :mod:`~repro.simulation.scenario` — end-to-end assembly producing a
  :class:`~repro.trace.store.Trace`.
"""

from .events import EventQueue
from .network import BandwidthModel, NetworkConfig
from .population import ClientPopulation, PopulationConfig
from .scenario import LiveShowScenario, ScenarioConfig
from .server import ReplayResult, ServerConfig, ServerLoadModel, StreamingServer
from .show import CompositeRateProfile, ShowEvent, ShowSchedule
from .viewer import SessionBatch, SessionBehavior

__all__ = [
    "BandwidthModel",
    "ClientPopulation",
    "CompositeRateProfile",
    "EventQueue",
    "LiveShowScenario",
    "NetworkConfig",
    "PopulationConfig",
    "ReplayResult",
    "ScenarioConfig",
    "ServerConfig",
    "ServerLoadModel",
    "SessionBatch",
    "SessionBehavior",
    "ShowEvent",
    "ShowSchedule",
    "StreamingServer",
]
