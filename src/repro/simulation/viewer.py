"""Viewer session behaviour: the *user* side of the workload.

Once a client arrives (a session starts), its behaviour is governed by the
session-layer variables the paper characterizes: how many transfers the
session contains (Zipf, Figure 13), when each transfer starts relative to
the previous one (lognormal intra-session interarrivals, Figure 14), how
long each transfer lasts — the client's *stickiness* to the live feed
(lognormal, Figure 19) — and which of the live feeds it watches
(Figure 1's overlapping feed-1/feed-2 transfers).

Generation is fully vectorized over all sessions using the segmented
primitives in :mod:`repro.arrayops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._typing import FloatArray, IntArray, SeedLike
from ..arrayops import alternate_on_switch, expand_by_segment, segmented_cumsum
from ..distributions.lognormal import LognormalDistribution
from ..distributions.zipf import ZetaDistribution
from ..errors import ConfigError
from ..rng import make_rng, spawn

#: Type of the stickiness-multiplier hook (transfer start times -> factor).
StickinessFn = Callable[[FloatArray], FloatArray]


@dataclass(frozen=True)
class SessionBehavior:
    """Distributional parameters of session behaviour.

    Defaults are the paper's Table 2 values.

    Attributes
    ----------
    transfers_alpha:
        Zipf exponent of the transfers-per-session law (paper: 2.70417).
    transfers_k_max:
        Truncation of the transfers-per-session law (bounds memory; the
        paper's Figure 13 support extends to about 10^4).
    gap_log_mu, gap_log_sigma:
        Lognormal parameters of intra-session transfer interarrivals —
        the spacing between consecutive transfer *starts*
        (paper: mu 4.89991, sigma 1.32074).
    length_log_mu, length_log_sigma:
        Lognormal parameters of transfer lengths
        (paper: mu 4.383921, sigma 1.427247).
    n_feeds:
        Number of live objects (the paper's trace has two).
    feed_switch_prob:
        Probability that a non-initial transfer switches feeds.
    feed_preference:
        Relative weights of the feeds for a session's first transfer.
    """

    transfers_alpha: float = 2.70417
    transfers_k_max: int = 10_000
    gap_log_mu: float = 4.89991
    gap_log_sigma: float = 1.32074
    length_log_mu: float = 4.383921
    length_log_sigma: float = 1.427247
    n_feeds: int = 2
    feed_switch_prob: float = 0.25
    feed_preference: tuple[float, ...] = (0.6, 0.4)

    def __post_init__(self) -> None:
        if self.transfers_alpha <= 1.0:
            raise ConfigError("transfers_alpha must exceed 1")
        if self.transfers_k_max < 1:
            raise ConfigError("transfers_k_max must be positive")
        if self.gap_log_sigma <= 0 or self.length_log_sigma <= 0:
            raise ConfigError("lognormal sigmas must be positive")
        if self.n_feeds < 1:
            raise ConfigError("n_feeds must be positive")
        if not 0.0 <= self.feed_switch_prob <= 1.0:
            raise ConfigError("feed_switch_prob must be in [0, 1]")
        if len(self.feed_preference) != self.n_feeds:
            raise ConfigError(
                f"feed_preference needs {self.n_feeds} weights, "
                f"got {len(self.feed_preference)}")
        if any(w <= 0 for w in self.feed_preference):
            raise ConfigError("feed preferences must be positive")

    def transfers_per_session_law(self) -> ZetaDistribution:
        """The transfers-per-session distribution."""
        return ZetaDistribution(self.transfers_alpha, k_max=self.transfers_k_max)

    def gap_law(self) -> LognormalDistribution:
        """The intra-session transfer-interarrival distribution."""
        return LognormalDistribution(self.gap_log_mu, self.gap_log_sigma)

    def length_law(self) -> LognormalDistribution:
        """The transfer-length (stickiness) distribution."""
        return LognormalDistribution(self.length_log_mu, self.length_log_sigma)


@dataclass(frozen=True)
class SessionBatch:
    """All transfers of a batch of sessions, in columnar form.

    Attributes
    ----------
    session_index:
        Per-transfer index of the owning session.
    start:
        Per-transfer start times (seconds).
    duration:
        Per-transfer lengths (seconds).
    object_id:
        Per-transfer feed index.
    transfers_per_session:
        Per-session transfer counts (defines the segmentation).
    """

    session_index: IntArray = field(repr=False)
    start: FloatArray = field(repr=False)
    duration: FloatArray = field(repr=False)
    object_id: IntArray = field(repr=False)
    transfers_per_session: IntArray = field(repr=False)

    @property
    def n_transfers(self) -> int:
        """Total number of transfers in the batch."""
        return int(self.start.size)

    @property
    def n_sessions(self) -> int:
        """Number of sessions in the batch."""
        return int(self.transfers_per_session.size)


def generate_sessions(behavior: SessionBehavior, arrival_times: FloatArray,
                      *, stickiness: StickinessFn | None = None,
                      seed: SeedLike = None) -> SessionBatch:
    """Generate the transfers of one session per arrival time.

    The first transfer of each session starts at the session's arrival
    time; subsequent transfer starts are spaced by lognormal gaps (the
    paper's generative model, Section 6).  Transfer durations are drawn
    from the stickiness lognormal and optionally modulated by the show's
    ``stickiness`` hook evaluated at each transfer's start.

    Parameters
    ----------
    behavior:
        Session behaviour parameters.
    arrival_times:
        One session arrival time per session (seconds, any order).
    stickiness:
        Optional multiplier over transfer lengths as a function of start
        time (the show's events make viewers stickier).
    seed:
        Seed or generator.
    """
    rng = make_rng(seed)
    count_rng, gap_rng, length_rng, feed_rng = spawn(rng, 4)
    arrivals = np.asarray(arrival_times, dtype=np.float64)
    n_sessions = arrivals.size

    n_transfers = behavior.transfers_per_session_law().sample(
        n_sessions, count_rng)
    total = int(n_transfers.sum())

    gaps = behavior.gap_law().sample(total, gap_rng)
    offsets = segmented_cumsum(gaps, n_transfers, exclusive=True)
    starts = expand_by_segment(arrivals, n_transfers) + offsets

    durations = behavior.length_law().sample(total, length_rng)
    if stickiness is not None:
        durations = durations * np.asarray(stickiness(starts),
                                           dtype=np.float64)

    preference = np.asarray(behavior.feed_preference, dtype=np.float64)
    preference = preference / preference.sum()
    first_feed = feed_rng.choice(behavior.n_feeds, size=n_sessions,
                                 p=preference)
    switch = feed_rng.random(total) < behavior.feed_switch_prob
    object_id = alternate_on_switch(switch, n_transfers,
                                    first_value=first_feed,
                                    n_choices=behavior.n_feeds)

    session_index = expand_by_segment(
        np.arange(n_sessions, dtype=np.int64), n_transfers)
    return SessionBatch(
        session_index=session_index,
        start=starts,
        duration=durations,
        object_id=object_id,
        transfers_per_session=n_transfers.astype(np.int64),
    )
