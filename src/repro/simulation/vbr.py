"""Variable-bit-rate (VBR) live content encoding.

GISMO models streaming objects with *self-similar variable bit-rate*
content [19], and the paper keeps that ingredient for live media
(Section 6.2: "many of these characteristics are still applicable ...
e.g., VBR characteristics of content").  A live camera feed's encoded
bitrate fluctuates with scene activity, and MPEG measurements show those
fluctuations are long-range dependent (Hurst ~0.8).

:class:`VbrEncoder` produces a per-interval encoded-bitrate series with a
lognormal marginal (positive by construction, mean and coefficient of
variation as configured) whose log is exact fractional Gaussian noise — so
the planted Hurst parameter is recoverable by the estimators in
:mod:`repro.analysis.selfsimilarity`.

:func:`unicast_egress_series` turns a trace plus per-feed encoders into
the server's offered egress load over time — the quantity a capacity
planner provisions for, and the input to the multicast comparison in
:mod:`repro.analysis.multicast`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._typing import FloatArray, SeedLike
from ..analysis.concurrency import sampled_concurrency
from ..distributions.selfsimilar import FractionalGaussianNoise
from ..errors import ConfigError
from ..rng import make_rng, spawn
from ..trace.store import Trace


@dataclass(frozen=True)
class VbrConfig:
    """Parameters of a VBR live encoding.

    Attributes
    ----------
    mean_bps:
        Long-run average encoded bitrate.
    coefficient_of_variation:
        Std/mean of the bitrate marginal (MPEG-1 traces: ~0.2-0.6).
    hurst:
        Hurst parameter of the log-bitrate process (~0.8 in measurements).
    """

    mean_bps: float = 300_000.0
    coefficient_of_variation: float = 0.35
    hurst: float = 0.80

    def __post_init__(self) -> None:
        if self.mean_bps <= 0:
            raise ConfigError(f"mean_bps must be positive, got {self.mean_bps}")
        if self.coefficient_of_variation <= 0:
            raise ConfigError("coefficient_of_variation must be positive")
        if not 0.0 < self.hurst < 1.0:
            raise ConfigError(f"hurst must be in (0, 1), got {self.hurst}")


class VbrEncoder:
    """Self-similar VBR bitrate series generator.

    The series is ``rate(t) = mean * exp(sigma_log * G(t) - sigma_log^2/2)``
    with ``G`` standard fGn, giving a lognormal marginal with the exact
    configured mean and coefficient of variation.

    Parameters
    ----------
    config:
        Encoding parameters; see :class:`VbrConfig`.
    """

    def __init__(self, config: VbrConfig | None = None) -> None:
        self.config = config or VbrConfig()
        cv2 = self.config.coefficient_of_variation ** 2
        self._sigma_log = math.sqrt(math.log1p(cv2))

    def bitrate_series(self, n_steps: int,
                       seed: SeedLike = None) -> FloatArray:
        """Generate ``n_steps`` consecutive encoded-bitrate samples."""
        if n_steps < 1:
            raise ConfigError(f"n_steps must be positive, got {n_steps}")
        noise = FractionalGaussianNoise(self.config.hurst)
        g = noise.sample_path(n_steps, seed)
        log_rate = self._sigma_log * g - 0.5 * self._sigma_log ** 2
        return self.config.mean_bps * np.exp(log_rate)

    def constant_series(self, n_steps: int) -> FloatArray:
        """The CBR strawman at the same mean rate (for ablations)."""
        if n_steps < 1:
            raise ConfigError(f"n_steps must be positive, got {n_steps}")
        return np.full(n_steps, self.config.mean_bps)


def per_feed_concurrency(trace: Trace, *, step: float = 60.0) -> dict[int, FloatArray]:
    """Concurrent-transfer count per live feed sampled every ``step``."""
    out: dict[int, FloatArray] = {}
    for feed in np.unique(trace.object_id):
        mask = trace.object_id == feed
        out[int(feed)] = sampled_concurrency(
            trace.start[mask], np.minimum(trace.end[mask], trace.extent),
            extent=trace.extent, step=step)
    return out


def unicast_egress_series(trace: Trace, *, step: float = 60.0,
                          encoder: VbrEncoder | None = None,
                          seed: SeedLike = None
                          ) -> tuple[FloatArray, FloatArray]:
    """Server egress (bits/second) over time for unicast delivery.

    Each active transfer receives its feed's encoded bitrate, so the
    egress at time ``t`` is ``sum over feeds of concurrency_f(t) *
    rate_f(t)``.  With ``encoder=None`` every feed streams CBR at 300
    kbit/s; otherwise each feed gets an independent VBR series from the
    encoder's configuration.

    Returns ``(times, bits_per_second)``.
    """
    rng = make_rng(seed)
    concurrency = per_feed_concurrency(trace, step=step)
    if not concurrency:
        return np.empty(0), np.empty(0)
    n_steps = next(iter(concurrency.values())).size
    times = np.arange(n_steps) * step
    egress = np.zeros(n_steps)
    feed_rngs = spawn(rng, len(concurrency))
    for feed_rng, (_feed, counts) in zip(feed_rngs,
                                         sorted(concurrency.items()),
                                         strict=True):
        if encoder is None:
            rates = VbrEncoder().constant_series(n_steps)
        else:
            rates = encoder.bitrate_series(n_steps, feed_rng)
        egress += counts * rates
    return times, egress
