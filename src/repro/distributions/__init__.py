"""Parametric and empirical distributions used by the workload model.

The paper's generative model (Table 2) is built from a small set of
distribution families: Zipf laws for client interest and transfers per
session, lognormals for session ON times / transfer lengths / intra-session
interarrivals, an exponential for session OFF times, and a non-stationary
(piecewise-stationary) Poisson process for client arrivals.  This subpackage
implements those families with a uniform sampling/CDF interface, plus the
fitting routines the characterization pipeline uses to recover their
parameters from traces.
"""

from .base import ContinuousDistribution, DiscreteDistribution, Distribution
from .diurnal import DiurnalProfile, WeeklyProfile
from .empirical import EmpiricalDistribution
from .exponential import ExponentialDistribution
from .fitting import (
    DiurnalFit,
    TailFit,
    TwoRegimeTailFit,
    ZipfFit,
    fit_diurnal_profile,
    fit_exponential,
    fit_lognormal,
    fit_tail_index,
    fit_two_regime_tail,
    fit_zipf_mle,
    fit_zipf_pmf,
    fit_zipf_rank,
    hill_estimator,
)
from .goodness import (
    GoodnessOfFit,
    anderson_darling_distance,
    evaluate_fit,
    ks_distance,
    ks_statistic_table,
    ks_two_sample,
    qq_points,
)
from .lognormal import LognormalDistribution
from .mixture import CategoricalChoice, MixtureDistribution
from .pareto import ParetoDistribution, TwoRegimePareto
from .piecewise_poisson import PiecewiseStationaryPoissonProcess
from .selfsimilar import FractionalGaussianNoise, fgn_autocovariance
from .zipf import ZetaDistribution, ZipfLaw

__all__ = [
    "CategoricalChoice",
    "ContinuousDistribution",
    "DiscreteDistribution",
    "Distribution",
    "DiurnalFit",
    "DiurnalProfile",
    "EmpiricalDistribution",
    "ExponentialDistribution",
    "FractionalGaussianNoise",
    "GoodnessOfFit",
    "LognormalDistribution",
    "MixtureDistribution",
    "ParetoDistribution",
    "PiecewiseStationaryPoissonProcess",
    "TailFit",
    "TwoRegimePareto",
    "TwoRegimeTailFit",
    "WeeklyProfile",
    "ZetaDistribution",
    "ZipfFit",
    "ZipfLaw",
    "fgn_autocovariance",
    "fit_diurnal_profile",
    "fit_exponential",
    "fit_lognormal",
    "fit_tail_index",
    "fit_two_regime_tail",
    "fit_zipf_mle",
    "fit_zipf_pmf",
    "fit_zipf_rank",
    "evaluate_fit",
    "hill_estimator",
    "anderson_darling_distance",
    "ks_distance",
    "ks_statistic_table",
    "ks_two_sample",
    "qq_points",
]
