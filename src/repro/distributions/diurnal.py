"""Periodic rate profiles (diurnal and weekly patterns).

The paper finds that the client arrival process is non-stationary with a
strongly periodic mean: diurnal patterns dominate (Figure 4 right, Figure 8)
with a quiet window between roughly 4 am and 11 am, and a weaker weekly
modulation (weekends slightly busier).  The generative model of Section 6
keys a piecewise-stationary Poisson process to exactly such a periodic mean
rate profile.

:class:`DiurnalProfile` is a piecewise-constant periodic rate function;
:class:`WeeklyProfile` composes a diurnal shape with day-of-week multipliers.
Both expose ``rate(t)`` (vectorized) and ``period``, the interface consumed
by :class:`repro.distributions.piecewise_poisson.PiecewiseStationaryPoissonProcess`.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import DistributionError
from ..units import DAY, WEEK

#: Relative hourly arrival-rate shape of the reality-show audience, indexed
#: by hour of day.  Captures the paper's observations: a deep quiet window
#: from 4 am to 11 am, a midday ramp, and a prime-time evening peak.
REALITY_SHOW_HOURLY_SHAPE: tuple[float, ...] = (
    0.55, 0.40, 0.30, 0.22,  # 00-03: late night decline
    0.10, 0.07, 0.06, 0.07,  # 04-07: quiet window
    0.09, 0.13, 0.20, 0.35,  # 08-11: morning ramp-up starts late
    0.50, 0.55, 0.50, 0.48,  # 12-15: midday plateau
    0.50, 0.55, 0.65, 0.80,  # 16-19: evening build-up
    0.92, 1.00, 0.95, 0.75,  # 20-23: prime-time peak
)

#: Relative day-of-week multipliers (index 0 = Sunday).  Weekends are
#: slightly busier, as in Figure 4 (center).
REALITY_SHOW_WEEKDAY_SHAPE: tuple[float, ...] = (
    1.15, 0.95, 0.95, 0.95, 0.95, 1.00, 1.20,
)

#: A deeper-trough variant of the hourly shape whose overnight rate briefly
#: plunges to a fraction of a percent of the peak.  The paper explains the
#: far tail of transfer interarrivals (Figure 17, index ~1 beyond 100 s) as
#: the contribution of "unpopular time intervals"; reproducing that tail
#: requires intervals whose arrival rate approaches zero.  Combine with
#: :func:`repro.simulation.show.nightly_maintenance_outages` for the full
#: two-regime structure.
DEEP_NIGHT_HOURLY_SHAPE: tuple[float, ...] = (
    0.50, 0.30, 0.18, 0.12,        # 00-03: late-night decline
    0.10, 0.002, 0.0008, 0.0015,   # 04-07: plunge to a near-dead window
    0.10, 0.15, 0.25, 0.35,        # 08-11: recovery
    0.50, 0.55, 0.50, 0.48,        # 12-15
    0.50, 0.55, 0.65, 0.80,        # 16-19
    0.92, 1.00, 0.95, 0.70,        # 20-23: prime time
)


class DiurnalProfile:
    """Piecewise-constant periodic rate function.

    The period is divided into ``len(bin_rates)`` equal-width bins; the rate
    at time ``t`` is the rate of the bin containing ``t mod period``.

    Parameters
    ----------
    bin_rates:
        Non-negative rate value per bin (events per second).
    period:
        Period length in seconds (default: one day).
    """

    def __init__(self, bin_rates: ArrayLike, period: float = DAY) -> None:
        rates = as_float_array(bin_rates, name="bin_rates")
        if rates.size == 0:
            raise DistributionError("profile requires at least one bin")
        if np.any(rates < 0) or not np.all(np.isfinite(rates)):
            raise DistributionError("bin rates must be non-negative and finite")
        if not period > 0:
            raise DistributionError(f"period must be positive, got {period}")
        self._rates = rates.copy()
        self.period = float(period)
        self.bin_width = self.period / rates.size

    @classmethod
    def constant(cls, rate: float, period: float = DAY) -> "DiurnalProfile":
        """Build a flat (stationary) profile with the given rate."""
        return cls([rate], period=period)

    @classmethod
    def reality_show(cls, mean_rate: float, *,
                     period: float = DAY) -> "DiurnalProfile":
        """Build the default reality-show diurnal shape scaled to ``mean_rate``.

        Parameters
        ----------
        mean_rate:
            Desired time-averaged arrival rate in events per second.
        period:
            Period to stretch the 24-slot hourly shape over (default 1 day).
        """
        shape = np.asarray(REALITY_SHOW_HOURLY_SHAPE, dtype=np.float64)
        profile = cls(shape, period=period)
        return profile.scaled_to_mean(mean_rate)

    @property
    def n_bins(self) -> int:
        """Number of piecewise-constant bins in one period."""
        return int(self._rates.size)

    @property
    def bin_rates(self) -> FloatArray:
        """Per-bin rates (copy)."""
        return self._rates.copy()

    def rate(self, t: ArrayLike) -> FloatArray:
        """Evaluate the rate at times ``t`` (seconds), vectorized."""
        arr = as_float_array(t, name="t")
        phase = np.mod(arr, self.period)
        idx = np.minimum((phase / self.bin_width).astype(np.int64),
                         self._rates.size - 1)
        return self._rates[idx]

    def mean_rate(self) -> float:
        """Time-averaged rate over one period."""
        return float(self._rates.mean())

    def max_rate(self) -> float:
        """Peak rate over one period (useful for thinning)."""
        return float(self._rates.max())

    def scaled_to_mean(self, mean_rate: float) -> "DiurnalProfile":
        """Return a copy rescaled so the time-averaged rate is ``mean_rate``."""
        if not mean_rate >= 0:
            raise DistributionError(f"mean_rate must be non-negative, got {mean_rate}")
        current = self.mean_rate()
        if current == 0:
            raise DistributionError("cannot rescale an all-zero profile")
        return DiurnalProfile(self._rates * (mean_rate / current), period=self.period)

    def expected_count(self, duration: float) -> float:
        """Expected number of events in ``[0, duration)``."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        full_periods, remainder = divmod(duration, self.period)
        count = full_periods * self._rates.sum() * self.bin_width
        # Partial period: full bins plus a fraction of the straddled bin.
        full_bins = int(remainder // self.bin_width)
        count += self._rates[:full_bins].sum() * self.bin_width
        frac = remainder - full_bins * self.bin_width
        if frac > 0 and full_bins < self._rates.size:
            count += self._rates[full_bins] * frac
        return float(count)


class WeeklyProfile:
    """Diurnal shape modulated by day-of-week multipliers.

    ``rate(t) = daily.rate(t) * day_weights[day_of_week(t)]`` with day 0
    being the day containing ``t = 0`` (conventionally a Sunday in this
    library's scenarios, matching the paper's figures which start on a
    Sunday).

    Parameters
    ----------
    daily:
        The within-day profile; its period must be one day.
    day_weights:
        Seven non-negative multipliers.
    """

    def __init__(self, daily: DiurnalProfile, day_weights: ArrayLike) -> None:
        weights = as_float_array(day_weights, name="day_weights")
        if weights.size != 7:
            raise DistributionError(
                f"day_weights must have exactly 7 entries, got {weights.size}")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise DistributionError("day weights must be non-negative and finite")
        if abs(daily.period - DAY) > 1e-9:
            raise DistributionError(
                "the daily profile of a WeeklyProfile must have a one-day period")
        self.daily = daily
        self._day_weights = weights.copy()
        self.period = WEEK

    @classmethod
    def reality_show(cls, mean_rate: float) -> "WeeklyProfile":
        """Default weekly reality-show audience profile scaled to ``mean_rate``."""
        daily = DiurnalProfile(
            np.asarray(REALITY_SHOW_HOURLY_SHAPE, dtype=np.float64), period=DAY)
        profile = cls(daily, REALITY_SHOW_WEEKDAY_SHAPE)
        return profile.scaled_to_mean(mean_rate)

    @property
    def day_weights(self) -> FloatArray:
        """The seven day-of-week multipliers (copy)."""
        return self._day_weights.copy()

    def rate(self, t: ArrayLike) -> FloatArray:
        """Evaluate the rate at times ``t`` (seconds), vectorized."""
        arr = as_float_array(t, name="t")
        day_idx = (np.mod(arr, WEEK) // DAY).astype(np.int64)
        return self.daily.rate(arr) * self._day_weights[day_idx]

    def mean_rate(self) -> float:
        """Time-averaged rate over one week."""
        return self.daily.mean_rate() * float(self._day_weights.mean())

    def max_rate(self) -> float:
        """Peak rate over one week."""
        return self.daily.max_rate() * float(self._day_weights.max())

    def scaled_to_mean(self, mean_rate: float) -> "WeeklyProfile":
        """Return a copy rescaled so the weekly mean rate is ``mean_rate``."""
        current = self.mean_rate()
        if current == 0:
            raise DistributionError("cannot rescale an all-zero profile")
        scale = mean_rate / current
        daily = DiurnalProfile(self.daily.bin_rates * scale, period=self.daily.period)
        return WeeklyProfile(daily, self._day_weights)
