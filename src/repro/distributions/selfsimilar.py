"""Self-similar (long-range dependent) stochastic processes.

GISMO models streaming content as *self-similar variable bit-rate* video
[19], and the paper notes those content characteristics remain applicable
to live media (Section 6.2).  The underlying process is fractional
Gaussian noise (fGn): stationary, Gaussian, with autocovariance

    gamma(k) = sigma^2 / 2 * (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H})

whose Hurst parameter ``H`` in (0.5, 1) produces the long-range dependence
measured in MPEG traces (H around 0.8).  :class:`FractionalGaussianNoise`
generates exact sample paths by circulant embedding (the Davies-Harte
method), which is O(n log n) and exact — no aggregation approximations.
"""

from __future__ import annotations

import math

import numpy as np

from .._typing import FloatArray, SeedLike
from ..errors import DistributionError
from ..rng import make_rng


def fgn_autocovariance(lags: np.ndarray, hurst: float,
                       sigma: float = 1.0) -> FloatArray:
    """Autocovariance of fractional Gaussian noise at integer ``lags``."""
    k = np.abs(np.asarray(lags, dtype=np.float64))
    two_h = 2.0 * hurst
    return 0.5 * sigma * sigma * (np.abs(k + 1) ** two_h
                                  - 2.0 * k ** two_h
                                  + np.abs(k - 1) ** two_h)


class FractionalGaussianNoise:
    """Exact fGn sample-path generator (Davies-Harte circulant embedding).

    Parameters
    ----------
    hurst:
        Hurst parameter in (0, 1).  ``0.5`` degenerates to white noise;
        values above 0.5 give long-range dependence.
    sigma:
        Marginal standard deviation of the noise.
    mean:
        Marginal mean added to every sample.
    """

    def __init__(self, hurst: float, *, sigma: float = 1.0,
                 mean: float = 0.0) -> None:
        if not 0.0 < hurst < 1.0:
            raise DistributionError(f"hurst must be in (0, 1), got {hurst}")
        if not sigma > 0:
            raise DistributionError(f"sigma must be positive, got {sigma}")
        if not math.isfinite(mean):
            raise DistributionError(f"mean must be finite, got {mean}")
        self.hurst = float(hurst)
        self.sigma = float(sigma)
        self.mean = float(mean)

    def sample_path(self, n: int, seed: SeedLike = None) -> FloatArray:
        """Generate one path of ``n`` consecutive fGn values.

        Raises
        ------
        DistributionError
            If ``n`` is not positive (the circulant embedding needs at
            least one point).
        """
        if n < 1:
            raise DistributionError(f"path length must be positive, got {n}")
        rng = make_rng(seed)
        if n == 1:
            return np.asarray([self.mean + self.sigma * rng.normal()])

        # Circulant embedding of the covariance: c has length 2(n-1) ... use
        # the standard 2n embedding for simplicity.
        m = 2 * n
        gamma = fgn_autocovariance(np.arange(n + 1), self.hurst)
        circulant = np.concatenate([gamma[:n], gamma[n:n + 1],
                                    gamma[1:n][::-1]])
        eigenvalues = np.fft.fft(circulant).real
        # Tiny negative eigenvalues can appear from roundoff; clip them.
        if eigenvalues.min() < -1e-8:
            raise DistributionError(
                "circulant embedding is not non-negative definite "
                f"(min eigenvalue {eigenvalues.min():.3g})")
        eigenvalues = np.clip(eigenvalues, 0.0, None)

        w = np.zeros(m, dtype=np.complex128)
        scale = np.sqrt(eigenvalues / m)
        w[0] = scale[0] * rng.normal()
        w[n] = scale[n] * rng.normal()
        half = rng.normal(size=(n - 1, 2))
        interior = (half[:, 0] + 1j * half[:, 1]) / math.sqrt(2.0)
        w[1:n] = scale[1:n] * interior
        w[n + 1:] = np.conj(w[1:n][::-1])

        path = np.fft.fft(w).real[:n]
        return self.mean + self.sigma * path

    def cumulative(self, n: int, seed: SeedLike = None) -> FloatArray:
        """Fractional Brownian motion: the cumulative sum of an fGn path."""
        return np.cumsum(self.sample_path(n, seed))
