"""Distribution fitting routines used by the characterization pipeline.

The paper's fits are of three kinds, all reproduced here:

* **Lognormal / exponential fits** of marginals (session ON time, transfer
  length, intra-session interarrivals, session OFF time) — implemented as
  maximum-likelihood estimates.
* **Zipf fits** in log-log space, both of rank-frequency profiles
  (client interest, Figure 7) and of probability-mass histograms
  (transfers per session, Figure 13) — implemented as least squares on the
  log-log relationship, which matches the paper's gnuplot-style fits.
* **Tail-index estimates** from the CCDF (transfer interarrivals,
  Figure 17), including the two-regime broken tail — implemented as CCDF
  regression plus a Hill estimator cross-check.

Rate-profile estimation for the piecewise-stationary Poisson arrival model
(:func:`fit_diurnal_profile`) also lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike, as_float_array
from ..errors import FittingError
from ..units import DAY
from .diurnal import DiurnalProfile
from .exponential import ExponentialDistribution
from .lognormal import LognormalDistribution
from .zipf import ZipfLaw


def _positive_samples(values: ArrayLike, *, name: str) -> FloatArray:
    arr = as_float_array(values, name=name)
    arr = arr[np.isfinite(arr) & (arr > 0)]
    if arr.size == 0:
        raise FittingError(f"{name} contains no positive finite samples")
    return arr


def fit_lognormal(values: ArrayLike) -> LognormalDistribution:
    """Fit a lognormal by maximum likelihood on the log-transformed sample.

    Non-positive and non-finite values are discarded (the server log's
    one-second resolution produces zero-length measurements; the paper's
    ``floor(t)+1`` convention should be applied by the caller when those
    zeros are meaningful).

    Raises
    ------
    FittingError
        If fewer than two positive samples remain or the sample is constant.
    """
    arr = _positive_samples(values, name="values")
    if arr.size < 2:
        raise FittingError("lognormal fit requires at least two positive samples")
    logs = np.log(arr)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma == 0:
        raise FittingError("lognormal fit is degenerate: constant sample")
    return LognormalDistribution(mu, sigma)


def fit_exponential(values: ArrayLike) -> ExponentialDistribution:
    """Fit an exponential by maximum likelihood (the sample mean).

    Raises
    ------
    FittingError
        If no positive finite samples are present.
    """
    arr = as_float_array(values, name="values")
    arr = arr[np.isfinite(arr) & (arr >= 0)]
    if arr.size == 0:
        raise FittingError("exponential fit requires at least one sample")
    mean = float(arr.mean())
    if mean <= 0:
        raise FittingError("exponential fit is degenerate: zero mean")
    return ExponentialDistribution(mean)


def _loglog_regression(x: FloatArray, y: FloatArray,
                       weights: FloatArray | None = None) -> tuple[float, float, float]:
    """Least squares of ``log y`` on ``log x``; returns (slope, intercept, r2).

    The intercept is reported in linear space (i.e. ``amplitude`` such that
    ``y ~ amplitude * x**slope``).
    """
    lx, ly = np.log(x), np.log(y)
    w = np.ones_like(lx) if weights is None else weights
    wsum = w.sum()
    mx, my = np.dot(w, lx) / wsum, np.dot(w, ly) / wsum
    dx, dy = lx - mx, ly - my
    sxx = np.dot(w, dx * dx)
    if sxx == 0:
        raise FittingError("log-log regression is degenerate: single distinct x")
    slope = float(np.dot(w, dx * dy) / sxx)
    intercept = my - slope * mx
    residual = ly - (intercept + slope * lx)
    syy = np.dot(w, dy * dy)
    r2 = 1.0 if syy == 0 else float(1.0 - np.dot(w, residual * residual) / syy)
    return slope, float(np.exp(intercept)), r2


@dataclass(frozen=True)
class ZipfFit:
    """Result of a log-log Zipf fit: ``frequency ~ amplitude * x**-alpha``.

    Attributes
    ----------
    alpha:
        The (positive) Zipf exponent.
    amplitude:
        The multiplicative constant of the fitted power law.
    r_squared:
        Coefficient of determination of the log-log regression.
    n_points:
        Number of (x, frequency) points used in the regression.
    """

    alpha: float
    amplitude: float
    r_squared: float
    n_points: int

    def law(self, n_items: int) -> ZipfLaw:
        """Materialize the fit as a finite :class:`ZipfLaw` over ``n_items``."""
        return ZipfLaw(self.alpha, n_items)

    def predict(self, x: ArrayLike) -> FloatArray:
        """Evaluate the fitted power law at ``x``."""
        arr = as_float_array(x, name="x")
        return self.amplitude * np.power(arr, -self.alpha)


def fit_zipf_rank(counts: ArrayLike, *, normalize: bool = True,
                  max_rank: int | None = None,
                  n_points: int | None = 200) -> ZipfFit:
    """Fit a Zipf law to a rank-frequency profile.

    ``counts`` are per-entity access counts (e.g. transfers per client, in
    any order).  They are sorted descending to produce the rank-frequency
    relationship of Figure 7, then fitted by least squares in log-log space
    (the paper's method).

    To keep the long tail of rank-1 ties from dominating the regression
    (there are vastly more low ranks than high ranks on a linear grid), the
    regression is evaluated at ``n_points`` log-spaced ranks by default,
    giving each decade of ranks equal influence — the visual weighting a
    log-log plot fit implies.

    Parameters
    ----------
    counts:
        Per-entity counts; zeros are dropped.
    normalize:
        When True, frequencies are count fractions (as in the paper's
        figures); this only affects the fitted amplitude, never alpha.
    max_rank:
        Optionally restrict the regression to the top ``max_rank`` ranks.
    n_points:
        Number of log-spaced ranks used in the regression, or ``None`` to
        regress on every rank.
    """
    arr = _positive_samples(counts, name="counts")
    freq = np.sort(arr)[::-1]
    if normalize:
        freq = freq / freq.sum()
    ranks = np.arange(1, freq.size + 1, dtype=np.float64)
    if max_rank is not None:
        if max_rank < 2:
            raise FittingError("max_rank must be at least 2")
        ranks, freq = ranks[:max_rank], freq[:max_rank]
    if ranks.size < 2:
        raise FittingError("Zipf rank fit requires at least two ranked entities")
    if n_points is not None and ranks.size > n_points:
        idx = np.unique(np.logspace(
            0.0, np.log10(ranks.size), n_points).astype(np.int64)) - 1
        ranks, freq = ranks[idx], freq[idx]
    slope, amplitude, r2 = _loglog_regression(ranks, freq)
    return ZipfFit(alpha=-slope, amplitude=amplitude, r_squared=r2,
                   n_points=int(ranks.size))


def fit_zipf_pmf(values: ArrayLike, *, k_max: int | None = None,
                 weight_by_counts: bool = True) -> ZipfFit:
    """Fit a discrete power law to the histogram of positive integers.

    This is the paper's Figure 13 fit: the empirical frequency of observing
    the value ``n`` (e.g. ``n`` transfers in a session) is regressed against
    ``n`` in log-log space.

    Parameters
    ----------
    values:
        Observed positive integers (e.g. transfers-per-session counts).
    k_max:
        Optionally restrict the regression to values ``<= k_max``.
    weight_by_counts:
        When True (default), each histogram point is weighted by its
        observation count, so the sparsely observed tail — where empirical
        frequencies are dominated by sampling noise — does not flatten the
        estimated exponent.
    """
    arr = _positive_samples(values, name="values")
    ints = np.round(arr).astype(np.int64)
    support, counts = np.unique(ints, return_counts=True)
    freq = counts / counts.sum()
    if k_max is not None:
        keep = support <= k_max
        support, freq, counts = support[keep], freq[keep], counts[keep]
    if support.size < 2:
        raise FittingError("Zipf pmf fit requires at least two distinct values")
    weights = counts.astype(np.float64) if weight_by_counts else None
    slope, amplitude, r2 = _loglog_regression(
        support.astype(np.float64), freq, weights)
    return ZipfFit(alpha=-slope, amplitude=amplitude, r_squared=r2,
                   n_points=int(support.size))


def fit_zipf_mle(values: ArrayLike, *, k_max: int | None = None,
                 alpha_bounds: tuple[float, float] = (1.01, 20.0)) -> ZipfFit:
    """Maximum-likelihood fit of a discrete power law on positive integers.

    The paper fits its Zipf laws by log-log regression (the gnuplot way of
    2002); the modern alternative (Clauset, Shalizi & Newman 2009) is
    maximum likelihood on the zeta family: minimize

        alpha * sum(log x_i) + n * log Z(alpha)

    over ``alpha``, with ``Z`` the (possibly truncated) zeta normalizer.
    Exposed so the ablation experiments can quantify how much the
    estimator choice moves the headline exponents.

    Parameters
    ----------
    values:
        Observed positive integers.
    k_max:
        Optional truncation point; defaults to the sample maximum (an
        untruncated fit would constrain ``alpha > 1``; the truncated
        normalizer is used either way for numerical symmetry with the
        generator's :class:`~repro.distributions.zipf.ZetaDistribution`).
    alpha_bounds:
        Search interval for the exponent.

    Returns
    -------
    ZipfFit
        With ``amplitude = 1 / Z(alpha)`` (so ``predict`` gives the pmf)
        and ``r_squared`` the count-weighted log-log agreement with the
        empirical histogram, for comparability with :func:`fit_zipf_pmf`.
    """
    from scipy.optimize import minimize_scalar

    arr = _positive_samples(values, name="values")
    ints = np.round(arr).astype(np.int64)
    if k_max is None:
        k_max = int(ints.max())
    if np.unique(ints).size < 2:
        raise FittingError("Zipf MLE requires at least two distinct values")
    support = np.arange(1, k_max + 1, dtype=np.float64)
    log_support = np.log(support)
    sum_log = float(np.log(ints).sum())
    n = ints.size

    def negative_loglik(alpha: float) -> float:
        log_z = float(np.log(np.exp(-alpha * log_support).sum()))
        return alpha * sum_log + n * log_z

    result = minimize_scalar(negative_loglik, bounds=alpha_bounds,
                             method="bounded")
    if not result.success:  # pragma: no cover - scipy rarely fails here
        raise FittingError(f"Zipf MLE optimization failed: {result.message}")
    alpha = float(result.x)
    z = float(np.exp(-alpha * log_support).sum())

    # Count-weighted log-log agreement with the empirical pmf.
    obs_support, counts = np.unique(ints, return_counts=True)
    freq = counts / counts.sum()
    predicted = np.power(obs_support.astype(np.float64), -alpha) / z
    log_res = np.log(freq) - np.log(predicted)
    weights = counts.astype(np.float64)
    mean_log = np.dot(weights, np.log(freq)) / weights.sum()
    total = float(np.dot(weights, (np.log(freq) - mean_log) ** 2))
    residual = float(np.dot(weights, log_res ** 2))
    r2 = 1.0 if total == 0 else 1.0 - residual / total
    return ZipfFit(alpha=alpha, amplitude=1.0 / z, r_squared=r2,
                   n_points=int(obs_support.size))


@dataclass(frozen=True)
class TailFit:
    """A power-law tail estimate from CCDF regression.

    ``P[X > x] ~ C * x**-alpha`` over ``[x_lo, x_hi]``.
    """

    alpha: float
    amplitude: float
    r_squared: float
    x_lo: float
    x_hi: float
    n_points: int


def fit_tail_index(values: ArrayLike, *, x_lo: float = 1.0,
                   x_hi: float | None = None,
                   n_points: int = 50) -> TailFit:
    """Estimate a tail index by regression on the empirical CCDF.

    The CCDF is evaluated at ``n_points`` log-spaced abscissae spanning
    ``[x_lo, x_hi]`` and regressed in log-log space.  This matches how the
    paper reads the two tail slopes off Figure 17.

    Parameters
    ----------
    values:
        The sample.
    x_lo, x_hi:
        Range over which the tail is fitted.  ``x_hi`` defaults to the
        sample maximum.
    n_points:
        Number of log-spaced evaluation points.
    """
    arr = _positive_samples(values, name="values")
    srt = np.sort(arr)
    if x_hi is None:
        x_hi = float(srt[-1])
    if not (x_hi > x_lo > 0):
        raise FittingError(f"need 0 < x_lo < x_hi, got [{x_lo}, {x_hi}]")
    xs = np.logspace(np.log10(x_lo), np.log10(x_hi), n_points)
    ccdf = 1.0 - np.searchsorted(srt, xs, side="right") / srt.size
    keep = ccdf > 0
    xs, ccdf = xs[keep], ccdf[keep]
    if xs.size < 2:
        raise FittingError("tail fit range contains fewer than two CCDF points")
    slope, amplitude, r2 = _loglog_regression(xs, ccdf)
    return TailFit(alpha=-slope, amplitude=amplitude, r_squared=r2,
                   x_lo=x_lo, x_hi=x_hi, n_points=int(xs.size))


@dataclass(frozen=True)
class TwoRegimeTailFit:
    """Broken power-law tail: separate fits below and above a breakpoint.

    The paper measures ``alpha ~ 2.8`` below 100 s and ``alpha ~ 1`` above
    for transfer interarrivals (Section 5.2).
    """

    body: TailFit
    tail: TailFit
    breakpoint: float

    @property
    def alpha_body(self) -> float:
        """Tail index of the regime below the breakpoint."""
        return self.body.alpha

    @property
    def alpha_tail(self) -> float:
        """Tail index of the regime above the breakpoint."""
        return self.tail.alpha


def fit_two_regime_tail(values: ArrayLike, *, breakpoint: float = 100.0,
                        x_lo: float = 1.0,
                        x_hi: float | None = None) -> TwoRegimeTailFit:
    """Fit the two tail regimes on either side of ``breakpoint``.

    Parameters
    ----------
    values:
        The sample.
    breakpoint:
        Crossover abscissa separating the regimes (the paper uses 100 s).
    x_lo:
        Lower end of the body regime.
    x_hi:
        Upper end of the tail regime (defaults to the sample maximum).
    """
    if not breakpoint > x_lo:
        raise FittingError(
            f"breakpoint ({breakpoint}) must exceed x_lo ({x_lo})")
    body = fit_tail_index(values, x_lo=x_lo, x_hi=breakpoint)
    tail = fit_tail_index(values, x_lo=breakpoint, x_hi=x_hi)
    return TwoRegimeTailFit(body=body, tail=tail, breakpoint=float(breakpoint))


def hill_estimator(values: ArrayLike, *, k: int | None = None) -> float:
    """Hill estimator of the tail index from the top ``k`` order statistics.

    Parameters
    ----------
    values:
        The sample.
    k:
        Number of upper order statistics to use; defaults to
        ``sqrt(n)`` rounded, a common rule of thumb.

    Returns
    -------
    float
        The estimated tail index ``alpha``.
    """
    arr = _positive_samples(values, name="values")
    n = arr.size
    if n < 3:
        raise FittingError("Hill estimator requires at least three samples")
    if k is None:
        k = max(int(round(np.sqrt(n))), 2)
    if not (1 < k < n):
        raise FittingError(f"k must be in (1, {n}), got {k}")
    srt = np.sort(arr)
    top = srt[n - k:]
    threshold = srt[n - k - 1]
    if threshold <= 0:
        raise FittingError("Hill threshold order statistic must be positive")
    gamma = float(np.mean(np.log(top / threshold)))
    if gamma == 0:
        raise FittingError("Hill estimator is degenerate: tied upper tail")
    return 1.0 / gamma


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile-bootstrap confidence interval for a fitted quantity.

    Attributes
    ----------
    point:
        The estimate on the full sample.
    lower, upper:
        Interval bounds at the requested confidence level.
    confidence:
        Two-sided confidence level (e.g. 0.95).
    n_resamples:
        Number of bootstrap resamples used.
    """

    point: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        """Interval width."""
        return self.upper - self.lower


def bootstrap_ci(values: ArrayLike,
                 estimator: Callable[[FloatArray], float], *,
                 n_resamples: int = 200, confidence: float = 0.95,
                 seed: SeedLike = None) -> BootstrapInterval:
    """Percentile-bootstrap confidence interval for any scalar estimator.

    The paper reports fit uncertainties as asymptotic-error percentages
    (e.g. the Zipf exponents "+-0.025%"); bootstrap intervals are the
    distribution-free equivalent this library offers for every fitted
    quantity.

    Parameters
    ----------
    values:
        The sample.
    estimator:
        Callable mapping a (resampled) 1-D array to a scalar, e.g.
        ``lambda s: fit_lognormal(s).mu``.
    n_resamples:
        Number of bootstrap resamples.
    confidence:
        Two-sided confidence level in (0, 1).
    seed:
        Seed or generator for the resampling.

    Raises
    ------
    FittingError
        If the sample is empty, parameters are out of range, or the
        estimator fails on the full sample.
    """
    from ..rng import make_rng

    arr = as_float_array(values, name="values")
    if arr.size == 0:
        raise FittingError("bootstrap requires a non-empty sample")
    if not 0.0 < confidence < 1.0:
        raise FittingError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise FittingError(f"n_resamples must be at least 10, got {n_resamples}")
    rng = make_rng(seed)
    point = float(estimator(arr))
    estimates = []
    for _ in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        try:
            estimates.append(float(estimator(resample)))
        except FittingError:
            continue  # degenerate resample (e.g. constant); drop it
    if len(estimates) < n_resamples // 2:
        raise FittingError(
            "estimator failed on most bootstrap resamples")
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapInterval(point=point, lower=float(lower),
                             upper=float(upper), confidence=confidence,
                             n_resamples=len(estimates))


@dataclass(frozen=True)
class DiurnalFit:
    """Estimated periodic arrival-rate profile.

    Attributes
    ----------
    profile:
        The estimated :class:`DiurnalProfile`.
    counts:
        Number of arrivals observed in each periodic bin.
    exposure:
        Total observation time (seconds) each periodic bin was exposed for.
    """

    profile: DiurnalProfile
    counts: FloatArray = field(repr=False)
    exposure: FloatArray = field(repr=False)


def fit_diurnal_profile(arrival_times: ArrayLike, duration: float, *,
                        period: float = DAY, n_bins: int = 96,
                        allow_partial_coverage: bool = False) -> DiurnalFit:
    """Estimate a periodic rate profile from arrival timestamps.

    Arrivals are folded modulo ``period`` into ``n_bins`` equal bins, and
    each bin's rate is its arrival count divided by its total exposure time
    within ``[0, duration)``.  With the default parameters this recovers the
    15-minute-bin diurnal pattern the paper keys its piecewise-stationary
    Poisson model to (Figure 4, right).

    Parameters
    ----------
    arrival_times:
        Arrival timestamps in ``[0, duration)``.
    duration:
        Total observation window length in seconds.
    period:
        Folding period (one day by default; pass one week for Figure 4
        center).
    n_bins:
        Number of bins per period (96 gives 15-minute bins for a day).
    allow_partial_coverage:
        When the observation window is shorter than the period, some
        phase bins are never observed.  By default that raises; with this
        flag the unobserved bins get rate zero instead (honest for
        characterizing a short trace, but a generator driven by such a
        profile will emit nothing in the unobserved phases).
    """
    if duration <= 0:
        raise FittingError("duration must be positive")
    if n_bins < 1:
        raise FittingError("n_bins must be positive")
    times = as_float_array(arrival_times, name="arrival_times")
    if times.size and (times.min() < 0 or times.max() >= duration):
        raise FittingError("arrival times must lie within [0, duration)")
    bin_width = period / n_bins
    phase = np.mod(times, period)
    counts, _ = np.histogram(phase, bins=n_bins, range=(0.0, period))
    # Exposure of bin b: full periods contribute bin_width each; the final
    # partial period contributes the overlap of the bin with [0, remainder).
    full_periods, remainder = divmod(duration, period)
    exposure = np.full(n_bins, full_periods * bin_width)
    edges = np.arange(n_bins) * bin_width
    overlap = np.clip(remainder - edges, 0.0, bin_width)
    exposure += overlap
    if np.any(exposure <= 0) and not allow_partial_coverage:
        raise FittingError(
            "observation window shorter than one profile bin; "
            "reduce n_bins, extend the trace, or pass "
            "allow_partial_coverage=True")
    rates = np.divide(counts, exposure, out=np.zeros(n_bins),
                      where=exposure > 0)
    return DiurnalFit(profile=DiurnalProfile(rates, period=period),
                      counts=counts.astype(np.float64), exposure=exposure)
