"""Goodness-of-fit diagnostics.

Used by the characterization layers to report how well each fitted family
(lognormal, exponential, Zipf) describes the corresponding marginal, and by
EXPERIMENTS.md to record the paper-vs-measured comparison quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .._typing import ArrayLike, FloatArray, as_float_array
from ..errors import FittingError
from .base import Distribution


@dataclass(frozen=True)
class GoodnessOfFit:
    """Kolmogorov-Smirnov summary of a fitted distribution.

    Attributes
    ----------
    ks_statistic:
        Supremum distance between the empirical and model CDFs.
    p_value:
        Asymptotic KS p-value.  For very large samples this is almost always
        tiny even for visually excellent fits (the usual measurement-paper
        caveat); the statistic itself is the useful number.
    n:
        Sample size.
    """

    ks_statistic: float
    p_value: float
    n: int


def ks_two_sample(a: ArrayLike, b: ArrayLike) -> float:
    """Two-sample Kolmogorov-Smirnov distance.

    Handles ties (lattice-valued data such as ``floor(t)+1`` times)
    correctly by comparing both right-continuous empirical CDFs over the
    union of sample points — unlike a one-sample comparison against a
    resampled empirical model, which misreads shared atoms as
    discrepancy.
    """
    a_arr = np.sort(as_float_array(a, name="a"))
    b_arr = np.sort(as_float_array(b, name="b"))
    if a_arr.size == 0 or b_arr.size == 0:
        raise FittingError("ks_two_sample requires two non-empty samples")
    support = np.union1d(a_arr, b_arr)
    cdf_a = np.searchsorted(a_arr, support, side="right") / a_arr.size
    cdf_b = np.searchsorted(b_arr, support, side="right") / b_arr.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_distance(values: ArrayLike, dist: Distribution) -> float:
    """Supremum distance between the empirical CDF of ``values`` and ``dist``.

    Both one-sided deviations are considered (the ECDF is a step function,
    so the supremum may occur just before a jump).  Intended for
    *continuous* model distributions; to compare two samples (or a sample
    against an :class:`~repro.distributions.empirical.EmpiricalDistribution`),
    use :func:`ks_two_sample`, which treats shared atoms correctly.
    """
    arr = as_float_array(values, name="values")
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise FittingError("ks_distance requires a non-empty sample")
    srt = np.sort(arr)
    n = srt.size
    model = np.asarray(dist.cdf(srt), dtype=np.float64)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(max(np.max(np.abs(ecdf_hi - model)),
                     np.max(np.abs(model - ecdf_lo))))


def evaluate_fit(values: ArrayLike, dist: Distribution) -> GoodnessOfFit:
    """Compute the KS statistic and asymptotic p-value for a fitted model."""
    arr = as_float_array(values, name="values")
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise FittingError("evaluate_fit requires a non-empty sample")
    d = ks_distance(arr, dist)
    p = float(stats.kstwobign.sf(d * np.sqrt(arr.size)))
    return GoodnessOfFit(ks_statistic=d, p_value=p, n=int(arr.size))


def anderson_darling_distance(values: ArrayLike, dist: Distribution) -> float:
    """One-sample Anderson-Darling statistic ``A^2`` against ``dist``.

    Unlike the KS supremum, ``A^2`` weights deviations by the inverse CDF
    variance, so it is far more sensitive in the tails — exactly where the
    workload's heavy-tailed marginals (transfer lengths, interarrivals)
    can drift without moving the KS distance.  Works against any model
    with a ``cdf``; model probabilities are clipped away from {0, 1} so a
    sample point outside the model's numerical support yields a large but
    finite statistic instead of ``inf``.
    """
    arr = as_float_array(values, name="values")
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise FittingError(
            "anderson_darling_distance requires a non-empty sample")
    srt = np.sort(arr)
    n = srt.size
    probs = np.clip(np.asarray(dist.cdf(srt), dtype=np.float64),
                    1e-12, 1.0 - 1e-12)
    i = np.arange(1, n + 1, dtype=np.float64)
    weights = (2.0 * i - 1.0) / n
    a_sq = -n - float(np.sum(weights * (np.log(probs)
                                        + np.log1p(-probs[::-1]))))
    return float(a_sq)


def ks_statistic_table(values: ArrayLike,
                       candidates: dict[str, Distribution]) -> dict[str, float]:
    """Compare several candidate models by KS distance.

    Returns a mapping from candidate name to KS statistic, sorted ascending
    (best fit first).  Useful for the paper's implicit model selections,
    e.g. "lognormal, and does not appear to be as heavy as Pareto"
    (Section 8).
    """
    scored = {name: ks_distance(values, dist)
              for name, dist in candidates.items()}
    return dict(sorted(scored.items(), key=lambda item: item[1]))


def qq_points(values: ArrayLike, dist: Distribution,
              n_points: int = 100) -> tuple[FloatArray, FloatArray]:
    """Quantile-quantile data for a fitted model.

    Returns ``(model_quantiles, empirical_quantiles)`` at ``n_points``
    evenly spaced probability levels (excluding 0 and 1).  Model quantiles
    are obtained by bisection on the model CDF, so any distribution with a
    ``cdf`` works.
    """
    arr = as_float_array(values, name="values")
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise FittingError("qq_points requires a non-empty sample")
    if n_points < 1:
        raise FittingError("n_points must be positive")
    probs = (np.arange(1, n_points + 1) - 0.5) / n_points
    empirical = np.quantile(arr, probs)
    # Bisection bracket: expand upper bound until CDF exceeds max prob.
    lo = 0.0
    hi = max(float(np.max(arr)), 1.0)
    while float(dist.cdf([hi])[0]) < probs[-1] and hi < 1e18:
        hi *= 2.0
    model = np.empty_like(probs)
    for i, p in enumerate(probs):
        a, b = lo, hi
        for _ in range(80):
            mid = 0.5 * (a + b)
            if float(dist.cdf([mid])[0]) < p:
                a = mid
            else:
                b = mid
        model[i] = 0.5 * (a + b)
    return model, empirical
