"""Zipf laws: finite rank-frequency laws and the zeta distribution.

The paper uses Zipf-like laws in two roles:

* **Client interest profile** (Figure 7, Section 3.5): the frequency of
  sessions (or transfers) commanded by the client of rank ``k`` is
  proportional to ``k**-alpha`` with alpha = 0.4704 for sessions and
  alpha = 0.7194 for transfers.  :class:`ZipfLaw` models this as a
  categorical distribution over a *finite* population of ranks and is the
  mechanism by which GISMO-live associates arrivals with client identities.

* **Transfers per session** (Figure 13, Section 4.4): the number of
  transfers in a session follows ``P[N = n]`` proportional to ``n**-alpha``
  with alpha = 2.70417.  :class:`ZetaDistribution` models this as a discrete
  power law on the positive integers.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import zeta as riemann_zeta

from .._typing import ArrayLike, FloatArray, IntArray, SeedLike
from ..errors import DistributionError
from .base import DiscreteDistribution


class ZipfLaw(DiscreteDistribution):
    """Finite Zipf rank-frequency law over ranks ``1..n_items``.

    ``P[K = k]`` is proportional to ``k**-alpha``.  ``alpha`` may be any
    non-negative value (``alpha = 0`` degenerates to uniform); there is no
    convergence constraint because the support is finite.

    Parameters
    ----------
    alpha:
        Skew exponent; must be non-negative and finite.
    n_items:
        Size of the support (number of distinct ranks); must be positive.
    """

    def __init__(self, alpha: float, n_items: int) -> None:
        if not (alpha >= 0 and math.isfinite(alpha)):
            raise DistributionError(f"alpha must be non-negative and finite, got {alpha}")
        if n_items < 1:
            raise DistributionError(f"n_items must be positive, got {n_items}")
        self.alpha = float(alpha)
        self.n_items = int(n_items)
        ranks = np.arange(1, self.n_items + 1, dtype=np.float64)
        weights = np.power(ranks, -self.alpha)
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        # Guard against floating point drift at the top.
        self._cdf[-1] = 1.0

    def pmf(self, k: ArrayLike) -> FloatArray:
        arr = self._as_array(k)
        out = np.zeros_like(arr)
        valid = (arr >= 1) & (arr <= self.n_items) & (arr == np.floor(arr))
        idx = arr[valid].astype(np.int64) - 1
        out[valid] = self._probs[idx]
        return out

    def cdf(self, k: ArrayLike) -> FloatArray:
        arr = self._as_array(k)
        out = np.zeros_like(arr)
        floor_k = np.floor(arr).astype(np.int64)
        above = floor_k >= self.n_items
        out[above] = 1.0
        mid = (floor_k >= 1) & ~above
        out[mid] = self._cdf[floor_k[mid] - 1]
        return out

    def sample(self, n: int, seed: SeedLike = None) -> IntArray:
        """Draw ``n`` ranks in ``1..n_items`` via inverse-CDF search."""
        n = self._check_n(n)
        rng = self._rng(seed)
        u = rng.random(n)
        return (np.searchsorted(self._cdf, u, side="right") + 1).astype(np.int64)

    def mean(self) -> float:
        ranks = np.arange(1, self.n_items + 1, dtype=np.float64)
        return float(np.dot(ranks, self._probs))

    def probabilities(self) -> FloatArray:
        """Return the full probability vector indexed by rank - 1."""
        return self._probs.copy()

    def params(self) -> dict[str, float]:
        return {"alpha": self.alpha, "n_items": float(self.n_items)}


class ZetaDistribution(DiscreteDistribution):
    """Discrete power law on the positive integers, optionally truncated.

    ``P[N = n]`` proportional to ``n**-alpha`` for ``1 <= n <= k_max``
    (``k_max = None`` means untruncated, which requires ``alpha > 1`` for
    normalizability).  Sampling is by inverse CDF over a precomputed table;
    for the untruncated case the table is extended far enough that the
    neglected tail mass is below ``1e-12``.

    Parameters
    ----------
    alpha:
        Power-law exponent.  Must exceed 1 when ``k_max`` is ``None``.
    k_max:
        Optional truncation point (inclusive).
    """

    #: Hard cap on the internal inverse-CDF table size.
    _MAX_TABLE = 10_000_000

    def __init__(self, alpha: float, k_max: int | None = None) -> None:
        if not math.isfinite(alpha):
            raise DistributionError(f"alpha must be finite, got {alpha}")
        if k_max is None and alpha <= 1.0:
            raise DistributionError(
                f"untruncated zeta distribution requires alpha > 1, got {alpha}")
        if k_max is not None and k_max < 1:
            raise DistributionError(f"k_max must be positive, got {k_max}")
        self.alpha = float(alpha)
        self.k_max = None if k_max is None else int(k_max)
        table_size = self._table_size()
        support = np.arange(1, table_size + 1, dtype=np.float64)
        weights = np.power(support, -self.alpha)
        if self.k_max is None:
            self._norm = float(riemann_zeta(self.alpha, 1))
        else:
            self._norm = float(weights.sum())
        self._probs = weights / self._norm
        self._cdf_table = np.cumsum(self._probs)

    def _table_size(self) -> int:
        if self.k_max is not None:
            return min(self.k_max, self._MAX_TABLE)
        # Choose k so that the neglected tail sum_{n>k} n^-alpha < 1e-12,
        # bounded via the integral test: tail < k^(1-alpha) / (alpha-1).
        k = (1e-12 * (self.alpha - 1.0)) ** (1.0 / (1.0 - self.alpha))
        return int(min(max(k, 1024), self._MAX_TABLE))

    def pmf(self, k: ArrayLike) -> FloatArray:
        arr = self._as_array(k)
        out = np.zeros_like(arr)
        valid = (arr >= 1) & (arr == np.floor(arr))
        if self.k_max is not None:
            valid &= arr <= self.k_max
        out[valid] = np.power(arr[valid], -self.alpha) / self._norm
        return out

    def cdf(self, k: ArrayLike) -> FloatArray:
        arr = self._as_array(k)
        out = np.zeros_like(arr)
        floor_k = np.floor(arr).astype(np.int64)
        table_len = len(self._cdf_table)
        above = floor_k >= table_len
        out[above] = self._cdf_table[-1] if self.k_max is None else 1.0
        if self.k_max is not None:
            out[floor_k >= self.k_max] = 1.0
        mid = (floor_k >= 1) & ~above
        out[mid] = self._cdf_table[floor_k[mid] - 1]
        return out

    def sample(self, n: int, seed: SeedLike = None) -> IntArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        u = rng.random(n) * self._cdf_table[-1]
        return (np.searchsorted(self._cdf_table, u, side="right") + 1).astype(np.int64)

    def mean(self) -> float:
        if self.k_max is None and self.alpha <= 2.0:
            return math.inf
        support = np.arange(1, len(self._probs) + 1, dtype=np.float64)
        return float(np.dot(support, self._probs))

    def params(self) -> dict[str, float]:
        out = {"alpha": self.alpha}
        if self.k_max is not None:
            out["k_max"] = float(self.k_max)
        return out
