"""Pareto and two-regime (broken power law) distributions.

The transfer interarrival CCDF of the paper (Figure 17) shows two distinct
tail regimes: an index of roughly 2.8 for interarrivals up to about 100
seconds and roughly 1 beyond, which the paper attributes to the mixture of
popular and unpopular time intervals.  :class:`TwoRegimePareto` models that
shape directly and is used both as an analysis reference and to synthesize
test data with a known broken tail.
"""

from __future__ import annotations

import math

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike
from ..errors import DistributionError
from .base import ContinuousDistribution


class ParetoDistribution(ContinuousDistribution):
    """Pareto (type I) distribution: ``P[X > x] = (xmin / x)^alpha``.

    Parameters
    ----------
    alpha:
        Tail index; must be positive.  Mean is infinite for ``alpha <= 1``.
    xmin:
        Scale / lower bound of the support; must be positive.
    """

    def __init__(self, alpha: float, xmin: float = 1.0) -> None:
        if not (alpha > 0 and math.isfinite(alpha)):
            raise DistributionError(f"alpha must be positive and finite, got {alpha}")
        if not (xmin > 0 and math.isfinite(xmin)):
            raise DistributionError(f"xmin must be positive and finite, got {xmin}")
        self.alpha = float(alpha)
        self.xmin = float(xmin)

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        # Inverse transform: x = xmin * U^(-1/alpha).
        u = rng.random(n)
        return self.xmin * np.power(u, -1.0 / self.alpha)

    def pdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        sup = arr >= self.xmin
        out[sup] = (self.alpha * self.xmin**self.alpha
                    / np.power(arr[sup], self.alpha + 1.0))
        return out

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        sup = arr >= self.xmin
        out[sup] = 1.0 - np.power(self.xmin / arr[sup], self.alpha)
        return out

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xmin / (self.alpha - 1.0)

    def params(self) -> dict[str, float]:
        return {"alpha": self.alpha, "xmin": self.xmin}


class TwoRegimePareto(ContinuousDistribution):
    """Broken power law: tail index ``alpha_body`` up to a breakpoint, then
    ``alpha_tail`` beyond it.

    The CCDF is::

        P[X > x] = (xmin / x)^alpha_body                      for xmin <= x < xb
        P[X > x] = (xmin / xb)^alpha_body * (xb / x)^alpha_tail  for x >= xb

    which is continuous at the breakpoint ``xb`` by construction.

    Parameters
    ----------
    alpha_body:
        Tail index below the breakpoint (the paper measures about 2.8 for
        transfer interarrivals under 100 s).
    alpha_tail:
        Tail index above the breakpoint (about 1 in the paper).
    breakpoint:
        The crossover abscissa ``xb``; must exceed ``xmin``.
    xmin:
        Lower bound of the support.
    """

    def __init__(self, alpha_body: float, alpha_tail: float,
                 breakpoint: float, xmin: float = 1.0) -> None:
        for name, value in (("alpha_body", alpha_body), ("alpha_tail", alpha_tail),
                            ("breakpoint", breakpoint), ("xmin", xmin)):
            if not (value > 0 and math.isfinite(value)):
                raise DistributionError(f"{name} must be positive and finite, got {value}")
        if breakpoint <= xmin:
            raise DistributionError(
                f"breakpoint ({breakpoint}) must exceed xmin ({xmin})")
        self.alpha_body = float(alpha_body)
        self.alpha_tail = float(alpha_tail)
        self.breakpoint = float(breakpoint)
        self.xmin = float(xmin)
        # CCDF value at the breakpoint; the probability mass in the far tail.
        self._tail_mass = (self.xmin / self.breakpoint) ** self.alpha_body

    def ccdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.ones_like(arr)
        body = (arr >= self.xmin) & (arr < self.breakpoint)
        tail = arr >= self.breakpoint
        out[body] = np.power(self.xmin / arr[body], self.alpha_body)
        out[tail] = self._tail_mass * np.power(self.breakpoint / arr[tail],
                                               self.alpha_tail)
        return out

    def cdf(self, x: ArrayLike) -> FloatArray:
        return 1.0 - self.ccdf(x)

    def pdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        body = (arr >= self.xmin) & (arr < self.breakpoint)
        tail = arr >= self.breakpoint
        out[body] = (self.alpha_body * self.xmin**self.alpha_body
                     / np.power(arr[body], self.alpha_body + 1.0))
        out[tail] = (self._tail_mass * self.alpha_tail
                     * self.breakpoint**self.alpha_tail
                     / np.power(arr[tail], self.alpha_tail + 1.0))
        return out

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        u = rng.random(n)  # u plays the role of the CCDF value
        out = np.empty(n)
        in_tail = u < self._tail_mass
        # Invert the body regime: u = (xmin/x)^alpha_body.
        ub = u[~in_tail]
        out[~in_tail] = self.xmin * np.power(ub, -1.0 / self.alpha_body)
        # Invert the tail regime: u = tail_mass * (xb/x)^alpha_tail.
        ut = u[in_tail] / self._tail_mass
        out[in_tail] = self.breakpoint * np.power(ut, -1.0 / self.alpha_tail)
        return out

    def mean(self) -> float:
        if self.alpha_tail <= 1.0:
            return math.inf
        # Body contribution: integral of x * pdf over [xmin, xb).
        a, xm, xb = self.alpha_body, self.xmin, self.breakpoint
        if a == 1.0:  # reprolint: disable=RL007, exact mathematical branch: the a=1 integral is logarithmic
            body = xm * math.log(xb / xm)
        else:
            body = a * xm**a / (a - 1.0) * (xm ** (1.0 - a) - xb ** (1.0 - a))
        at = self.alpha_tail
        tail = self._tail_mass * at * xb / (at - 1.0)
        return body + tail

    def params(self) -> dict[str, float]:
        return {
            "alpha_body": self.alpha_body,
            "alpha_tail": self.alpha_tail,
            "breakpoint": self.breakpoint,
            "xmin": self.xmin,
        }
