"""Piecewise-stationary Poisson arrival process.

Section 3.4 of the paper models client arrivals as a sequence of stationary
Poisson processes, each lasting a short window (15 minutes), with per-window
rates drawn from the periodic diurnal pattern of Figure 4.  The paper
validates the model by showing that interarrival times generated this way
(Figure 6) closely match the measured marginal (Figure 5).

:class:`PiecewiseStationaryPoissonProcess` implements exactly that
construction, plus a thinning-based exact non-homogeneous alternative used by
the ablation benchmarks.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .._typing import FloatArray, SeedLike
from ..errors import DistributionError
from ..rng import make_rng
from ..units import FIFTEEN_MINUTES


class RateProfile(Protocol):
    """Anything exposing a vectorized periodic rate function."""

    period: float

    def rate(self, t: float | FloatArray
             ) -> float | FloatArray:  # pragma: no cover - protocol signature
        """Evaluate the rate at times ``t`` (vectorized)."""
        ...

    def max_rate(self) -> float:  # pragma: no cover - protocol signature
        """Upper bound on the rate (used for thinning)."""
        ...


class PiecewiseStationaryPoissonProcess:
    """Non-stationary Poisson process approximated by stationary windows.

    Time is divided into consecutive windows of ``window`` seconds.  Within
    each window the process is homogeneous Poisson with rate equal to the
    profile's rate at the window midpoint; arrivals inside a window are
    therefore uniformly distributed over it.

    Parameters
    ----------
    profile:
        Rate profile (events per second); see
        :class:`~repro.distributions.diurnal.DiurnalProfile` or
        :class:`~repro.distributions.diurnal.WeeklyProfile`.
    window:
        Stationarity window length in seconds (the paper uses 15 minutes).
    """

    def __init__(self, profile: RateProfile,
                 window: float = FIFTEEN_MINUTES) -> None:
        if not window > 0:
            raise DistributionError(f"window must be positive, got {window}")
        self.profile = profile
        self.window = float(window)

    def window_rates(self, duration: float) -> FloatArray:
        """Per-window rates covering ``[0, duration)`` (midpoint sampling)."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        n_windows = int(np.ceil(duration / self.window))
        midpoints = (np.arange(n_windows) + 0.5) * self.window
        return np.asarray(self.profile.rate(midpoints), dtype=np.float64)

    def expected_count(self, duration: float) -> float:
        """Expected number of arrivals in ``[0, duration)``."""
        rates = self.window_rates(duration)
        if rates.size == 0:
            return 0.0
        # The last window may extend past `duration`; clip its contribution.
        widths = np.full(rates.size, self.window)
        widths[-1] = duration - (rates.size - 1) * self.window
        return float(np.dot(rates, widths))

    def generate(self, duration: float, seed: SeedLike = None) -> FloatArray:
        """Generate sorted arrival times over ``[0, duration)``.

        Each window draws a Poisson-distributed count at the window's rate
        and scatters that many arrivals uniformly within the window (arrivals
        falling past ``duration`` in the final partial window are discarded).
        """
        rng = make_rng(seed)
        rates = self.window_rates(duration)
        if rates.size == 0:
            return np.empty(0)
        counts = rng.poisson(rates * self.window)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0)
        window_starts = np.repeat(np.arange(rates.size) * self.window, counts)
        offsets = rng.random(total) * self.window
        times = window_starts + offsets
        times = times[times < duration]
        times.sort()
        return times

    def generate_thinning(self, duration: float,
                          seed: SeedLike = None) -> FloatArray:
        """Generate arrivals via exact non-homogeneous thinning.

        Candidate arrivals are drawn at the profile's peak rate and each is
        kept with probability ``rate(t) / max_rate``.  This is the exact
        NHPP for the continuous rate function and serves as the ablation
        reference for the piecewise-stationary approximation.
        """
        rng = make_rng(seed)
        if duration < 0:
            raise ValueError("duration must be non-negative")
        lam_max = float(self.profile.max_rate())
        if lam_max == 0 or duration == 0:
            return np.empty(0)
        # Draw all candidates at once; the expected count is lam_max*duration.
        n_candidates = rng.poisson(lam_max * duration)
        candidates = np.sort(rng.random(n_candidates) * duration)
        accept_prob = np.asarray(self.profile.rate(candidates),
                                 dtype=np.float64) / lam_max
        keep = rng.random(n_candidates) < accept_prob
        return candidates[keep]

    def interarrivals(self, duration: float, seed: SeedLike = None) -> FloatArray:
        """Convenience: generate arrivals and return successive differences."""
        times = self.generate(duration, seed)
        if times.size < 2:
            return np.empty(0)
        return np.diff(times)
