"""Empirical distribution built from observed samples.

Used wherever the generative model keeps an observed marginal rather than a
parametric fit — e.g. the transfer-bandwidth distribution of Figure 20 can be
carried into GISMO-live as an empirical distribution when the parametric
bimodal mixture is not wanted.
"""

from __future__ import annotations

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike, as_float_array
from ..errors import DistributionError
from .base import ContinuousDistribution


class EmpiricalDistribution(ContinuousDistribution):
    """Distribution defined by a finite sample (resampling / ECDF).

    ``sample`` draws with replacement from the stored values; ``cdf`` is the
    right-continuous empirical CDF.

    Parameters
    ----------
    values:
        Observed sample; must be non-empty and finite.
    """

    def __init__(self, values: ArrayLike) -> None:
        arr = as_float_array(values, name="values")
        if arr.size == 0:
            raise DistributionError("empirical distribution requires a non-empty sample")
        if not np.all(np.isfinite(arr)):
            raise DistributionError("empirical sample must be finite")
        self._sorted = np.sort(arr)

    @property
    def size(self) -> int:
        """Number of stored sample points."""
        return int(self._sorted.size)

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        idx = rng.integers(0, self._sorted.size, size=n)
        return self._sorted[idx]

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        counts = np.searchsorted(self._sorted, arr, side="right")
        return counts / self._sorted.size

    def pdf(self, x: ArrayLike) -> FloatArray:
        """Approximate density via a histogram with Sturges binning.

        The empirical distribution has no true density; this is provided for
        diagnostic plotting only.
        """
        arr = self._as_array(x)
        hist, edges = np.histogram(self._sorted, bins="sturges", density=True)
        idx = np.clip(np.searchsorted(edges, arr, side="right") - 1, 0, len(hist) - 1)
        out = hist[idx]
        out[(arr < edges[0]) | (arr > edges[-1])] = 0.0
        return out

    def mean(self) -> float:
        return float(self._sorted.mean())

    def quantile(self, q: ArrayLike) -> FloatArray:
        """Return empirical quantiles for probabilities ``q`` in [0, 1]."""
        return np.quantile(self._sorted, self._as_array(q))

    def params(self) -> dict[str, float]:
        return {"n": float(self._sorted.size),
                "mean": float(self._sorted.mean()),
                "min": float(self._sorted[0]),
                "max": float(self._sorted[-1])}
