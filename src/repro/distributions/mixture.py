"""Finite mixtures and categorical choices.

The transfer-bandwidth distribution of the paper (Figure 20) is explicitly
bimodal: sharp client-bound spikes at the common access-link speeds (modem
tiers, DSL, cable) plus a diffuse congestion-bound mode at low bandwidths
covering roughly 10% of transfers.  :class:`MixtureDistribution` composes
that shape from simpler components, and :class:`CategoricalChoice` models the
discrete access-speed spikes themselves.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike, as_float_array
from ..errors import DistributionError
from ..rng import make_rng
from .base import ContinuousDistribution, Distribution


class CategoricalChoice(ContinuousDistribution):
    """Distribution over a finite set of real values with given weights.

    Despite living on a finite support this subclasses the continuous
    interface: the values are real-valued magnitudes (e.g. link speeds in
    bits/second), and the CDF is the usual right-continuous step function.

    Parameters
    ----------
    values:
        The support points.
    weights:
        Relative weights, same length as ``values``; normalized internally.
    """

    def __init__(self, values: ArrayLike, weights: ArrayLike) -> None:
        vals = as_float_array(values, name="values")
        wts = as_float_array(weights, name="weights")
        if vals.size == 0:
            raise DistributionError("CategoricalChoice requires at least one value")
        if vals.size != wts.size:
            raise DistributionError(
                f"values and weights must have equal length "
                f"({vals.size} != {wts.size})")
        if np.any(wts < 0) or wts.sum() <= 0:
            raise DistributionError("weights must be non-negative with positive sum")
        order = np.argsort(vals, kind="stable")
        self._values = vals[order]
        self._probs = (wts / wts.sum())[order]
        self._cdf = np.cumsum(self._probs)
        self._cdf[-1] = 1.0

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        idx = np.searchsorted(self._cdf, rng.random(n), side="right")
        return self._values[idx]

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        counts = np.searchsorted(self._values, arr, side="right")
        out = np.zeros_like(arr)
        nz = counts > 0
        out[nz] = self._cdf[counts[nz] - 1]
        return out

    def pdf(self, x: ArrayLike) -> FloatArray:
        """Probability mass at exactly each support point (zero elsewhere)."""
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        idx = np.searchsorted(self._values, arr)
        in_range = idx < self._values.size
        exact = np.zeros_like(arr, dtype=bool)
        exact[in_range] = self._values[idx[in_range]] == arr[in_range]
        out[exact] = self._probs[idx[exact]]
        return out

    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def support(self) -> FloatArray:
        """Return the sorted support points."""
        return self._values.copy()

    def params(self) -> dict[str, float]:
        return {"n_values": float(self._values.size), "mean": self.mean()}


class MixtureDistribution(ContinuousDistribution):
    """Weighted mixture of component distributions.

    Parameters
    ----------
    components:
        The component distributions (anything implementing
        :class:`~repro.distributions.base.Distribution`).
    weights:
        Relative mixture weights, one per component; normalized internally.
    """

    def __init__(self, components: Sequence[Distribution],
                 weights: ArrayLike) -> None:
        if len(components) == 0:
            raise DistributionError("mixture requires at least one component")
        wts = as_float_array(weights, name="weights")
        if wts.size != len(components):
            raise DistributionError(
                f"need one weight per component "
                f"({wts.size} != {len(components)})")
        if np.any(wts < 0) or wts.sum() <= 0:
            raise DistributionError("weights must be non-negative with positive sum")
        self._components = list(components)
        self._weights = wts / wts.sum()

    @property
    def components(self) -> list[Distribution]:
        """The component distributions (shared, not copied)."""
        return list(self._components)

    @property
    def weights(self) -> FloatArray:
        """Normalized mixture weights."""
        return self._weights.copy()

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = make_rng(seed)
        counts = rng.multinomial(n, self._weights)
        parts = [comp.sample(int(c), rng)
                 for comp, c in zip(self._components, counts, strict=True)
                 if c]
        if not parts:
            return np.empty(0)
        out = np.concatenate([np.asarray(p, dtype=np.float64) for p in parts])
        rng.shuffle(out)
        return out

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        for w, comp in zip(self._weights, self._components, strict=True):
            out += w * comp.cdf(arr)
        return out

    def pdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        for w, comp in zip(self._weights, self._components, strict=True):
            pdf = getattr(comp, "pdf", None) or getattr(comp, "pmf")
            out += w * pdf(arr)
        return out

    def mean(self) -> float:
        return float(sum(w * comp.mean()
                         for w, comp in zip(self._weights, self._components,
                                            strict=True)))

    def params(self) -> dict[str, float]:
        out: dict[str, float] = {"n_components": float(len(self._components))}
        for i, w in enumerate(self._weights):
            out[f"weight_{i}"] = float(w)
        return out


def is_degenerate_weighting(weights: ArrayLike, *, tol: float = 1e-12) -> bool:
    """Return True when all mixture mass sits on a single component."""
    wts = as_float_array(weights, name="weights")
    total = wts.sum()
    if total <= 0:
        return True
    return bool(math.isclose(float(wts.max()) / float(total), 1.0, abs_tol=tol))
