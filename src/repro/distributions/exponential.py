"""Exponential distribution.

The paper fits session OFF times ("log-off" or inactive-OFF times) to an
exponential with mean 203,150 seconds (Figure 12, Section 4.3).
"""

from __future__ import annotations

import math

import numpy as np

from .._typing import ArrayLike, FloatArray, SeedLike
from ..errors import DistributionError
from .base import ContinuousDistribution


class ExponentialDistribution(ContinuousDistribution):
    """Exponential distribution parameterized by its *mean* (not rate).

    The paper reports the session OFF fit by its mean (lambda = 203,150 s in
    the paper's notation denotes the mean), so the library follows suit.

    Parameters
    ----------
    mean:
        Distribution mean; must be positive.
    """

    def __init__(self, mean: float) -> None:
        if not (mean > 0 and math.isfinite(mean)):
            raise DistributionError(f"mean must be positive and finite, got {mean}")
        self._mean = float(mean)

    @property
    def rate(self) -> float:
        """Rate parameter ``1 / mean``."""
        return 1.0 / self._mean

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        return rng.exponential(scale=self._mean, size=n)

    def pdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        pos = arr >= 0
        out[pos] = self.rate * np.exp(-self.rate * arr[pos])
        return out

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        pos = arr >= 0
        out[pos] = 1.0 - np.exp(-self.rate * arr[pos])
        return out

    def mean(self) -> float:
        return self._mean

    def params(self) -> dict[str, float]:
        return {"mean": self._mean}
