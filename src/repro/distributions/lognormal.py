"""Lognormal distribution.

The paper fits lognormals to three workload variables: session ON times
(Figure 11, mu = 5.23553, sigma = 1.54432), intra-session transfer
interarrivals (Figure 14, mu = 4.89991, sigma = 1.32074), and transfer
lengths (Figure 19, mu = 4.383921, sigma = 1.427247).  Parameters are those
of the underlying normal in natural-log space, matching the paper's
convention.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf

from .._typing import ArrayLike, FloatArray, SeedLike
from ..errors import DistributionError
from .base import ContinuousDistribution

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


class LognormalDistribution(ContinuousDistribution):
    """Lognormal with log-space mean ``mu`` and log-space std ``sigma``.

    ``X = exp(mu + sigma * Z)`` for standard normal ``Z``.

    Parameters
    ----------
    mu:
        Mean of ``log(X)``.
    sigma:
        Standard deviation of ``log(X)``; must be positive.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        if not math.isfinite(mu):
            raise DistributionError(f"mu must be finite, got {mu}")
        if not (sigma > 0 and math.isfinite(sigma)):
            raise DistributionError(f"sigma must be positive and finite, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        n = self._check_n(n)
        rng = self._rng(seed)
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)

    def pdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        pos = arr > 0
        xp = arr[pos]
        z = (np.log(xp) - self.mu) / self.sigma
        out[pos] = np.exp(-0.5 * z * z) / (xp * self.sigma * _SQRT2PI)
        return out

    def cdf(self, x: ArrayLike) -> FloatArray:
        arr = self._as_array(x)
        out = np.zeros_like(arr)
        pos = arr > 0
        z = (np.log(arr[pos]) - self.mu) / (self.sigma * _SQRT2)
        out[pos] = 0.5 * (1.0 + erf(z))
        return out

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def median(self) -> float:
        """Return the distribution median ``exp(mu)``."""
        return math.exp(self.mu)

    def variance(self) -> float:
        """Return the distribution variance."""
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def params(self) -> dict[str, float]:
        return {"mu": self.mu, "sigma": self.sigma}
