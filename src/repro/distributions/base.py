"""Common distribution interface.

Every distribution exposes ``sample``, ``cdf``, ``ccdf``, ``mean`` and a
``params`` mapping; continuous families add ``pdf`` and discrete ones add
``pmf``.  Sampling always goes through an explicit
:class:`numpy.random.Generator` so workload generation is reproducible
end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._typing import ArrayLike, FloatArray, IntArray, SeedLike, as_float_array
from ..rng import make_rng


class Distribution(ABC):
    """Abstract base for all distributions in :mod:`repro.distributions`."""

    @abstractmethod
    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``n`` independent samples.

        Parameters
        ----------
        n:
            Number of samples; must be non-negative.
        seed:
            Seed or generator; see :func:`repro.rng.make_rng`.
        """

    @abstractmethod
    def cdf(self, x: ArrayLike) -> FloatArray:
        """Evaluate ``P[X <= x]`` elementwise."""

    @abstractmethod
    def mean(self) -> float:
        """Return the distribution mean (may be ``inf`` for heavy tails)."""

    @abstractmethod
    def params(self) -> dict[str, float]:
        """Return the defining parameters as a flat mapping."""

    def ccdf(self, x: ArrayLike) -> FloatArray:
        """Evaluate ``P[X > x]`` elementwise."""
        return 1.0 - self.cdf(x)

    def _check_n(self, n: int) -> int:
        if n < 0:
            raise ValueError(f"sample size must be non-negative, got {n}")
        return int(n)

    def _rng(self, seed: SeedLike) -> np.random.Generator:
        return make_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.6g}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"


class ContinuousDistribution(Distribution):
    """A distribution over the (non-negative) reals."""

    @abstractmethod
    def pdf(self, x: ArrayLike) -> FloatArray:
        """Evaluate the probability density elementwise."""

    def sample(self, n: int, seed: SeedLike = None) -> FloatArray:
        raise NotImplementedError

    @staticmethod
    def _as_array(x: ArrayLike) -> FloatArray:
        return as_float_array(x, name="x")


class DiscreteDistribution(Distribution):
    """A distribution over the positive integers."""

    @abstractmethod
    def pmf(self, k: ArrayLike) -> FloatArray:
        """Evaluate the probability mass elementwise."""

    def sample(self, n: int, seed: SeedLike = None) -> IntArray:
        raise NotImplementedError

    @staticmethod
    def _as_array(k: ArrayLike) -> FloatArray:
        return as_float_array(k, name="k")
