"""The hierarchical workload view: clients > sessions > transfers.

Section 2.2 of the paper organizes the workload as a hierarchy of layers:
the streaming server sees interleaved transfers; transfers group into
sessions under the timeout ``T_o``; sessions group into per-client
behaviour.  :class:`HierarchicalWorkload` is that organization as an
object: one trace, its sessionization, and convenience accessors for each
layer's variables.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from .._typing import FloatArray, IntArray
from ..trace.store import Trace
from ..units import DEFAULT_SESSION_TIMEOUT
from .sessionizer import Sessions, sessionize


class HierarchicalWorkload:
    """A trace viewed through the paper's three-layer hierarchy.

    Parameters
    ----------
    trace:
        The (sanitized) trace.
    timeout:
        Session timeout ``T_o`` (the paper's default: 1,500 s).
    """

    def __init__(self, trace: Trace,
                 timeout: float = DEFAULT_SESSION_TIMEOUT) -> None:
        self.trace = trace
        self.timeout = float(timeout)

    @cached_property
    def sessions(self) -> Sessions:
        """The sessionization (computed lazily, once)."""
        return sessionize(self.trace, self.timeout)

    # ------------------------------------------------------------------
    # Client layer
    # ------------------------------------------------------------------
    @property
    def n_clients(self) -> int:
        """Clients appearing in the trace (the paper's "users")."""
        return int(np.unique(self.trace.client_index).size)

    def client_session_counts(self) -> IntArray:
        """Sessions per client over clients appearing in the trace."""
        counts = self.sessions.sessions_per_client()
        return counts[counts > 0]

    def client_transfer_counts(self) -> IntArray:
        """Transfers per client over clients appearing in the trace."""
        counts = self.trace.transfers_per_client()
        return counts[counts > 0]

    def client_interarrivals(self) -> FloatArray:
        """Interarrival times of session starts (Section 3.3)."""
        return self.sessions.interarrival_times()

    # ------------------------------------------------------------------
    # Session layer
    # ------------------------------------------------------------------
    @property
    def n_sessions(self) -> int:
        """Number of reconstructed sessions."""
        return self.sessions.n_sessions

    def session_on_times(self) -> FloatArray:
        """Session ON times (Section 4.2)."""
        return self.sessions.on_times()

    def session_off_times(self) -> FloatArray:
        """Session OFF times (Section 4.3)."""
        return self.sessions.off_times()

    def transfers_per_session(self) -> IntArray:
        """Transfers in each session (Section 4.4)."""
        return self.sessions.transfers_per_session

    # ------------------------------------------------------------------
    # Transfer layer
    # ------------------------------------------------------------------
    @property
    def n_transfers(self) -> int:
        """Number of transfers in the trace."""
        return len(self.trace)

    def transfer_lengths(self) -> FloatArray:
        """Transfer lengths (Section 5.3)."""
        return self.trace.duration

    def transfer_interarrivals(self) -> FloatArray:
        """Interarrival times of transfer starts (Section 5.2)."""
        if len(self.trace) < 2:
            return np.empty(0)
        return np.diff(self.trace.start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HierarchicalWorkload(n_transfers={self.n_transfers}, "
                f"timeout={self.timeout:.0f}s)")
