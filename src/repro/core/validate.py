"""Workload fidelity validation: how close are two traces, statistically?

The question every synthetic-workload user must answer is whether the
generator's output matches the source workload *in the dimensions that
matter*.  :func:`compare_workloads` runs the paper's calibration on both
traces and reports, per retained Table 2 variable, the relative
disagreement — plus two distributional distances the scalar parameters do
not capture (a two-sample KS on transfer lengths, and the correlation of
the diurnal arrival profiles).

This is the machinery behind the ``selfcheck`` experiment, exposed as a
public API so downstream generators can be held to the same standard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions.goodness import ks_two_sample
from ..trace.store import Trace
from ..units import DEFAULT_SESSION_TIMEOUT, log_display_time
from .calibrate import calibrate_model

#: The Table 2 scalar parameters compared, as model attribute names.
COMPARED_PARAMETERS: tuple[str, ...] = (
    "interest_alpha",
    "transfers_alpha",
    "gap_log_mu",
    "gap_log_sigma",
    "length_log_mu",
    "length_log_sigma",
)


@dataclass(frozen=True)
class ParameterComparison:
    """One Table 2 variable measured on both traces."""

    name: str
    value_a: float
    value_b: float

    @property
    def relative_error(self) -> float:
        """``|a - b| / |a|`` (relative to the reference trace)."""
        if self.value_a == 0:
            return float("inf") if self.value_b != 0 else 0.0
        return abs(self.value_a - self.value_b) / abs(self.value_a)


@dataclass(frozen=True)
class FidelityReport:
    """The result of :func:`compare_workloads`.

    Attributes
    ----------
    parameters:
        Per-variable comparison of the calibrated Table 2 parameters.
    length_ks:
        Two-sample KS distance between the transfer-length marginals
        (after the ``floor(t)+1`` display convention).
    diurnal_correlation:
        Pearson correlation of the two fitted daily arrival profiles.
    """

    parameters: tuple[ParameterComparison, ...]
    length_ks: float
    diurnal_correlation: float

    def worst_parameter(self) -> ParameterComparison:
        """The Table 2 variable with the largest relative error."""
        return max(self.parameters, key=lambda p: p.relative_error)

    def within(self, *, rtol: float = 0.2, ks_max: float = 0.1,
               corr_min: float = 0.9) -> bool:
        """Whether trace B reproduces trace A within the given tolerances.

        Parameters
        ----------
        rtol:
            Maximum relative error on every Table 2 parameter.
        ks_max:
            Maximum two-sample KS distance on transfer lengths.
        corr_min:
            Minimum diurnal-profile correlation.
        """
        return (all(p.relative_error <= rtol for p in self.parameters)
                and self.length_ks <= ks_max
                and self.diurnal_correlation >= corr_min)

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one line per metric."""
        lines = [f"  {p.name:<24} {p.value_a:>10.4f} vs {p.value_b:>10.4f} "
                 f"({p.relative_error * 100:5.1f}% off)"
                 for p in self.parameters]
        lines.append(f"  {'transfer-length KS':<24} {self.length_ks:>10.4f}")
        lines.append(f"  {'diurnal correlation':<24} "
                     f"{self.diurnal_correlation:>10.4f}")
        return lines


def compare_workloads(reference: Trace, candidate: Trace, *,
                      timeout: float = DEFAULT_SESSION_TIMEOUT
                      ) -> FidelityReport:
    """Compare two traces through the paper's calibration lens.

    Parameters
    ----------
    reference:
        The trace being imitated (e.g. a measured workload).
    candidate:
        The trace under test (e.g. a generator's output).
    timeout:
        Session timeout used for both calibrations.
    """
    model_a = calibrate_model(reference, timeout=timeout,
                              include_bandwidth=False).model
    model_b = calibrate_model(candidate, timeout=timeout,
                              include_bandwidth=False).model

    parameters = tuple(
        ParameterComparison(name=name,
                            value_a=float(getattr(model_a, name)),
                            value_b=float(getattr(model_b, name)))
        for name in COMPARED_PARAMETERS)

    length_ks = ks_two_sample(log_display_time(reference.duration),
                              log_display_time(candidate.duration))

    rates_a = model_a.arrival_profile.bin_rates
    rates_b = model_b.arrival_profile.bin_rates
    n = min(rates_a.size, rates_b.size)
    if n >= 2 and rates_a[:n].std() > 0 and rates_b[:n].std() > 0:
        correlation = float(np.corrcoef(rates_a[:n], rates_b[:n])[0, 1])
    else:
        correlation = 0.0

    return FidelityReport(parameters=parameters, length_ks=length_ks,
                          diurnal_correlation=correlation)
