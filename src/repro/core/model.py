"""The generative model for live media workloads (Table 2).

Section 6 of the paper distills the characterization into the minimal
variable set needed to synthesize live workloads:

=============================  =====================  ======================
Variable                       Distribution           Paper's parameters
=============================  =====================  ======================
Mean client arrival rate f(t)  Periodic over 24 h     Figure 4
Client arrival process         Piecewise Poisson      rate = f(t)
Client interest profile        Zipf                   alpha = 0.4704
Transfers per session          Zipf                   alpha = 2.7042
Intra-session interarrivals    Lognormal              mu 4.900, sigma 1.321
Transfer length                Lognormal              mu 4.384, sigma 1.427
=============================  =====================  ======================

:class:`LiveWorkloadModel` is that table as a value object, plus the
auxiliary knobs a usable generator needs (population size, feed count,
optional bandwidth distribution).  It can be written by hand, built from
the paper's defaults (:meth:`LiveWorkloadModel.paper_defaults`), or fitted
from a trace (:func:`repro.core.calibrate.calibrate_model`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..distributions.diurnal import REALITY_SHOW_HOURLY_SHAPE, DiurnalProfile
from ..distributions.empirical import EmpiricalDistribution
from ..distributions.lognormal import LognormalDistribution
from ..distributions.piecewise_poisson import PiecewiseStationaryPoissonProcess
from ..distributions.zipf import ZetaDistribution, ZipfLaw
from ..errors import ConfigError
from ..simulation.viewer import SessionBehavior
from ..units import DAY, FIFTEEN_MINUTES

#: Number of quantiles kept when serializing an empirical bandwidth model.
_BANDWIDTH_QUANTILES = 512


@dataclass(frozen=True)
class LiveWorkloadModel:
    """Parameter set of the live-media generative model.

    Attributes
    ----------
    arrival_profile:
        Periodic mean arrival-rate profile ``f(t)`` (sessions per second).
        Table 2 fixes the period at one day; a one-week period is also
        accepted — the event-aware extension that lets the model carry
        weekly events such as a finale (the daily profile structurally
        averages them away; see the ``ext_flashcrowd`` experiment).
    arrival_window:
        Stationarity window of the piecewise Poisson process (the paper:
        15 minutes).
    n_clients:
        Size of the client population sessions are attributed to.
    interest_alpha:
        Zipf exponent of the client interest profile.
    transfers_alpha, transfers_k_max:
        Zipf exponent (and truncation) of transfers per session.
    gap_log_mu, gap_log_sigma:
        Lognormal parameters of intra-session transfer interarrivals.
    length_log_mu, length_log_sigma:
        Lognormal parameters of transfer lengths.
    n_feeds, feed_switch_prob, feed_preference:
        Live-object structure (two feeds in the paper's trace).
    bandwidth_quantiles:
        Optional empirical bandwidth distribution, stored as evenly spaced
        quantiles; ``None`` generates zero-bandwidth workloads.
    """

    arrival_profile: DiurnalProfile
    arrival_window: float = FIFTEEN_MINUTES
    n_clients: int = 50_000
    interest_alpha: float = 0.4704
    transfers_alpha: float = 2.70417
    transfers_k_max: int = 10_000
    gap_log_mu: float = 4.89991
    gap_log_sigma: float = 1.32074
    length_log_mu: float = 4.383921
    length_log_sigma: float = 1.427247
    n_feeds: int = 2
    feed_switch_prob: float = 0.25
    feed_preference: tuple[float, ...] = (0.6, 0.4)
    bandwidth_quantiles: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        period = self.arrival_profile.period
        if abs(period - DAY) > 1e-6 and abs(period - 7 * DAY) > 1e-6:
            raise ConfigError(
                "the model's arrival profile must have a one-day period "
                "(Table 2: periodic over p = 24 hours) or a one-week "
                "period (the event-aware extension; see the flash-crowd "
                "experiment)")
        if self.n_clients < 1:
            raise ConfigError(f"n_clients must be positive, got {self.n_clients}")
        if self.arrival_window <= 0:
            raise ConfigError("arrival_window must be positive")
        # Delegate the remaining validation to the component constructors.
        self.behavior()
        self.interest_law()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls, *, mean_session_rate: float = 0.05,
                       n_clients: int = 50_000) -> "LiveWorkloadModel":
        """The paper's Table 2 parameters with the default diurnal shape.

        Parameters
        ----------
        mean_session_rate:
            Time-averaged session arrival rate (the paper's trace: ~0.62/s;
            scale to taste).
        n_clients:
            Population size for the interest profile.
        """
        profile = DiurnalProfile(
            np.asarray(REALITY_SHOW_HOURLY_SHAPE, dtype=np.float64),
            period=DAY).scaled_to_mean(mean_session_rate)
        return cls(arrival_profile=profile, n_clients=n_clients)

    # ------------------------------------------------------------------
    # Component views
    # ------------------------------------------------------------------
    def arrival_process(self) -> PiecewiseStationaryPoissonProcess:
        """The client arrival process keyed to ``arrival_profile``."""
        return PiecewiseStationaryPoissonProcess(
            self.arrival_profile, window=self.arrival_window)

    def interest_law(self) -> ZipfLaw:
        """The client interest profile over the population."""
        return ZipfLaw(self.interest_alpha, self.n_clients)

    def behavior(self) -> SessionBehavior:
        """Session behaviour parameters as consumed by the generator."""
        return SessionBehavior(
            transfers_alpha=self.transfers_alpha,
            transfers_k_max=self.transfers_k_max,
            gap_log_mu=self.gap_log_mu,
            gap_log_sigma=self.gap_log_sigma,
            length_log_mu=self.length_log_mu,
            length_log_sigma=self.length_log_sigma,
            n_feeds=self.n_feeds,
            feed_switch_prob=self.feed_switch_prob,
            feed_preference=self.feed_preference,
        )

    def transfers_per_session_law(self) -> ZetaDistribution:
        """The transfers-per-session distribution."""
        return self.behavior().transfers_per_session_law()

    def gap_law(self) -> LognormalDistribution:
        """The intra-session transfer-interarrival distribution."""
        return self.behavior().gap_law()

    def length_law(self) -> LognormalDistribution:
        """The transfer-length distribution."""
        return self.behavior().length_law()

    def bandwidth_law(self) -> EmpiricalDistribution | None:
        """The empirical bandwidth distribution, if calibrated."""
        if self.bandwidth_quantiles is None:
            return None
        return EmpiricalDistribution(np.asarray(self.bandwidth_quantiles))

    def expected_sessions(self, days: float) -> float:
        """Expected session count over ``days`` days."""
        if days < 0:
            raise ConfigError("days must be non-negative")
        return self.arrival_profile.expected_count(days * DAY)

    def with_bandwidth(self, bandwidths) -> "LiveWorkloadModel":
        """Return a copy carrying an empirical bandwidth distribution."""
        sample = np.asarray(bandwidths, dtype=np.float64)
        if sample.size == 0:
            raise ConfigError("bandwidth sample must be non-empty")
        probs = (np.arange(_BANDWIDTH_QUANTILES) + 0.5) / _BANDWIDTH_QUANTILES
        quantiles = tuple(float(q) for q in np.quantile(sample, probs))
        return replace(self, bandwidth_quantiles=quantiles)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "arrival_profile_bin_rates": [
                float(r) for r in self.arrival_profile.bin_rates],
            "arrival_profile_period": self.arrival_profile.period,
            "arrival_window": self.arrival_window,
            "n_clients": self.n_clients,
            "interest_alpha": self.interest_alpha,
            "transfers_alpha": self.transfers_alpha,
            "transfers_k_max": self.transfers_k_max,
            "gap_log_mu": self.gap_log_mu,
            "gap_log_sigma": self.gap_log_sigma,
            "length_log_mu": self.length_log_mu,
            "length_log_sigma": self.length_log_sigma,
            "n_feeds": self.n_feeds,
            "feed_switch_prob": self.feed_switch_prob,
            "feed_preference": list(self.feed_preference),
            "bandwidth_quantiles": (
                None if self.bandwidth_quantiles is None
                else list(self.bandwidth_quantiles)),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LiveWorkloadModel":
        """Reconstruct a model serialized by :meth:`to_dict`."""
        try:
            profile = DiurnalProfile(
                data["arrival_profile_bin_rates"],
                period=float(data.get("arrival_profile_period", DAY)))
            bandwidth = data.get("bandwidth_quantiles")
            return cls(
                arrival_profile=profile,
                arrival_window=float(data["arrival_window"]),
                n_clients=int(data["n_clients"]),
                interest_alpha=float(data["interest_alpha"]),
                transfers_alpha=float(data["transfers_alpha"]),
                transfers_k_max=int(data["transfers_k_max"]),
                gap_log_mu=float(data["gap_log_mu"]),
                gap_log_sigma=float(data["gap_log_sigma"]),
                length_log_mu=float(data["length_log_mu"]),
                length_log_sigma=float(data["length_log_sigma"]),
                n_feeds=int(data["n_feeds"]),
                feed_switch_prob=float(data["feed_switch_prob"]),
                feed_preference=tuple(float(w)
                                      for w in data["feed_preference"]),
                bandwidth_quantiles=(None if bandwidth is None
                                     else tuple(float(q) for q in bandwidth)),
            )
        except KeyError as exc:
            raise ConfigError(f"model dictionary missing key: {exc}") from exc
