"""GISMO-live: synthetic generation of live streaming media workloads.

This module re-implements, from the paper's description (Section 6), the
live-media extensions to GISMO — the Generator of Internet Streaming Media
Objects and workloads [19]:

* **Non-stationary arrivals.** GISMO originally drew session arrivals from
  stationary processes; live workloads require a programmable arrival-rate
  function.  Here the rate is the model's periodic diurnal profile driving
  a piecewise-stationary Poisson process.
* **Clients as first-class entities.** Live content inverts the roles of
  objects and clients: instead of sessions choosing *objects* by a
  popularity law, sessions choose *clients* by the Zipf interest profile.
  Both ends of a session are therefore selected preferentially from
  enumerable sets (clients by interest, feeds by preference).

The output is an ordinary :class:`~repro.trace.store.Trace`, so everything
downstream — sessionization, characterization, replay — applies to
synthetic workloads unchanged, and a generate-then-recharacterize round
trip validates the whole loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray, SeedLike
from ..errors import GenerationError
from ..rng import make_rng, spawn
from ..trace.store import ClientTable, Trace
from ..units import DAY
from ..simulation.viewer import generate_sessions
from .model import LiveWorkloadModel


@dataclass(frozen=True)
class GismoWorkload:
    """A generated workload: the trace plus generation-time ground truth.

    Attributes
    ----------
    trace:
        The synthetic trace (sorted by transfer start).
    session_arrivals:
        True session start times.
    session_client:
        True client index of each session.
    transfer_session:
        Owning-session index of each transfer, in trace order.
    """

    trace: Trace
    session_arrivals: FloatArray = field(repr=False)
    session_client: IntArray = field(repr=False)
    transfer_session: IntArray = field(repr=False)

    @property
    def n_sessions(self) -> int:
        """Number of generated sessions."""
        return int(self.session_arrivals.size)


def _synthetic_client_table(n_clients: int) -> ClientTable:
    """Placeholder client identities for generated workloads.

    GISMO clients are abstract entities; they get sequential player IDs and
    deterministic placeholder IPs (one per client), with no AS/country
    annotation.
    """
    ids = [f"gismo-{i:07d}" for i in range(n_clients)]
    ips = [f"10.{(i >> 16) & 255}.{(i >> 8) & 255}.{i & 255}"
           for i in range(n_clients)]
    return ClientTable(
        player_ids=ids,
        ips=ips,
        as_numbers=np.zeros(n_clients, dtype=np.int64),
        countries=[""] * n_clients,
    )


class LiveWorkloadGenerator:
    """Generates live streaming workloads from a :class:`LiveWorkloadModel`.

    Parameters
    ----------
    model:
        The generative model (paper defaults, hand-tuned, or calibrated
        from a trace).

    Examples
    --------
    >>> model = LiveWorkloadModel.paper_defaults(mean_session_rate=0.01,
    ...                                          n_clients=500)
    >>> workload = LiveWorkloadGenerator(model).generate(days=1, seed=7)
    >>> workload.trace.n_transfers >= workload.n_sessions
    True
    """

    def __init__(self, model: LiveWorkloadModel) -> None:
        self.model = model

    def generate(self, days: float, seed: SeedLike = None) -> GismoWorkload:
        """Generate a workload spanning ``days`` days.

        Transfers whose start would fall past the window are discarded and
        in-progress transfers are clipped at the window end, mirroring a
        real collection period.

        Raises
        ------
        GenerationError
            If ``days`` is non-positive.
        """
        if days <= 0:
            raise GenerationError(f"days must be positive, got {days}")
        model = self.model
        rng = make_rng(seed)
        arrival_rng, identity_rng, behavior_rng, bandwidth_rng = spawn(rng, 4)
        duration = days * DAY

        arrivals = model.arrival_process().generate(duration, arrival_rng)
        session_client = model.interest_law().sample(
            arrivals.size, identity_rng) - 1

        batch = generate_sessions(model.behavior(), arrivals,
                                  seed=behavior_rng)
        keep = batch.start < duration
        starts = batch.start[keep]
        durations = np.minimum(batch.duration[keep], duration - starts)
        object_id = batch.object_id[keep]
        transfer_session = batch.session_index[keep]
        transfer_client = session_client[transfer_session]

        bandwidth_law = model.bandwidth_law()
        if bandwidth_law is not None:
            bandwidth = bandwidth_law.sample(starts.size, bandwidth_rng)
        else:
            bandwidth = np.zeros(starts.size)

        order = np.argsort(starts, kind="stable")
        trace = Trace(
            clients=_synthetic_client_table(model.n_clients),
            client_index=transfer_client[order],
            object_id=object_id[order],
            start=starts[order],
            duration=durations[order],
            bandwidth_bps=bandwidth[order],
            extent=duration,
        )
        return GismoWorkload(
            trace=trace,
            session_arrivals=arrivals,
            session_client=session_client,
            transfer_session=transfer_session[order],
        )
