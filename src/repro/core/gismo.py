"""GISMO-live: synthetic generation of live streaming media workloads.

This module re-implements, from the paper's description (Section 6), the
live-media extensions to GISMO — the Generator of Internet Streaming Media
Objects and workloads [19]:

* **Non-stationary arrivals.** GISMO originally drew session arrivals from
  stationary processes; live workloads require a programmable arrival-rate
  function.  Here the rate is the model's periodic diurnal profile driving
  a piecewise-stationary Poisson process.
* **Clients as first-class entities.** Live content inverts the roles of
  objects and clients: instead of sessions choosing *objects* by a
  popularity law, sessions choose *clients* by the Zipf interest profile.
  Both ends of a session are therefore selected preferentially from
  enumerable sets (clients by interest, feeds by preference).

The output is an ordinary :class:`~repro.trace.store.Trace`, so everything
downstream — sessionization, characterization, replay — applies to
synthetic workloads unchanged, and a generate-then-recharacterize round
trip validates the whole loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from .._typing import FloatArray, IntArray, SeedLike
from ..trace.store import ClientTable
from .model import LiveWorkloadModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..scenarios import Scenario


@dataclass(frozen=True)
class GismoWorkload:
    """A generated workload: the trace plus generation-time ground truth.

    Attributes
    ----------
    trace:
        The synthetic trace (sorted by transfer start).
    session_arrivals:
        True session start times.
    session_client:
        True client index of each session.
    transfer_session:
        Owning-session index of each transfer, in trace order.
    """

    trace: Trace
    session_arrivals: FloatArray = field(repr=False)
    session_client: IntArray = field(repr=False)
    transfer_session: IntArray = field(repr=False)

    @property
    def n_sessions(self) -> int:
        """Number of generated sessions."""
        return int(self.session_arrivals.size)


#: Operating-system string assigned to synthetic clients (the
#: :class:`~repro.trace.store.ClientTable` default).
SYNTHETIC_OS_NAME = "Windows_98"


def synthetic_client_identity(index: int) -> tuple[str, str, str]:
    """The ``(ip, player_id, os_name)`` of synthetic client ``index``.

    The identity is a pure function of the index, so streaming consumers
    (the bounded-memory WMS log writer in :mod:`repro.stream`) can derive
    it on the fly instead of materializing the whole client table.
    :func:`_synthetic_client_table` builds its rows from the same formula,
    which keeps the streamed log byte-identical to one written from a
    materialized :class:`~repro.trace.store.Trace`.
    """
    ip = f"10.{(index >> 16) & 255}.{(index >> 8) & 255}.{index & 255}"
    return ip, f"gismo-{index:07d}", SYNTHETIC_OS_NAME


def _synthetic_client_table(n_clients: int) -> ClientTable:
    """Placeholder client identities for generated workloads.

    GISMO clients are abstract entities; they get sequential player IDs and
    deterministic placeholder IPs (one per client), with no AS/country
    annotation.  Rows follow :func:`synthetic_client_identity`.
    """
    identities = [synthetic_client_identity(i) for i in range(n_clients)]
    return ClientTable(
        player_ids=[player for _, player, _ in identities],
        ips=[ip for ip, _, _ in identities],
        as_numbers=np.zeros(n_clients, dtype=np.int64),
        countries=[""] * n_clients,
    )


class LiveWorkloadGenerator:
    """Generates live streaming workloads from a :class:`LiveWorkloadModel`.

    Parameters
    ----------
    model:
        The generative model (paper defaults, hand-tuned, or calibrated
        from a trace).

    Examples
    --------
    >>> model = LiveWorkloadModel.paper_defaults(mean_session_rate=0.01,
    ...                                          n_clients=500)
    >>> workload = LiveWorkloadGenerator(model).generate(days=1, seed=7)
    >>> workload.trace.n_transfers >= workload.n_sessions
    True
    """

    def __init__(self, model: LiveWorkloadModel) -> None:
        self.model = model

    def generate(self, days: float, seed: SeedLike = None, *,
                 scenario: "str | Scenario | None" = None) -> GismoWorkload:
        """Generate a workload spanning ``days`` days.

        Transfers whose start would fall past the window are discarded and
        in-progress transfers are clipped at the window end, mirroring a
        real collection period.

        Generation runs through the :mod:`repro.parallel` engine as a
        single inline shard, so this serial path is bit-for-bit identical
        to :meth:`generate_sharded` at any shard/worker count.  An
        optional ``scenario`` (spec string or
        :class:`~repro.scenarios.Scenario`) perturbs the workload; see
        :mod:`repro.scenarios`.

        Raises
        ------
        GenerationError
            If ``days`` is non-positive.
        ScenarioError
            If ``scenario`` is an unknown name or a malformed spec.
        """
        return self.generate_sharded(days, seed=seed, scenario=scenario)

    def generate_sharded(self, days: float, *, seed: SeedLike = None,
                         shards: int = 1, jobs: int = 1,
                         strategy: str = "sessions",
                         scenario: "str | Scenario | None" = None
                         ) -> GismoWorkload:
        """Generate a workload in ``shards`` parts across ``jobs`` processes.

        Convenience front end to
        :func:`repro.parallel.generate_sharded`; see there for the
        determinism contract and parameter semantics.
        """
        from ..parallel.engine import generate_sharded
        return generate_sharded(self.model, days, seed=seed, shards=shards,
                                jobs=jobs, strategy=strategy,
                                scenario=scenario)
