"""Model calibration: fit a :class:`LiveWorkloadModel` from a trace.

This closes the paper's loop: Sections 3-5 characterize the trace, Table 2
retains the subset of variables needed for synthesis, and Section 6 feeds
them to GISMO.  :func:`calibrate_model` performs the Table 2 extraction
directly — sessionize, fit each retained distribution, assemble the model —
so a downstream user can go from *any* live-media trace to a matching
synthetic generator in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions.exponential import ExponentialDistribution
from ..distributions.fitting import (
    DiurnalFit,
    ZipfFit,
    fit_diurnal_profile,
    fit_exponential,
    fit_lognormal,
    fit_zipf_pmf,
    fit_zipf_rank,
)
from ..distributions.lognormal import LognormalDistribution
from ..errors import FittingError
from ..trace.store import Trace
from ..units import DAY, DEFAULT_SESSION_TIMEOUT, FIFTEEN_MINUTES, log_display_time
from .model import LiveWorkloadModel
from .sessionizer import Sessions, sessionize


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted model plus the individual fits it was assembled from.

    Attributes
    ----------
    model:
        The assembled :class:`LiveWorkloadModel`.
    diurnal_fit:
        Arrival-rate profile fit (Table 2: mean client arrival rate).
    interest_fit:
        Sessions-per-client Zipf fit (Table 2: client interest profile).
    transfers_fit:
        Transfers-per-session Zipf fit.
    gap_fit:
        Intra-session interarrival lognormal fit.
    length_fit:
        Transfer-length lognormal fit.
    session_on_fit:
        Session ON lognormal fit (characterized but *not* retained by
        Table 2 — it is implied by the other variables).
    session_off_fit:
        Session OFF exponential fit (likewise redundant in the generative
        model; ``None`` when no client has two sessions).
    """

    model: LiveWorkloadModel
    diurnal_fit: DiurnalFit
    interest_fit: ZipfFit
    transfers_fit: ZipfFit
    gap_fit: LognormalDistribution
    length_fit: LognormalDistribution
    session_on_fit: LognormalDistribution
    session_off_fit: ExponentialDistribution | None


def calibrate_model(trace: Trace, *,
                    timeout: float = DEFAULT_SESSION_TIMEOUT,
                    sessions: Sessions | None = None,
                    arrival_window: float = FIFTEEN_MINUTES,
                    diurnal_bins: int = 96,
                    arrival_period: str = "day",
                    include_bandwidth: bool = True) -> CalibrationResult:
    """Fit the Table 2 generative model from ``trace``.

    Parameters
    ----------
    trace:
        A sanitized trace.
    timeout:
        Session timeout ``T_o`` used for sessionization.
    sessions:
        Optionally pass a precomputed sessionization (must match
        ``timeout``).
    arrival_window:
        Stationarity window of the resulting arrival process.
    diurnal_bins:
        Bins per *day* of the fitted arrival profile (scaled by seven
        when fitting a weekly profile).
    arrival_period:
        ``"day"`` fits the Table 2 daily profile; ``"week"`` fits a
        weekly profile instead, which additionally captures day-of-week
        structure and one-off weekly events (see the flash-crowd
        experiment for why that matters for planning).
    include_bandwidth:
        Carry the trace's empirical bandwidth distribution into the model
        (only transfers with positive recorded bandwidth contribute).

    Raises
    ------
    FittingError
        If the trace is too small to fit any retained variable.
    """
    if arrival_period not in ("day", "week"):
        raise FittingError(
            f"arrival_period must be 'day' or 'week', got {arrival_period!r}")
    if sessions is None:
        sessions = sessionize(trace, timeout)
    elif sessions.timeout != timeout:
        raise FittingError(
            f"provided sessions used timeout {sessions.timeout}, "
            f"expected {timeout}")

    arrivals = sessions.arrival_times()
    in_window = arrivals[(arrivals >= 0) & (arrivals < trace.extent)]
    if arrival_period == "week":
        period, n_bins = 7 * DAY, 7 * diurnal_bins
        if trace.extent < period:
            raise FittingError(
                "a weekly arrival profile needs at least one week of trace")
    else:
        period, n_bins = DAY, diurnal_bins
    diurnal = fit_diurnal_profile(in_window, trace.extent, period=period,
                                  n_bins=n_bins,
                                  allow_partial_coverage=True)

    counts = sessions.sessions_per_client()
    interest = fit_zipf_rank(counts[counts > 0])

    tps = sessions.transfers_per_session
    if np.unique(tps).size < 2:
        raise FittingError(
            "cannot fit transfers-per-session: all sessions have the same "
            "transfer count")
    transfers_fit = fit_zipf_pmf(tps)

    intra = sessions.intra_session_interarrivals()
    if intra.size < 2:
        raise FittingError(
            "cannot fit intra-session interarrivals: need sessions with "
            "at least two transfers")
    gap_fit = fit_lognormal(log_display_time(np.maximum(intra, 0.0)))

    length_fit = fit_lognormal(log_display_time(trace.duration))

    session_on_fit = fit_lognormal(log_display_time(sessions.on_times()))
    off_times = sessions.off_times()
    session_off_fit = (fit_exponential(off_times)
                       if off_times.size >= 2 else None)

    n_clients = int(np.unique(trace.client_index).size)
    # Feed ids are indices, so the feed count is max id + 1 (some ids may
    # never appear in a sparse catalogue).
    n_feeds = int(trace.object_id.max()) + 1 if len(trace) else 1
    feed_counts = np.bincount(trace.object_id, minlength=n_feeds
                              ).astype(np.float64)
    feed_counts[feed_counts <= 0] = 1.0  # feeds never observed get a floor
    model = LiveWorkloadModel(
        arrival_profile=diurnal.profile,
        arrival_window=arrival_window,
        n_clients=max(n_clients, 1),
        interest_alpha=max(interest.alpha, 0.0),
        transfers_alpha=max(transfers_fit.alpha, 1.000001),
        gap_log_mu=gap_fit.mu,
        gap_log_sigma=gap_fit.sigma,
        length_log_mu=length_fit.mu,
        length_log_sigma=length_fit.sigma,
        n_feeds=n_feeds,
        feed_preference=tuple(feed_counts / feed_counts.sum()),
    )
    if include_bandwidth:
        positive = trace.bandwidth_bps[trace.bandwidth_bps > 0]
        if positive.size:
            model = model.with_bandwidth(positive)

    return CalibrationResult(
        model=model,
        diurnal_fit=diurnal,
        interest_fit=interest,
        transfers_fit=transfers_fit,
        gap_fit=gap_fit,
        length_fit=length_fit,
        session_on_fit=session_on_fit,
        session_off_fit=session_off_fit,
    )
