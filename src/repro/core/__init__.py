"""The paper's primary contribution.

* :mod:`~repro.core.sessionizer` — reconstruct sessions from interleaved
  transfers under the timeout ``T_o`` (Figure 1 / Section 2.2 semantics);
* :mod:`~repro.core.client_layer`, :mod:`~repro.core.session_layer`,
  :mod:`~repro.core.transfer_layer` — the three characterization layers
  (Sections 3, 4, 5);
* :mod:`~repro.core.characterize` — run all layers over a trace;
* :mod:`~repro.core.model` — the generative model's variable set (Table 2);
* :mod:`~repro.core.calibrate` — fit the model from a trace;
* :mod:`~repro.core.gismo` — the GISMO-live synthetic workload generator
  (Section 6);
* :mod:`~repro.core.report` — human-readable characterization reports.
"""

from .calibrate import CalibrationResult, calibrate_model
from .characterize import WorkloadCharacterization, characterize
from .client_layer import ClientLayerCharacterization, characterize_client_layer
from .gismo import GismoWorkload, LiveWorkloadGenerator
from .hierarchy import HierarchicalWorkload
from .model import LiveWorkloadModel
from .report import render_report
from .session_layer import SessionLayerCharacterization, characterize_session_layer
from .sessionizer import Sessions, session_count_for_timeouts, sessionize
from .transfer_layer import (
    TransferLayerCharacterization,
    characterize_transfer_layer,
)

__all__ = [
    "CalibrationResult",
    "ClientLayerCharacterization",
    "GismoWorkload",
    "HierarchicalWorkload",
    "LiveWorkloadGenerator",
    "LiveWorkloadModel",
    "SessionLayerCharacterization",
    "Sessions",
    "TransferLayerCharacterization",
    "WorkloadCharacterization",
    "calibrate_model",
    "characterize",
    "characterize_client_layer",
    "characterize_session_layer",
    "characterize_transfer_layer",
    "render_report",
    "session_count_for_timeouts",
    "sessionize",
]
