"""Capacity planning from a generative model.

The paper's bottom line (Section 1): live content forbids admission
control as a safety valve, so capacity must be planned from an accurate
workload model.  This module turns a :class:`LiveWorkloadModel` into
provisioning numbers:

* :func:`required_capacity` — the concurrent-transfer capacity needed to
  keep the denial probability below a target, estimated by generating
  workloads from the model and reading the demand distribution;
* :func:`denial_rate_at` — the converse: the fraction of requests a given
  capacity would deny.

Both operate on *generated* workloads, which is exactly how a planner
would use GISMO-live: measure once, calibrate, then ask what-if questions
of the model rather than of the production system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._typing import SeedLike
from ..analysis.concurrency import sampled_concurrency
from ..errors import GenerationError
from ..rng import make_rng, spawn
from ..simulation.replay import replay_trace
from ..simulation.server import ServerConfig
from .gismo import LiveWorkloadGenerator
from .model import LiveWorkloadModel


@dataclass(frozen=True)
class CapacityPlan:
    """Result of :func:`required_capacity`.

    Attributes
    ----------
    capacity:
        Concurrent-transfer provisioning that meets the target.
    demand_percentile:
        The demand percentile the capacity corresponds to.
    peak_demand:
        Largest concurrent demand observed across the planning runs.
    n_runs, days_per_run:
        Monte-Carlo effort behind the estimate.
    """

    capacity: int
    demand_percentile: float
    peak_demand: int
    n_runs: int
    days_per_run: float


def _demand_samples(model: LiveWorkloadModel, *, days: float, n_runs: int,
                    step: float, seed: SeedLike) -> np.ndarray:
    rng = make_rng(seed)
    samples = []
    for run_rng in spawn(rng, n_runs):
        workload = LiveWorkloadGenerator(model).generate(days, run_rng)
        trace = workload.trace
        counts = sampled_concurrency(trace.start, trace.end,
                                     extent=trace.extent, step=step)
        samples.append(counts)
    return np.concatenate(samples) if samples else np.empty(0)


def required_capacity(model: LiveWorkloadModel, *, days: float = 7.0,
                      target_percentile: float = 99.9, n_runs: int = 3,
                      step: float = 60.0,
                      seed: SeedLike = None) -> CapacityPlan:
    """Capacity covering the demand up to ``target_percentile``.

    Generates ``n_runs`` independent workloads of ``days`` days from the
    model, samples the concurrent-transfer demand, and returns the
    requested percentile (rounded up) as the provisioning level.

    Parameters
    ----------
    model:
        The calibrated workload model.
    days:
        Length of each planning workload.
    target_percentile:
        Demand percentile the capacity must cover (e.g. 99.9 keeps the
        server below capacity 99.9% of the time).
    n_runs:
        Independent generations to smooth the estimate.
    step:
        Demand sampling period in seconds.
    seed:
        Seed for the Monte-Carlo runs.
    """
    if not 0.0 < target_percentile <= 100.0:
        raise GenerationError(
            f"target_percentile must be in (0, 100], got {target_percentile}")
    if n_runs < 1 or days <= 0:
        raise GenerationError("n_runs and days must be positive")
    demand = _demand_samples(model, days=days, n_runs=n_runs, step=step,
                             seed=seed)
    if demand.size == 0:
        raise GenerationError("model generated no demand to plan from")
    capacity = int(np.ceil(np.percentile(demand, target_percentile)))
    return CapacityPlan(
        capacity=max(capacity, 1),
        demand_percentile=target_percentile,
        peak_demand=int(demand.max()),
        n_runs=n_runs,
        days_per_run=days,
    )


def denial_rate_at(model: LiveWorkloadModel, capacity: int, *,
                   days: float = 7.0, seed: SeedLike = None) -> float:
    """Fraction of live requests denied at the given capacity.

    Generates one workload from the model and replays it through the
    admission-controlled server.

    Parameters
    ----------
    model:
        The workload model.
    capacity:
        Admission-control limit (concurrent transfers).
    days:
        Length of the generated workload.
    seed:
        Seed for the generation.
    """
    if capacity < 1:
        raise GenerationError(f"capacity must be positive, got {capacity}")
    workload = LiveWorkloadGenerator(model).generate(days, seed)
    result = replay_trace(workload.trace,
                          config=ServerConfig(max_concurrent=capacity))
    return result.rejection_rate
