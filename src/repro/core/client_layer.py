"""Client-layer characterization (Section 3 of the paper).

Covers: client topological/geographical diversity (Figure 2), the
concurrency profile ``c(t)`` and its temporal structure (Figures 3, 4, 8),
client interarrival times (Figure 5), the piecewise-stationary Poisson
arrival model (Figure 6, via the fitted diurnal profile), and the Zipf-like
client interest profile (Figure 7).

"Clients active at time t" means clients with an ongoing *session*, so this
layer is computed on top of the sessionization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray
from ..analysis.autocorrelation import acf, dominant_period
from ..analysis.concurrency import mean_concurrency_bins, sampled_concurrency
from ..analysis.ranks import group_counts, rank_frequency, share_by_key
from ..analysis.timeseries import fold_series
from ..distributions.fitting import (
    DiurnalFit,
    ZipfFit,
    fit_diurnal_profile,
    fit_zipf_rank,
)
from ..trace.store import Trace
from ..units import DAY, FIFTEEN_MINUTES, MINUTE, WEEK
from .sessionizer import Sessions


@dataclass(frozen=True)
class TopologyProfile:
    """Client diversity over ASes and countries (Figure 2).

    Attributes
    ----------
    as_transfer_shares:
        Fraction of transfers per AS, sorted descending (rank order).
    as_ip_shares:
        Fraction of distinct IPs per AS, sorted descending.
    country_shares:
        ``(country, fraction of transfers)`` pairs, sorted descending.
    n_ases, n_ips, n_countries:
        Distinct counts over clients that appear in the trace.
    """

    as_transfer_shares: FloatArray = field(repr=False)
    as_ip_shares: FloatArray = field(repr=False)
    country_shares: list[tuple[str, float]]
    n_ases: int
    n_ips: int
    n_countries: int


@dataclass(frozen=True)
class ClientLayerCharacterization:
    """All client-layer measurements and fits.

    Attributes
    ----------
    concurrency_samples:
        Active-client counts sampled every ``concurrency_step`` seconds
        (Figure 3's marginal is over these samples).
    concurrency_step:
        Sampling period of ``concurrency_samples``.
    concurrency_bins:
        Time-weighted mean active clients per 15-minute bin (Figure 4 left).
    weekly_fold, daily_fold:
        ``concurrency_bins`` folded modulo one week / one day
        (Figure 4 center / right).
    acf_values:
        Autocorrelation of ``concurrency_samples`` (Figure 8); with the
        default one-minute step, lags are in minutes.
    acf_dominant_lag:
        Lag of the strongest ACF peak (1440 for a diurnal workload).
    interarrivals:
        Client (session) interarrival times (Figure 5).
    diurnal_fit:
        Fitted daily arrival-rate profile — the non-stationary mean of the
        piecewise-stationary Poisson model (Section 3.4, Figure 6).
    sessions_per_client, transfers_per_client:
        Per-client activity counts over clients appearing in the trace.
    session_interest_fit, transfer_interest_fit:
        Zipf fits of the interest profiles (Figure 7 right / left; the
        paper: alpha 0.4704 and 0.7194).
    topology:
        AS/country diversity (Figure 2).
    """

    concurrency_samples: FloatArray = field(repr=False)
    concurrency_step: float = field(repr=False)
    concurrency_bins: FloatArray = field(repr=False)
    weekly_fold: FloatArray = field(repr=False)
    daily_fold: FloatArray = field(repr=False)
    acf_values: FloatArray = field(repr=False)
    acf_dominant_lag: int = 0
    interarrivals: FloatArray = field(repr=False, default=None)
    diurnal_fit: DiurnalFit = field(repr=False, default=None)
    sessions_per_client: IntArray = field(repr=False, default=None)
    transfers_per_client: IntArray = field(repr=False, default=None)
    session_interest_fit: ZipfFit = None
    transfer_interest_fit: ZipfFit = None
    topology: TopologyProfile = None


def characterize_topology(trace: Trace) -> TopologyProfile:
    """Compute the Figure 2 diversity profile of a trace."""
    active = np.unique(trace.client_index)
    clients = trace.clients
    transfer_as = clients.as_numbers[trace.client_index]
    _, as_counts = group_counts(transfer_as)
    _, as_transfer_shares = rank_frequency(as_counts)

    active_ips = clients.ips[active]
    active_ases = clients.as_numbers[active]
    # Distinct IPs per AS: count unique (as, ip) pairs grouped by AS.
    pair_keys = np.char.add(np.char.add(active_ases.astype(np.str_), "|"),
                            active_ips.astype(np.str_))
    unique_pairs = np.unique(pair_keys)
    pair_as = np.asarray([key.split("|", 1)[0] for key in unique_pairs])
    _, ip_counts = group_counts(pair_as)
    _, as_ip_shares = rank_frequency(ip_counts)

    countries = clients.countries[trace.client_index]
    country_shares = share_by_key(countries)
    return TopologyProfile(
        as_transfer_shares=as_transfer_shares,
        as_ip_shares=as_ip_shares,
        country_shares=country_shares,
        n_ases=int(np.unique(active_ases[active_ases > 0]).size),
        n_ips=int(np.unique(active_ips).size),
        n_countries=int(np.unique(
            clients.countries[active][clients.countries[active] != ""]).size),
    )


def characterize_client_layer(trace: Trace, sessions: Sessions, *,
                              concurrency_step: float = MINUTE,
                              bin_width: float = FIFTEEN_MINUTES,
                              acf_max_lag_minutes: int = 3 * 1440,
                              diurnal_bins: int = 96
                              ) -> ClientLayerCharacterization:
    """Run the full Section 3 characterization.

    Parameters
    ----------
    trace:
        The sanitized trace.
    sessions:
        Its sessionization (defines when a client counts as active).
    concurrency_step:
        Sampling period for the ``c(t)`` samples and the ACF (one minute
        keeps Figure 8's lag axis in minutes).
    bin_width:
        Aggregation bin for the temporal profiles (the paper: 15 minutes).
    acf_max_lag_minutes:
        Largest ACF lag, in multiples of ``concurrency_step``.
    diurnal_bins:
        Bins per day of the fitted arrival-rate profile (96 = 15-minute).
    """
    extent = trace.extent
    starts = sessions.session_start
    ends = sessions.session_end

    samples = sampled_concurrency(starts, ends, extent=extent,
                                  step=concurrency_step)
    bins = mean_concurrency_bins(starts, ends, extent=extent,
                                 bin_width=bin_width)
    # Folds need whole periods; trim the series to complete bins of period.
    weekly = fold_series(bins, bin_width=bin_width, period=WEEK)
    daily = fold_series(bins, bin_width=bin_width, period=DAY)

    max_lag = min(acf_max_lag_minutes, samples.size - 1)
    acf_values = acf(samples, max_lag)
    lag_floor = max(int(round(18 * 3600 / concurrency_step)), 1)
    if max_lag > lag_floor:
        acf_lag = dominant_period(acf_values, min_lag=lag_floor)
    else:
        acf_lag = dominant_period(acf_values)

    arrivals = sessions.arrival_times()
    in_window = arrivals[(arrivals >= 0) & (arrivals < extent)]
    diurnal = fit_diurnal_profile(in_window, extent, period=DAY,
                                  n_bins=diurnal_bins,
                                  allow_partial_coverage=True)

    sessions_per_client = sessions.sessions_per_client()
    transfers_per_client = trace.transfers_per_client()
    session_fit = fit_zipf_rank(sessions_per_client[sessions_per_client > 0])
    transfer_fit = fit_zipf_rank(transfers_per_client[transfers_per_client > 0])

    return ClientLayerCharacterization(
        concurrency_samples=samples,
        concurrency_step=concurrency_step,
        concurrency_bins=bins,
        weekly_fold=weekly,
        daily_fold=daily,
        acf_values=acf_values,
        acf_dominant_lag=acf_lag,
        interarrivals=sessions.interarrival_times(),
        diurnal_fit=diurnal,
        sessions_per_client=sessions_per_client,
        transfers_per_client=transfers_per_client,
        session_interest_fit=session_fit,
        transfer_interest_fit=transfer_fit,
        topology=characterize_topology(trace),
    )
