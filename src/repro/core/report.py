"""Human-readable rendering of a workload characterization.

Produces a plain-text report comparing every fitted quantity against the
paper's reference values (:mod:`repro.paper`), in the order the paper
presents them: basic statistics, then the client, session, and transfer
layers.
"""

from __future__ import annotations

import numpy as np

from .. import paper
from ..units import format_duration
from .characterize import WorkloadCharacterization


def _format_count(value: float) -> str:
    if value >= 1e12:
        return f"{value / 1e12:.2f}T"
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _row(label: str, measured: str, reference: str = "") -> str:
    line = f"  {label:<44} {measured:>14}"
    if reference:
        line += f"   (paper: {reference})"
    return line


def render_report(char: WorkloadCharacterization) -> str:
    """Render ``char`` as a plain-text report with paper comparisons."""
    lines: list[str] = []
    out = lines.append

    out("=" * 78)
    out("Hierarchical characterization of a live streaming media workload")
    out("=" * 78)

    s = char.summary
    out("")
    out("Basic statistics (Table 1)")
    out("-" * 78)
    out(_row("log period", f"{s.days:.1f} days",
             f"{paper.TABLE1['days'].value:.0f} days"))
    out(_row("live objects", str(s.n_objects),
             f"{paper.TABLE1['n_objects'].value:.0f}"))
    out(_row("client ASes", _format_count(s.n_ases),
             _format_count(paper.TABLE1["n_ases"].value)))
    out(_row("client IPs", _format_count(s.n_ips),
             _format_count(paper.TABLE1["n_ips"].value)))
    out(_row("users", _format_count(s.n_users),
             _format_count(paper.TABLE1["n_users"].value)))
    out(_row(f"sessions (T_o = {char.timeout:.0f}s)",
             _format_count(s.n_sessions),
             "> " + _format_count(paper.TABLE1["n_sessions"].value)))
    out(_row("transfers", _format_count(s.n_transfers),
             "> " + _format_count(paper.TABLE1["n_transfers"].value)))
    out(_row("content served", _format_count(s.bytes_served) + "B",
             "> " + _format_count(paper.TABLE1["bytes_served"].value) + "B"))

    c = char.client
    out("")
    out("Client layer (Section 3)")
    out("-" * 78)
    out(_row("peak concurrent clients",
             f"{float(np.max(c.concurrency_samples)):.0f}"))
    out(_row("mean concurrent clients",
             f"{float(np.mean(c.concurrency_samples)):.1f}"))
    step_minutes = c.concurrency_step / 60.0
    out(_row("ACF dominant lag",
             f"{c.acf_dominant_lag * step_minutes:.0f} min",
             f"{paper.TRANSFER_LAYER['acf_daily_lag_minutes'].value:.0f} min"))
    out(_row("interest Zipf alpha (sessions/client)",
             f"{c.session_interest_fit.alpha:.4f}",
             f"{paper.TABLE2['interest_alpha_sessions'].value:.4f}"))
    out(_row("interest Zipf alpha (transfers/client)",
             f"{c.transfer_interest_fit.alpha:.4f}",
             f"{paper.TABLE2['interest_alpha_transfers'].value:.4f}"))
    if c.topology is not None:
        top_country = c.topology.country_shares[0]
        out(_row("dominant country",
                 f"{top_country[0]} ({top_country[1] * 100:.1f}%)",
                 "BR"))

    se = char.session
    out("")
    out("Session layer (Section 4)")
    out("-" * 78)
    out(_row("session ON lognormal mu",
             f"{se.on_fit.mu:.4f}",
             f"{paper.SESSION_LAYER['session_on_log_mu'].value:.4f}"))
    out(_row("session ON lognormal sigma",
             f"{se.on_fit.sigma:.4f}",
             f"{paper.SESSION_LAYER['session_on_log_sigma'].value:.4f}"))
    out(_row("ON-time variance explained by hour",
             f"{se.on_by_hour.variance_explained * 100:.2f}%",
             "weak"))
    if se.off_fit is not None:
        out(_row("session OFF exponential mean",
                 format_duration(se.off_fit.mean()),
                 format_duration(
                     paper.SESSION_LAYER["session_off_mean"].value)))
    if se.transfers_fit is not None:
        out(_row("transfers/session Zipf alpha",
                 f"{se.transfers_fit.alpha:.4f}",
                 f"{paper.TABLE2['transfers_per_session_alpha'].value:.4f}"))
    if se.intra_fit is not None:
        out(_row("intra-session interarrival lognormal mu",
                 f"{se.intra_fit.mu:.4f}",
                 f"{paper.TABLE2['intra_arrival_log_mu'].value:.4f}"))
        out(_row("intra-session interarrival lognormal sigma",
                 f"{se.intra_fit.sigma:.4f}",
                 f"{paper.TABLE2['intra_arrival_log_sigma'].value:.4f}"))

    t = char.transfer
    out("")
    out("Transfer layer (Section 5)")
    out("-" * 78)
    out(_row("peak concurrent transfers",
             f"{float(np.max(t.concurrency_samples)):.0f}"))
    if t.interarrival_tail is not None:
        out(_row("interarrival tail alpha (body)",
                 f"{t.interarrival_tail.alpha_body:.2f}",
                 f"~{paper.TRANSFER_LAYER['interarrival_tail_body_alpha'].value:.1f}"))
        out(_row("interarrival tail alpha (tail)",
                 f"{t.interarrival_tail.alpha_tail:.2f}",
                 f"~{paper.TRANSFER_LAYER['interarrival_tail_tail_alpha'].value:.1f}"))
        mean_rate = (t.interarrivals.size / max(float(np.sum(t.interarrivals)),
                                                1e-9))
        if mean_rate < 0.5:
            out("    (tail regimes are rate-dependent; the paper's 100 s "
                "crossover needs its ~2.3 req/s scale)")
    out(_row("transfer length lognormal mu",
             f"{t.length_fit.mu:.4f}",
             f"{paper.TABLE2['transfer_length_log_mu'].value:.4f}"))
    out(_row("transfer length lognormal sigma",
             f"{t.length_fit.sigma:.4f}",
             f"{paper.TABLE2['transfer_length_log_sigma'].value:.4f}"))
    out(_row("congestion-bound transfer fraction",
             f"{t.congestion_bound_fraction * 100:.1f}%",
             f"~{paper.TRANSFER_LAYER['congestion_bound_fraction'].value * 100:.0f}%"))

    out("=" * 78)
    return "\n".join(lines)
