"""Session-layer characterization (Section 4 of the paper).

Covers: the session-count-versus-timeout relationship (Figure 9), session
ON times and their lognormal fit (Figures 10, 11), session OFF times and
their exponential fit (Figure 12), transfers per session and their Zipf fit
(Figure 13), and intra-session transfer interarrivals with their lognormal
fit (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray, IntArray
from ..analysis.correlation import binned_conditional_mean, variance_explained_by_bins
from ..distributions.exponential import ExponentialDistribution
from ..distributions.fitting import (
    ZipfFit,
    fit_exponential,
    fit_lognormal,
    fit_zipf_pmf,
)
from ..distributions.goodness import GoodnessOfFit, evaluate_fit
from ..distributions.lognormal import LognormalDistribution
from ..units import DAY, log_display_time
from .sessionizer import Sessions


@dataclass(frozen=True)
class HourOfDayProfile:
    """Conditional mean of a variable given its starting hour (Figure 10).

    Attributes
    ----------
    centers:
        Bin centers in seconds-of-day.
    means:
        Per-hour conditional means (NaN where no observations).
    counts:
        Observations per hour bin.
    variance_explained:
        Correlation ratio: fraction of the variable's variance explained
        by the hour of day.  The paper reads Figure 10 as a "fairly weak
        correlation" — a small value here.
    """

    centers: FloatArray = field(repr=False)
    means: FloatArray = field(repr=False)
    counts: FloatArray = field(repr=False)
    variance_explained: float = 0.0


@dataclass(frozen=True)
class SessionLayerCharacterization:
    """All session-layer measurements and fits.

    Attributes
    ----------
    on_times:
        Session ON times ``l(i)`` in seconds.
    on_fit:
        Lognormal fit of the ON times (the paper: mu 5.23553,
        sigma 1.54432).
    on_gof:
        KS goodness of the ON-time fit.
    on_by_hour:
        Mean ON time by starting hour (Figure 10).
    off_times:
        Session OFF times ``f(i)`` in seconds.
    off_fit:
        Exponential fit of the OFF times (the paper: mean 203,150 s).
        ``None`` when no client has two sessions.
    off_gof:
        KS goodness of the OFF-time fit (``None`` with it).
    transfers_per_session:
        Transfer count of each session.
    transfers_fit:
        Zipf (discrete power law) fit (the paper: alpha 2.70417).
    intra_arrivals:
        Intra-session transfer interarrival times.
    intra_fit:
        Lognormal fit (the paper: mu 4.89991, sigma 1.32074).  ``None``
        when every session has a single transfer.
    """

    on_times: FloatArray = field(repr=False)
    on_fit: LognormalDistribution = None
    on_gof: GoodnessOfFit = None
    on_by_hour: HourOfDayProfile = None
    off_times: FloatArray = field(repr=False, default=None)
    off_fit: ExponentialDistribution | None = None
    off_gof: GoodnessOfFit | None = None
    transfers_per_session: IntArray = field(repr=False, default=None)
    transfers_fit: ZipfFit = None
    intra_arrivals: FloatArray = field(repr=False, default=None)
    intra_fit: LognormalDistribution | None = None


def characterize_session_layer(sessions: Sessions
                               ) -> SessionLayerCharacterization:
    """Run the full Section 4 characterization over a sessionization."""
    on_times = sessions.on_times()
    # The log's one-second resolution produces zero ON times for sessions
    # with one instantaneous transfer; the paper's floor(t)+1 convention
    # keeps them representable.
    on_display = log_display_time(on_times)
    on_fit = fit_lognormal(on_display)
    on_gof = evaluate_fit(on_display, on_fit)

    centers, means, counts = binned_conditional_mean(
        sessions.session_start, on_times, period=DAY, n_bins=24)
    on_by_hour = HourOfDayProfile(
        centers=centers, means=means, counts=counts,
        variance_explained=variance_explained_by_bins(
            sessions.session_start, on_times, period=DAY, n_bins=24))

    off_times = sessions.off_times()
    off_fit = None
    off_gof = None
    if off_times.size >= 2:
        off_fit = fit_exponential(off_times)
        off_gof = evaluate_fit(off_times, off_fit)

    tps = sessions.transfers_per_session
    transfers_fit = fit_zipf_pmf(tps) if np.unique(tps).size >= 2 else None

    intra = sessions.intra_session_interarrivals()
    intra_fit = None
    if intra.size >= 2:
        intra_display = log_display_time(np.maximum(intra, 0.0))
        intra_fit = fit_lognormal(intra_display)

    return SessionLayerCharacterization(
        on_times=on_times,
        on_fit=on_fit,
        on_gof=on_gof,
        on_by_hour=on_by_hour,
        off_times=off_times,
        off_fit=off_fit,
        off_gof=off_gof,
        transfers_per_session=tps,
        transfers_fit=transfers_fit,
        intra_arrivals=intra,
        intra_fit=intra_fit,
    )
