"""Session reconstruction from interleaved transfers.

The trace does not delimit sessions; the paper defines a client session as
a maximal interval of activity in which no period of silence (no transfer
in progress for that client) exceeds the timeout ``T_o`` (Section 2.2,
Figure 1).  With the paper's ``T_o = 1,500`` seconds the trace yields about
1.5 million sessions, and Figure 9 shows the session count flattening for
larger timeouts.

The reconstruction walks each client's transfers in start order, tracking
the running maximum of transfer end times; a new session begins whenever
the next transfer starts more than ``T_o`` after everything seen so far
has ended.  (Tracking the running maximum matters: transfers overlap —
Figure 1's two feeds — so the previous transfer's end is not the session's
latest end.)
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from .._typing import FloatArray, IntArray
from ..arrayops import _scan_running_max
from ..errors import AnalysisError
from ..trace.store import Trace
from ..units import DEFAULT_SESSION_TIMEOUT


def _gaps_from_sorted(start: FloatArray, end: FloatArray,
                      firsts: IntArray) -> tuple[FloatArray, FloatArray]:
    """Silence gaps from ``(client, start)``-sorted start/end columns and
    the sorted-view positions of each client's first transfer.

    Returns ``(gaps, run_max)`` where ``run_max`` is the per-client
    running maximum of transfer ends the gaps were derived from.
    Consumes ``end``: the scan overwrites it in place with ``run_max``.
    """
    n = start.size
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty
    run_max = _scan_running_max(end, firsts, overwrite=True)
    # Gap = start minus the latest end among the client's *earlier*
    # transfers: the running max one position back (same segment);
    # +inf marks each client's first transfer.
    gaps = np.empty(n, dtype=np.float64)
    gaps[0] = np.inf
    np.subtract(start[1:], run_max[:-1], out=gaps[1:])
    gaps[firsts] = np.inf
    return gaps, run_max


def silence_gaps(trace: Trace) -> tuple[FloatArray, IntArray]:
    """Per-transfer silence gap preceding each transfer of the same client.

    Returns ``(gaps, order)`` where ``order`` sorts transfers by
    ``(client, start)`` and ``gaps[k]`` is the time between transfer
    ``order[k]``'s start and the latest end among the same client's earlier
    transfers — ``+inf`` for a client's first transfer and negative when
    transfers overlap.  Session boundaries for any timeout ``T_o`` are
    exactly the positions with ``gaps > T_o``, which is what makes the
    Figure 9 timeout sweep cheap.

    Fully vectorized: the trace's cached client grouping
    (:attr:`~repro.trace.store.Trace.client_grouping` — a stable O(n)
    radix argsort, since transfers are already start-sorted) followed by
    a segmented running maximum over per-client transfer ends
    (:func:`repro.arrayops.segmented_running_max`) shifted by one
    position.  :func:`_reference_silence_gaps` keeps the original
    per-transfer Python walk; the property suite asserts bit-for-bit
    agreement.
    """
    order, _, firsts = trace.client_grouping
    start, end = trace.client_sorted_spans
    gaps, _ = _gaps_from_sorted(start, end.copy(), firsts)
    return gaps, order


def _reference_silence_gaps(trace: Trace) -> tuple[FloatArray, IntArray]:
    """Per-transfer Python-loop formulation of :func:`silence_gaps`.

    Kept as the executable specification: the vectorized path must match
    it bit-for-bit (see ``tests/property/test_sessionizer_properties.py``).
    """
    n = len(trace)
    order = np.lexsort((trace.start, trace.client_index))
    client = trace.client_index[order]
    start = trace.start[order]
    end = start + trace.duration[order]

    starts_l = start.tolist()
    ends_l = end.tolist()
    clients_l = client.tolist()
    gaps_list = [0.0] * n
    run_max = 0.0
    prev_client = -1
    for i in range(n):
        if clients_l[i] != prev_client:
            prev_client = clients_l[i]
            run_max = ends_l[i]
            gaps_list[i] = float("inf")
        else:
            gaps_list[i] = starts_l[i] - run_max
            if ends_l[i] > run_max:
                run_max = ends_l[i]
    return np.asarray(gaps_list, dtype=np.float64), order


class Sessions:
    """The sessionization of a trace under a fixed timeout.

    Construct via :func:`sessionize`.  Sessions are numbered in
    ``(client, start)`` order; all per-session arrays are parallel.
    """

    def __init__(self, trace: Trace, timeout: float, order: IntArray,
                 boundary: np.ndarray, *,
                 _start_sorted: FloatArray | None = None,
                 _run_max: FloatArray | None = None) -> None:
        self.trace = trace
        self.timeout = float(timeout)
        self._order = order
        self._boundary = boundary  # True where a session begins (sorted order)

        if _start_sorted is not None:
            # sessionize() already gathered the (client, start)-sorted
            # start column while computing the gaps; don't gather twice.
            start_sorted = _start_sorted
        else:
            start_sorted = trace.start[order]
        self._start_sorted = start_sorted

        boundary_idx = np.nonzero(boundary)[0]
        self._boundary_idx = boundary_idx
        #: Per-session start time (its first transfer's start).
        self.session_start: FloatArray = start_sorted[boundary_idx]
        # Sorted-view position one past each session's last transfer.
        nxt = np.empty(boundary_idx.size, dtype=np.int64)
        if boundary_idx.size:
            nxt[:-1] = boundary_idx[1:]
            nxt[-1] = len(trace)
        #: Per-session end time (latest transfer end).
        if boundary_idx.size == 0:
            self.session_end: FloatArray = np.empty(0, dtype=np.float64)
        elif _run_max is not None:
            # Fast path from sessionize(): a session's first transfer
            # starts strictly after every earlier end of the same client
            # (its gap exceeds a positive timeout) and durations are
            # non-negative, so from that transfer on the per-client
            # running maximum of ends equals the running maximum within
            # the session alone — the value at the session's last
            # transfer is exactly the reduceat maximum.
            self.session_end = _run_max[nxt - 1]
        else:
            end_sorted = start_sorted + trace.duration[order]
            self.session_end = np.maximum.reduceat(end_sorted, boundary_idx)
        #: Per-session transfer count.
        self.transfers_per_session: IntArray = nxt - boundary_idx

    @cached_property
    def session_client(self) -> IntArray:
        """Per-session client index (lazy, cached on first use)."""
        return self.trace.client_index[self._order[self._boundary_idx]]

    @cached_property
    def transfer_session(self) -> IntArray:
        """Session id per transfer, aligned to *trace* order (lazy — most
        consumers only touch the per-session arrays)."""
        session_sorted = np.cumsum(self._boundary) - 1
        out = np.empty(len(self.trace), dtype=np.int64)
        out[self._order] = session_sorted
        return out

    @property
    def n_sessions(self) -> int:
        """Number of reconstructed sessions."""
        return int(self.session_start.size)

    def on_times(self) -> FloatArray:
        """Session ON times ``l(i)`` (Section 4.2)."""
        return self.session_end - self.session_start

    def off_times(self) -> FloatArray:
        """Session OFF times ``f(i)`` between a client's consecutive sessions.

        For consecutive sessions ``i, j`` of the same client the OFF time is
        ``start(j) - end(i)`` (the paper's ``t(j) - t(i) - l(i)``).  One
        value per session pair; clients with a single session contribute
        nothing.
        """
        if self.n_sessions < 2:
            return np.empty(0, dtype=np.float64)
        same_client = self.session_client[1:] == self.session_client[:-1]
        offs = self.session_start[1:] - self.session_end[:-1]
        return offs[same_client]

    def session_columns(self) -> tuple[IntArray, FloatArray, FloatArray,
                                       IntArray]:
        """The per-session ``(client, start, end, n_transfers)`` columns.

        Sessions appear in their canonical ``(client, start)`` order.  This
        is the comparison currency of the streaming pipeline: the online
        sessionizer (:class:`repro.stream.OnlineSessionizer`) must
        reproduce these four arrays bit for bit on any input, for any
        batching of the trace (see ``tests/property``).
        """
        return (self.session_client, self.session_start, self.session_end,
                self.transfers_per_session)

    def sessions_per_client(self) -> IntArray:
        """Session count per client index (length ``trace.n_clients``)."""
        return np.bincount(self.session_client,
                           minlength=self.trace.n_clients).astype(np.int64)

    def intra_session_interarrivals(self) -> FloatArray:
        """Interarrival times between consecutive transfer *starts* within
        each session (Section 4.5, Figure 14)."""
        diffs = np.diff(self._start_sorted)
        same_session = ~self._boundary[1:]
        return diffs[same_session]

    @cached_property
    def session_arrival_order(self) -> IntArray:
        """Indices sorting sessions by arrival time."""
        return np.argsort(self.session_start, kind="stable")

    def arrival_times(self) -> FloatArray:
        """Session arrival times sorted ascending (the client arrival
        process of Section 3.4)."""
        return self.session_start[self.session_arrival_order]

    def interarrival_times(self) -> FloatArray:
        """Interarrival times of consecutive session starts (Section 3.3)."""
        arrivals = self.arrival_times()
        if arrivals.size < 2:
            return np.empty(0, dtype=np.float64)
        return np.diff(arrivals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Sessions(n_sessions={self.n_sessions}, "
                f"timeout={self.timeout:.0f}s)")


def sessionize(trace: Trace,
               timeout: float = DEFAULT_SESSION_TIMEOUT) -> Sessions:
    """Reconstruct sessions under timeout ``T_o = timeout`` (Section 2.2).

    Parameters
    ----------
    trace:
        The (sanitized) trace.
    timeout:
        The silence threshold ``T_o`` in seconds; the paper settles on
        1,500 after the Figure 9 sweep.
    """
    if timeout <= 0:
        raise AnalysisError(f"timeout must be positive, got {timeout}")
    order, _, firsts = trace.client_grouping
    start, end = trace.client_sorted_spans
    gaps, run_max = _gaps_from_sorted(start, end.copy(), firsts)
    boundary = gaps > timeout  # first-of-client has gap = +inf
    return Sessions(trace, timeout, order, boundary,
                    _start_sorted=start, _run_max=run_max)


def session_count_for_timeouts(trace: Trace,
                               timeouts: np.ndarray) -> IntArray:
    """Number of sessions for each candidate timeout (Figure 9).

    Computed from the silence gaps in one pass over the trace, then one
    comparison per timeout.
    """
    gaps, _ = silence_gaps(trace)
    timeouts = np.asarray(timeouts, dtype=np.float64)
    if timeouts.ndim != 1 or timeouts.size == 0:
        raise AnalysisError("timeouts must be a non-empty one-dimensional array")
    if timeouts.min() <= 0:
        raise AnalysisError("timeouts must be positive")
    finite_gaps = gaps[np.isfinite(gaps)]
    n_first = int(np.sum(~np.isfinite(gaps)))
    # Sessions = first-of-client boundaries + gaps exceeding the timeout.
    sorted_gaps = np.sort(finite_gaps)
    exceeding = sorted_gaps.size - np.searchsorted(sorted_gaps, timeouts,
                                                   side="right")
    return (n_first + exceeding).astype(np.int64)
