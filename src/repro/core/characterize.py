"""Full-trace characterization: all three layers plus basic statistics.

:func:`characterize` is the top of the pipeline: sanitized trace in,
:class:`WorkloadCharacterization` out — everything the paper's Sections 3-5
measure, in one object, ready for reporting
(:mod:`repro.core.report`), model calibration (:mod:`repro.core.calibrate`),
and the per-figure experiments (:mod:`repro.experiments`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.store import Trace
from ..units import DAY, DEFAULT_SESSION_TIMEOUT
from .client_layer import ClientLayerCharacterization, characterize_client_layer
from .hierarchy import HierarchicalWorkload
from .session_layer import SessionLayerCharacterization, characterize_session_layer
from .sessionizer import Sessions
from .transfer_layer import (
    TransferLayerCharacterization,
    characterize_transfer_layer,
)


@dataclass(frozen=True)
class TraceSummary:
    """Basic trace statistics — the paper's Table 1.

    Attributes
    ----------
    days:
        Log period in days.
    n_objects:
        Distinct live objects (the paper: 2).
    n_ases:
        Distinct client autonomous systems (the paper: 1,010).
    n_ips:
        Distinct client IP addresses (the paper: 364,184).
    n_users:
        Distinct clients by player ID (the paper: 691,889).
    n_sessions:
        Sessions under the chosen timeout (the paper: > 1.5 million).
    n_transfers:
        Transfers (the paper: > 5.5 million).
    bytes_served:
        Total content served in bytes (the paper: > 8 TB).
    """

    days: float
    n_objects: int
    n_ases: int
    n_ips: int
    n_users: int
    n_sessions: int
    n_transfers: int
    bytes_served: float


@dataclass(frozen=True)
class WorkloadCharacterization:
    """The complete hierarchical characterization of one trace.

    Attributes
    ----------
    summary:
        Table 1 statistics.
    client:
        Section 3 (client layer) results.
    session:
        Section 4 (session layer) results.
    transfer:
        Section 5 (transfer layer) results.
    timeout:
        The session timeout used throughout.
    """

    summary: TraceSummary
    client: ClientLayerCharacterization
    session: SessionLayerCharacterization
    transfer: TransferLayerCharacterization
    timeout: float


def summarize_trace(trace: Trace, sessions: Sessions) -> TraceSummary:
    """Compute the Table 1 statistics of a trace."""
    active = np.unique(trace.client_index)
    clients = trace.clients
    active_ases = clients.as_numbers[active]
    active_ips = clients.ips[active]
    return TraceSummary(
        days=trace.extent / DAY,
        n_objects=trace.n_objects,
        n_ases=int(np.unique(active_ases[active_ases > 0]).size),
        n_ips=int(np.unique(active_ips).size),
        n_users=int(active.size),
        n_sessions=sessions.n_sessions,
        n_transfers=len(trace),
        bytes_served=trace.bytes_served(),
    )


def characterize(trace: Trace, *,
                 timeout: float = DEFAULT_SESSION_TIMEOUT
                 ) -> WorkloadCharacterization:
    """Characterize ``trace`` at all three layers.

    The trace should already be sanitized
    (:func:`repro.trace.sanitize.sanitize_trace`); spanning entries would
    otherwise distort every length and concurrency statistic.

    Parameters
    ----------
    trace:
        The sanitized trace.
    timeout:
        Session timeout ``T_o``.
    """
    workload = HierarchicalWorkload(trace, timeout)
    sessions = workload.sessions
    return WorkloadCharacterization(
        summary=summarize_trace(trace, sessions),
        client=characterize_client_layer(trace, sessions),
        session=characterize_session_layer(sessions),
        transfer=characterize_transfer_layer(trace),
        timeout=float(timeout),
    )
