"""Transfer-layer characterization (Section 5 of the paper).

Covers: the number of concurrent transfers (Figures 15, 16), transfer
interarrival times with their two-regime heavy tail (Figures 17, 18),
transfer lengths — client stickiness — with their lognormal fit
(Figure 19), and the bimodal transfer bandwidth (Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._typing import FloatArray
from ..analysis.concurrency import mean_concurrency_bins, sampled_concurrency
from ..analysis.timeseries import binned_mean_of_events, fold_series
from ..distributions.fitting import (
    TwoRegimeTailFit,
    fit_lognormal,
    fit_two_regime_tail,
)
from ..distributions.goodness import GoodnessOfFit, evaluate_fit
from ..distributions.lognormal import LognormalDistribution
from ..errors import FittingError
from ..trace.store import Trace
from ..units import DAY, FIFTEEN_MINUTES, MINUTE, WEEK, log_display_time

#: Bandwidths below this many bits/second count as congestion bound — well
#: under the slowest access tier once protocol efficiency is accounted for.
CONGESTION_BOUND_THRESHOLD_BPS = 24_000.0


@dataclass(frozen=True)
class TransferLayerCharacterization:
    """All transfer-layer measurements and fits.

    Attributes
    ----------
    concurrency_samples, concurrency_step:
        Concurrent-transfer counts sampled on a regular grid (Figure 15).
    concurrency_bins, weekly_fold, daily_fold:
        Mean concurrent transfers per 15-minute bin and its periodic folds
        (Figure 16).
    interarrivals:
        Transfer interarrival times ``a(j)`` across all clients
        (Figure 17).
    interarrival_tail:
        Two-regime tail fit of the interarrivals (the paper: index ~2.8 up
        to ~100 s, ~1 beyond).
    interarrival_bins, interarrival_weekly, interarrival_daily:
        Mean interarrival per 15-minute bin and folds (Figure 18).
    lengths:
        Transfer lengths ``l(j)`` (Figure 19).
    length_fit:
        Lognormal fit (the paper: mu 4.383921, sigma 1.427247).
    length_gof:
        KS goodness of the length fit.
    bandwidths:
        Per-transfer average bandwidth in bits/second (Figure 20).
    congestion_bound_fraction:
        Fraction of transfers below
        :data:`CONGESTION_BOUND_THRESHOLD_BPS` (the paper: ~10%).
    """

    concurrency_samples: FloatArray = field(repr=False)
    concurrency_step: float = field(repr=False, default=MINUTE)
    concurrency_bins: FloatArray = field(repr=False, default=None)
    weekly_fold: FloatArray = field(repr=False, default=None)
    daily_fold: FloatArray = field(repr=False, default=None)
    interarrivals: FloatArray = field(repr=False, default=None)
    interarrival_tail: TwoRegimeTailFit | None = None
    interarrival_bins: FloatArray = field(repr=False, default=None)
    interarrival_weekly: FloatArray = field(repr=False, default=None)
    interarrival_daily: FloatArray = field(repr=False, default=None)
    lengths: FloatArray = field(repr=False, default=None)
    length_fit: LognormalDistribution = None
    length_gof: GoodnessOfFit = None
    bandwidths: FloatArray = field(repr=False, default=None)
    congestion_bound_fraction: float = 0.0


def characterize_transfer_layer(trace: Trace, *,
                                concurrency_step: float = MINUTE,
                                bin_width: float = FIFTEEN_MINUTES,
                                tail_breakpoint: float = 100.0
                                ) -> TransferLayerCharacterization:
    """Run the full Section 5 characterization over a trace.

    Parameters
    ----------
    trace:
        The sanitized trace (transfers sorted by start time).
    concurrency_step:
        Sampling period of the concurrent-transfer samples.
    bin_width:
        Aggregation bin for the temporal profiles (the paper: 15 minutes).
    tail_breakpoint:
        Crossover point separating the two interarrival tail regimes
        (the paper reads 100 s off Figure 17).
    """
    extent = trace.extent
    starts = trace.start
    ends = np.minimum(trace.end, extent)

    samples = sampled_concurrency(starts, ends, extent=extent,
                                  step=concurrency_step)
    bins = mean_concurrency_bins(starts, ends, extent=extent,
                                 bin_width=bin_width)
    weekly = fold_series(bins, bin_width=bin_width, period=WEEK)
    daily = fold_series(bins, bin_width=bin_width, period=DAY)

    interarrivals = np.diff(starts) if starts.size >= 2 else np.empty(0)
    tail = None
    if interarrivals.size >= 100:
        display = log_display_time(interarrivals)
        try:
            tail = fit_two_regime_tail(display, breakpoint=tail_breakpoint)
        except FittingError:
            # No observations beyond the breakpoint: the trace's rate never
            # dropped low enough to produce a far-tail regime.
            tail = None

    if interarrivals.size:
        ia_bins = binned_mean_of_events(
            starts[1:], interarrivals, extent=extent, bin_width=bin_width)
        ia_weekly = fold_series(ia_bins, bin_width=bin_width, period=WEEK)
        ia_daily = fold_series(ia_bins, bin_width=bin_width, period=DAY)
    else:
        ia_bins = ia_weekly = ia_daily = np.empty(0)

    lengths = trace.duration
    length_display = log_display_time(lengths)
    length_fit = fit_lognormal(length_display)
    length_gof = evaluate_fit(length_display, length_fit)

    bandwidths = trace.bandwidth_bps
    served = bandwidths[bandwidths > 0]
    congestion_fraction = (float(np.mean(
        served < CONGESTION_BOUND_THRESHOLD_BPS)) if served.size else 0.0)

    return TransferLayerCharacterization(
        concurrency_samples=samples,
        concurrency_step=concurrency_step,
        concurrency_bins=bins,
        weekly_fold=weekly,
        daily_fold=daily,
        interarrivals=interarrivals,
        interarrival_tail=tail,
        interarrival_bins=ia_bins,
        interarrival_weekly=ia_weekly,
        interarrival_daily=ia_daily,
        lengths=lengths,
        length_fit=length_fit,
        length_gof=length_gof,
        bandwidths=bandwidths,
        congestion_bound_fraction=congestion_fraction,
    )
