"""Mutation self-check: prove the statistical gates have teeth.

A conformance harness that never fails is indistinguishable from one
that never looks.  The self-check perturbs exactly one Table 2 model
parameter (by default ``gap_log_mu`` by +2%), regenerates the canonical
``medium`` workload from the perturbed model, and evaluates the
*statistical* gates against the golden registry.  The perturbation must
be **caught** — at least one ``param:``/``envelope:``/``distance:`` gate
must fail.  Hash gates do not count: a perturbed stream trivially flips
the content hashes, and the whole point is that the statistical gates
would catch a drift even across a legitimate hash re-pin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from ..errors import ConfigError
from .fingerprint import measure_workload
from .gates import GateRecord, evaluate_gates, statistical_failures
from .matrix import MUTATION_WORKLOAD, workload_spec

#: Default perturbation: the ISSUE's example (gap_log_mu by 2%).
DEFAULT_PARAMETER = "gap_log_mu"
DEFAULT_RELATIVE_DELTA = 0.02


@dataclass(frozen=True)
class MutationReport:
    """Outcome of one mutation self-check."""

    workload: str
    parameter: str
    relative_delta: float
    original: float
    perturbed: float
    caught: bool
    failing_gates: tuple[GateRecord, ...]

    def summary(self) -> str:
        """One-line verdict with the perturbation and the failing gates."""
        verdict = "CAUGHT" if self.caught else "MISSED"
        gates = ", ".join(r.gate for r in self.failing_gates) or "none"
        return (f"mutation {self.parameter} "
                f"{self.original:.5f} -> {self.perturbed:.5f} "
                f"({self.relative_delta * 100:+.1f}%) on "
                f"{self.workload}: {verdict} (failing gates: {gates})")


def mutation_self_check(registry: dict, *,
                        workload: str = MUTATION_WORKLOAD,
                        parameter: str = DEFAULT_PARAMETER,
                        relative_delta: float = DEFAULT_RELATIVE_DELTA,
                        n_boot: int = 0) -> MutationReport:
    """Perturb one model parameter and assert the gates notice.

    Parameters
    ----------
    registry:
        The loaded golden registry (gates are evaluated against it).
    workload:
        Canonical workload to perturb; must be pinned in the registry.
    parameter:
        ``LiveWorkloadModel`` scalar attribute to perturb.
    relative_delta:
        Relative perturbation (0.02 = +2%).
    n_boot:
        Bootstrap replicates for the perturbed measurement (the gates
        use registry tolerances, so 0 keeps the check fast).
    """
    spec = workload_spec(workload)
    entry = registry["workloads"].get(workload)
    if entry is None:
        raise ConfigError(
            f"workload {workload!r} is not pinned in the golden registry; "
            "run `make conform-update` first")
    model = spec.model()
    original = getattr(model, parameter, None)
    if not isinstance(original, float):
        raise ConfigError(
            f"{parameter!r} is not a scalar model parameter")
    perturbed_value = original * (1.0 + relative_delta)
    perturbed_model = dc_replace(model, **{parameter: perturbed_value})

    measurement = measure_workload(spec, model=perturbed_model,
                                   n_boot=n_boot)
    records = evaluate_gates(measurement, entry)
    failing = tuple(statistical_failures(records))
    return MutationReport(
        workload=workload,
        parameter=parameter,
        relative_delta=relative_delta,
        original=original,
        perturbed=perturbed_value,
        caught=bool(failing),
        failing_gates=failing,
    )
