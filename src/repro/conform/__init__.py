"""``repro.conform``: statistical conformance gates + differential oracle.

The correctness backstop for every performance PR.  The repo's three
generation/characterization pipelines (batch ``repro.core``, sharded
``repro.parallel``, streaming ``repro.stream``) promise bit-identical
artifacts, and the Table 2 model promises calibrated parameters near the
paper's published values; this subsystem turns both promises into
machine-checked gates:

* :mod:`repro.conform.matrix` — the canonical workload matrix
  (small / medium / paper scale, fixed seeds).
* :mod:`repro.conform.fingerprint` — content hashes + calibrated
  parameter vectors with bootstrap confidence half-widths.
* :mod:`repro.conform.registry` — the committed ``golden.json``
  (fingerprints *and* tolerances; regenerate via ``make conform-update``).
* :mod:`repro.conform.gates` — hash, parameter-drift, paper-envelope and
  KS/Anderson-Darling distance gates.
* :mod:`repro.conform.oracle` — the cross-pipeline differential oracle
  (core vs parallel vs stream, incl. a mid-run checkpoint/resume split).
* :mod:`repro.conform.mutation` — the self-check proving a 2% parameter
  perturbation is caught.
* :mod:`repro.conform.scenarios` — per-scenario golden envelopes and the
  two-sided sensitivity gates (every registered scenario must be
  statistically distinguishable from baseline *and* reproduce its own
  pinned envelope), plus the inert-scenario self-check.
* :mod:`repro.conform.runner` — one-call orchestration +
  ``CONFORMANCE.json`` emission (the ``repro conform`` CLI verb).

See ``tests/conform/`` for the pytest face (``conform`` marker,
``--conform-scale`` option) and ``docs/API.md`` for usage.
"""

from .fingerprint import (
    GATED_DISTANCES,
    GATED_PARAMETERS,
    WorkloadMeasurement,
    measure_workload,
)
from .gates import (
    PAPER_REFERENCES,
    GateRecord,
    derive_tolerances,
    evaluate_gates,
    statistical_failures,
)
from .matrix import (
    CANONICAL_MATRIX,
    MUTATION_WORKLOAD,
    SCALES,
    WorkloadSpec,
    scale_specs,
    workload_spec,
)
from .mutation import MutationReport, mutation_self_check
from .oracle import OracleComparison, OracleReport, run_differential_oracle
from .registry import (
    REGISTRY_PATH,
    load_registry,
    registry_entry,
    save_registry,
    serialize_registry,
    updated_registry,
)
from .runner import (
    ConformanceResult,
    conformance_document,
    render_failures,
    render_summary,
    run_conformance,
)
from .scenarios import (
    ORACLE_SCENARIOS,
    SCENARIO_WORKLOAD,
    SENSITIVITY_SCENARIOS,
    InertScenarioReport,
    inert_scenario_self_check,
    measure_scenario,
    scenario_gates,
    scenario_key,
    scenario_registry_entry,
)

__all__ = [
    "CANONICAL_MATRIX",
    "ConformanceResult",
    "GATED_DISTANCES",
    "GATED_PARAMETERS",
    "GateRecord",
    "InertScenarioReport",
    "MUTATION_WORKLOAD",
    "MutationReport",
    "ORACLE_SCENARIOS",
    "OracleComparison",
    "OracleReport",
    "PAPER_REFERENCES",
    "REGISTRY_PATH",
    "SCALES",
    "SCENARIO_WORKLOAD",
    "SENSITIVITY_SCENARIOS",
    "WorkloadMeasurement",
    "WorkloadSpec",
    "conformance_document",
    "derive_tolerances",
    "evaluate_gates",
    "inert_scenario_self_check",
    "load_registry",
    "measure_scenario",
    "measure_workload",
    "mutation_self_check",
    "registry_entry",
    "render_failures",
    "render_summary",
    "run_conformance",
    "run_differential_oracle",
    "save_registry",
    "scale_specs",
    "scenario_gates",
    "scenario_key",
    "scenario_registry_entry",
    "serialize_registry",
    "statistical_failures",
    "updated_registry",
    "workload_spec",
]
