"""The golden-fingerprint registry (committed ``golden.json``).

Schema (version 1)::

    {
      "version": 1,
      "workloads": {
        "<name>": {
          "spec":   {...},                  # echo of the WorkloadSpec
          "hashes": {"trace": ..., "sessions": ..., "log": ...},
          "counts": {"n_transfers": ..., "n_sessions": ...},
          "parameters": {
            "<param>": {"value": ..., "ci_halfwidth": ..., "tol": ...,
                        "paper_reference": ..., "paper_tol": ...}},
          "distances": {"<name>": {"value": ..., "max": ...}}
        }
      },
      "scenarios": {                        # optional (scenario envelopes)
        "<workload>@<scenario>": {
          "workload": "<workload>",
          "scenario": "<canonical scenario spec>",
          "hashes": {...}, "counts": {...},
          "parameters": {...}, "distances": {...},
          "distinguishers": ["param:...", ...]   # gates tripped vs baseline
        }
      }
    }

Tolerances live *here*, not in test code: a test that wants to know how
much ``gap_log_mu`` may drift asks the registry.  ``make conform-update``
regenerates the file deterministically (fixed seeds, seeded bootstrap,
canonical JSON serialization), so a legitimate re-pin is a one-command,
reviewable diff.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigError
from .fingerprint import WorkloadMeasurement
from .gates import derive_tolerances
from .matrix import workload_spec

#: The committed registry file, shipped inside the package.
REGISTRY_PATH = Path(__file__).with_name("golden.json")

#: Current schema version.
REGISTRY_VERSION = 1


def registry_entry(measurement: WorkloadMeasurement) -> dict:
    """Build one workload's registry block from a fresh measurement."""
    tolerances = derive_tolerances(measurement)
    return {
        "spec": measurement.spec.to_dict(),
        "hashes": {
            "trace": measurement.trace_sha256,
            "sessions": measurement.sessions_sha256,
            "log": measurement.log_sha256,
        },
        "counts": {
            "n_transfers": measurement.n_transfers,
            "n_sessions": measurement.n_sessions,
        },
        "parameters": tolerances["parameters"],
        "distances": tolerances["distances"],
    }


def serialize_registry(registry: dict) -> str:
    """Canonical JSON text for ``registry`` (stable across runs)."""
    return json.dumps(registry, indent=2, sort_keys=True) + "\n"


def save_registry(registry: dict, path: str | Path = REGISTRY_PATH) -> None:
    """Write ``registry`` to ``path`` in canonical form."""
    Path(path).write_text(serialize_registry(registry), encoding="ascii")


def load_registry(path: str | Path = REGISTRY_PATH) -> dict:
    """Load and structurally validate the golden registry."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(
            f"golden registry {path} is missing; regenerate it with "
            "`make conform-update`")
    registry = json.loads(path.read_text(encoding="ascii"))
    if registry.get("version") != REGISTRY_VERSION:
        raise ConfigError(
            f"golden registry {path} has version "
            f"{registry.get('version')!r}, expected {REGISTRY_VERSION}")
    if "workloads" not in registry or not isinstance(
            registry["workloads"], dict):
        raise ConfigError(f"golden registry {path} has no workload table")
    for name, entry in registry["workloads"].items():
        spec = workload_spec(name)  # raises on unknown workloads
        if entry.get("spec") != spec.to_dict():
            raise ConfigError(
                f"golden registry entry {name!r} was pinned for a "
                f"different spec {entry.get('spec')!r}; the canonical "
                f"matrix now says {spec.to_dict()!r} — regenerate with "
                "`make conform-update`")
        for key in ("hashes", "counts", "parameters", "distances"):
            if key not in entry:
                raise ConfigError(
                    f"golden registry entry {name!r} lacks {key!r}; "
                    "regenerate with `make conform-update`")
    # Deferred import: scenario validation needs repro.scenarios, which
    # some registry consumers (plain load/update paths) never touch.
    from .scenarios import validate_scenario_table
    validate_scenario_table(registry, path)
    return registry


def updated_registry(measurements: list[WorkloadMeasurement],
                     base: dict | None = None,
                     scenario_entries: dict | None = None) -> dict:
    """A registry with ``measurements`` (re-)pinned.

    Entries of workloads not re-measured are carried over from ``base``,
    so updating at smoke scale does not discard the paper-scale pin.
    ``scenario_entries`` maps scenario keys
    (``<workload>@<scenario>``) to blocks built by
    :func:`repro.conform.scenarios.scenario_registry_entry`; keys not
    re-pinned carry over from ``base`` the same way.
    """
    workloads = dict((base or {}).get("workloads", {}))
    for measurement in measurements:
        workloads[measurement.spec.name] = registry_entry(measurement)
    scenarios = dict((base or {}).get("scenarios", {}))
    scenarios.update(scenario_entries or {})
    registry = {"version": REGISTRY_VERSION,
                "workloads": dict(sorted(workloads.items()))}
    if scenarios:
        registry["scenarios"] = dict(sorted(scenarios.items()))
    return registry
