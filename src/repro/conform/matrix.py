"""The canonical workload matrix conformance runs against.

Every conformance artifact — golden fingerprints, statistical gates, the
differential oracle, the mutation self-check — is anchored to a small,
fixed matrix of fully specified generation requests.  A workload here is
a *request*, not data: ``(Table 2 model, days, seed)``.  Because the
generators are deterministic, each spec names exactly one trace, one
sessionization, and one WMS log, which is what makes content-hash
golden fingerprints meaningful.

Two scales:

* ``smoke`` — the ``small`` and ``medium`` workloads; seconds of work,
  runs in every tier-1 ``pytest`` invocation.
* ``paper`` — adds the ``paper`` workload: 28 days at the trace's
  session rate over 50 k clients (~2.4 M transfers), the scale at which
  the statistical gates are held against the paper's Table 2 values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import LiveWorkloadModel
from ..errors import ConfigError

#: Scales accepted by ``repro conform --scale`` / ``--conform-scale``.
SCALES: tuple[str, ...] = ("smoke", "paper")


@dataclass(frozen=True)
class WorkloadSpec:
    """One canonical generation request.

    Attributes
    ----------
    name:
        Registry key (``small`` / ``medium`` / ``paper``).
    mean_session_rate:
        Time-averaged session arrival rate per second.
    n_clients:
        Client population size.
    days:
        Observation-window length.
    seed:
        The request seed; part of the workload's identity.
    """

    name: str
    mean_session_rate: float
    n_clients: int
    days: float
    seed: int

    def model(self) -> LiveWorkloadModel:
        """The Table 2 model this spec generates from."""
        return LiveWorkloadModel.paper_defaults(
            mean_session_rate=self.mean_session_rate,
            n_clients=self.n_clients)

    def to_dict(self) -> dict:
        """JSON-ready form, stored in the registry for staleness checks."""
        return {
            "name": self.name,
            "mean_session_rate": self.mean_session_rate,
            "n_clients": self.n_clients,
            "days": self.days,
            "seed": self.seed,
        }


#: The matrix itself.  Seeds are arbitrary but frozen: changing any field
#: changes the workload's identity and therefore every golden fingerprint.
CANONICAL_MATRIX: tuple[WorkloadSpec, ...] = (
    WorkloadSpec("small", mean_session_rate=0.01, n_clients=300,
                 days=1.0, seed=1107),
    WorkloadSpec("medium", mean_session_rate=0.05, n_clients=2_000,
                 days=3.0, seed=2202),
    WorkloadSpec("paper", mean_session_rate=0.62, n_clients=50_000,
                 days=28.0, seed=2002),
)

#: Workloads exercised per scale.
SCALE_WORKLOADS: dict[str, tuple[str, ...]] = {
    "smoke": ("small", "medium"),
    "paper": ("small", "medium", "paper"),
}

#: The workload the mutation self-check perturbs: large enough that a 2%
#: parameter shift clears the bootstrap tolerance, small enough to run in
#: every suite.
MUTATION_WORKLOAD = "medium"


def workload_spec(name: str) -> WorkloadSpec:
    """Look up a canonical workload by name."""
    for spec in CANONICAL_MATRIX:
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in CANONICAL_MATRIX)
    raise ConfigError(f"unknown canonical workload {name!r} (have: {known})")


def scale_specs(scale: str) -> tuple[WorkloadSpec, ...]:
    """The workload specs exercised at ``scale``."""
    if scale not in SCALE_WORKLOADS:
        raise ConfigError(
            f"unknown conformance scale {scale!r} (have: {', '.join(SCALES)})")
    return tuple(workload_spec(name) for name in SCALE_WORKLOADS[scale])
