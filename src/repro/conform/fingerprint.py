"""Workload fingerprints: content hashes + measured Table 2 parameters.

A fingerprint pins a canonical workload down twice over:

* **Content hashes** — SHA-256 over a canonical byte serialization of the
  trace columns, the session columns, and the WMS log text.  Any change
  to the generator's output stream — intended or not — flips these.
* **Statistical measurement** — the calibrated Table 2 parameter vector
  (re-fitted from the generated trace exactly the way
  :func:`repro.core.calibrate.calibrate_model` fits a real log), each
  with a bootstrap confidence half-width, plus KS / Anderson-Darling
  distances of the raw marginals against the *model laws the workload
  was generated from*.  These survive legitimate RNG-stream refactors
  (where the hashes are expected to move and ``make conform-update``
  re-pins them) and are the gates that keep a re-pin honest.

Bootstrap half-widths use resamples capped at :data:`BOOT_CAP` points
with a ``sqrt(m/n)`` correction — all gated statistics are
root-n-consistent, so the subsampled interval rescales exactly, and the
paper-scale workload (~2.4 M transfers) fingerprints in seconds.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass

import numpy as np

from ..core.calibrate import calibrate_model
from ..core.gismo import GismoWorkload, LiveWorkloadGenerator
from ..core.model import LiveWorkloadModel
from ..core.sessionizer import Sessions, sessionize
from ..distributions.fitting import fit_lognormal, fit_zipf_pmf, fit_zipf_rank
from ..distributions.goodness import anderson_darling_distance, ks_distance
from ..rng import make_rng
from ..trace.store import Trace
from ..trace.wms_log import write_wms_log
from ..units import log_display_time
from .matrix import WorkloadSpec

#: Bootstrap replicates used for parameter confidence half-widths.
DEFAULT_N_BOOT = 200

#: Per-replicate resample cap (with sqrt(m/n) width correction).
BOOT_CAP = 50_000

#: The gated parameter names, in registry order.
GATED_PARAMETERS: tuple[str, ...] = (
    "interest_alpha",
    "transfers_alpha",
    "gap_log_mu",
    "gap_log_sigma",
    "length_log_mu",
    "length_log_sigma",
    "session_on_log_mu",
    "session_on_log_sigma",
)

#: The gated distributional distances, in registry order.
GATED_DISTANCES: tuple[str, ...] = (
    "length_ks",
    "length_ad",
    "gap_ks",
)


def hash_arrays(arrays: tuple[np.ndarray, ...]) -> str:
    """SHA-256 over a canonical serialization of ``arrays``.

    Each array contributes its dtype string, its shape, and its
    C-contiguous bytes, so the digest is invariant to memory layout but
    sensitive to every value, every dtype, and the column order.
    """
    digest = hashlib.sha256()
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        digest.update(str(a.dtype).encode("ascii"))
        digest.update(str(a.shape).encode("ascii"))
        digest.update(a.tobytes())
    return digest.hexdigest()


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace's transfer table (+ extent)."""
    return hash_arrays((
        trace.client_index,
        trace.object_id,
        trace.start,
        trace.duration,
        trace.bandwidth_bps,
        np.asarray([trace.extent], dtype=np.float64),
    ))


def sessions_fingerprint(client_index: np.ndarray, start: np.ndarray,
                         end: np.ndarray, n_transfers: np.ndarray) -> str:
    """Content hash of the canonical ``(client, start, end, count)`` columns."""
    return hash_arrays((
        np.asarray(client_index, dtype=np.int64),
        np.asarray(start, dtype=np.float64),
        np.asarray(end, dtype=np.float64),
        np.asarray(n_transfers, dtype=np.int64),
    ))


def log_fingerprint_from_trace(trace: Trace) -> str:
    """Content hash of the WMS log the batch writer produces for ``trace``."""
    buffer = io.StringIO()
    write_wms_log(trace, buffer)
    return hashlib.sha256(buffer.getvalue().encode("ascii")).hexdigest()


def file_fingerprint(path) -> str:
    """SHA-256 of a file's raw bytes (streamed log output)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Everything measured about one canonical workload.

    Attributes
    ----------
    spec:
        The canonical request measured.
    trace_sha256, sessions_sha256, log_sha256:
        Content hashes (bit-identity currency).
    n_transfers, n_sessions:
        Artifact sizes (cheap first-line diff when a hash moves).
    parameters:
        Calibrated Table 2 parameter vector (:data:`GATED_PARAMETERS`).
    ci_halfwidth:
        Bootstrap 95% confidence half-width per parameter.
    distances:
        KS / Anderson-Darling distances of the raw marginals against the
        generating model's laws (:data:`GATED_DISTANCES`).
    """

    spec: WorkloadSpec
    trace_sha256: str
    sessions_sha256: str
    log_sha256: str
    n_transfers: int
    n_sessions: int
    parameters: dict[str, float]
    ci_halfwidth: dict[str, float]
    distances: dict[str, float]


def _bootstrap_halfwidth(rng: np.random.Generator, sample: np.ndarray,
                         statistic, n_boot: int) -> tuple[float, ...]:
    """95% percentile-bootstrap half-widths of ``statistic(sample)``.

    ``statistic`` maps a resample to a tuple of floats; the return value
    has one half-width per component.  Resamples are capped at
    :data:`BOOT_CAP` draws and the interval is rescaled by ``sqrt(m/n)``.
    """
    n = sample.size
    m = min(n, BOOT_CAP)
    scale = float(np.sqrt(m / n))
    replicates = np.empty((n_boot, len(statistic(sample))), dtype=np.float64)
    for b in range(n_boot):
        resample = sample[rng.integers(0, n, size=m)]
        replicates[b] = statistic(resample)
    lo = np.percentile(replicates, 2.5, axis=0)
    hi = np.percentile(replicates, 97.5, axis=0)
    return tuple(float(h) * scale for h in (hi - lo) / 2.0)


def _safe_zipf_pmf_alpha(values: np.ndarray) -> float:
    """Zipf PMF exponent of a resample, NaN when the resample degenerates."""
    if np.unique(values).size < 2:
        return float("nan")
    return fit_zipf_pmf(values).alpha


def measure_workload(spec: WorkloadSpec, *,
                     model: LiveWorkloadModel | None = None,
                     n_boot: int = DEFAULT_N_BOOT,
                     workload: GismoWorkload | None = None
                     ) -> WorkloadMeasurement:
    """Generate ``spec``'s workload (batch path) and fingerprint it.

    Parameters
    ----------
    spec:
        The canonical request.  Distances are always computed against
        *this spec's* model laws, so a perturbed generation (see
        ``model``) is measured against the canonical yardstick.
    model:
        Generate from this model instead of ``spec.model()`` — the
        mutation self-check's hook.  Hashes and statistics then describe
        the perturbed workload.
    n_boot:
        Bootstrap replicates (0 disables; half-widths become 0.0).
    workload:
        Reuse an already generated workload (the differential oracle
        shares its reference generation with the fingerprint pass).
    """
    canonical_model = spec.model()
    generation_model = canonical_model if model is None else model
    if workload is None:
        workload = LiveWorkloadGenerator(generation_model).generate(
            spec.days, seed=spec.seed)
    trace = workload.trace
    sessions: Sessions = sessionize(trace)
    calibration = calibrate_model(trace, sessions=sessions,
                                  include_bandwidth=False)

    parameters = {
        "interest_alpha": float(calibration.interest_fit.alpha),
        "transfers_alpha": float(calibration.transfers_fit.alpha),
        "gap_log_mu": float(calibration.gap_fit.mu),
        "gap_log_sigma": float(calibration.gap_fit.sigma),
        "length_log_mu": float(calibration.length_fit.mu),
        "length_log_sigma": float(calibration.length_fit.sigma),
        "session_on_log_mu": float(calibration.session_on_fit.mu),
        "session_on_log_sigma": float(calibration.session_on_fit.sigma),
    }

    lengths = log_display_time(trace.duration)
    gaps = log_display_time(
        np.maximum(sessions.intra_session_interarrivals(), 0.0))
    on_times = log_display_time(sessions.on_times())
    tps = sessions.transfers_per_session
    per_client = sessions.sessions_per_client()
    interest_counts = per_client[per_client > 0]

    ci = {name: 0.0 for name in GATED_PARAMETERS}
    if n_boot:
        # One independent, spec-seeded stream per measurement run keeps
        # the half-widths (and therefore golden.json) reproducible.
        rng = make_rng(np.random.SeedSequence(
            entropy=(0xC04F0041, spec.seed)))

        def lognormal_stat(resample):
            fit = fit_lognormal(resample)
            return (fit.mu, fit.sigma)

        ci["length_log_mu"], ci["length_log_sigma"] = _bootstrap_halfwidth(
            rng, lengths, lognormal_stat, n_boot)
        ci["gap_log_mu"], ci["gap_log_sigma"] = _bootstrap_halfwidth(
            rng, gaps, lognormal_stat, n_boot)
        ci["session_on_log_mu"], ci["session_on_log_sigma"] = (
            _bootstrap_halfwidth(rng, on_times, lognormal_stat, n_boot))
        (alpha_hw,) = _bootstrap_halfwidth(
            rng, tps.astype(np.float64),
            lambda r: (_safe_zipf_pmf_alpha(r),), n_boot)
        ci["transfers_alpha"] = alpha_hw
        (interest_hw,) = _bootstrap_halfwidth(
            rng, interest_counts.astype(np.float64),
            lambda r: (fit_zipf_rank(r).alpha,), n_boot)
        ci["interest_alpha"] = interest_hw

    distances = {
        "length_ks": ks_distance(trace.duration,
                                 canonical_model.length_law()),
        "length_ad": anderson_darling_distance(
            trace.duration, canonical_model.length_law()),
        "gap_ks": ks_distance(
            sessions.intra_session_interarrivals(),
            canonical_model.gap_law()),
    }

    client, start, end, count = sessions.session_columns()
    return WorkloadMeasurement(
        spec=spec,
        trace_sha256=trace_fingerprint(trace),
        sessions_sha256=sessions_fingerprint(client, start, end, count),
        log_sha256=log_fingerprint_from_trace(trace),
        n_transfers=int(trace.n_transfers),
        n_sessions=int(sessions.n_sessions),
        parameters=parameters,
        ci_halfwidth=ci,
        distances={k: float(v) for k, v in distances.items()},
    )
