"""Cross-pipeline differential oracle.

The repo carries three ways to produce the same workload — the batch
engine (``repro.core``), the sharded engine (``repro.parallel``), and
the bounded-memory streaming pipeline (``repro.stream``) — all bound by
one determinism contract: *for a fixed (model, days, seed) every path
yields bit-identical artifacts*.  The oracle enforces the contract by
actually running the matrix:

* ``parallel[shards=s,jobs=j]`` for several shard/job counts must equal
  the batch trace column for column (plus the session attribution);
* ``stream[chunk=c]`` for several chunk sizes must write byte-identical
  WMS logs and finalize bit-identical session columns;
* ``stream[resume@k]`` runs the streaming pipeline up to a mid-run
  checkpoint, abandons it, resumes from the checkpoint file, and the
  stitched artifacts must *still* be byte-identical;
* ``binary[...]`` re-runs the streaming pipeline with the columnar
  binary codec (:mod:`repro.trace.codecs`) and proves it interchangeable
  with the text log three ways: the decoded :class:`~repro.trace.Trace`
  is bit-identical to the parsed text log (client table included), the
  binary entry stream re-formatted through the text formatter reproduces
  the text log's data lines byte for byte, and a mid-run kill/resume
  yields a byte-identical binary file.

Each comparison is recorded individually, so a violation names the
exact configuration and the first diverging column/byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.gismo import GismoWorkload, LiveWorkloadGenerator
from ..core.sessionizer import sessionize
from ..parallel import generate_sharded
from ..stream import GenerationStream, run_streaming_generation
from ..trace.codecs import BinaryTraceReader, format_quantized_entry, read_binary_trace
from ..trace.wms_log import read_wms_log, write_wms_log
from .matrix import WorkloadSpec

#: Default differential matrix (smoke scale).
DEFAULT_SHARD_CONFIGS: tuple[tuple[int, int], ...] = ((2, 1), (5, 2))
DEFAULT_CHUNK_SIZES: tuple[int, ...] = (7, 1009)

#: Fraction of the canonical blocks executed before the mid-run
#: checkpoint/resume split.
RESUME_SPLIT_FRACTION = 1 / 3


@dataclass(frozen=True)
class OracleComparison:
    """One artifact comparison between two pipeline paths."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class OracleReport:
    """All differential comparisons for one canonical workload."""

    workload: str
    comparisons: tuple[OracleComparison, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.comparisons)

    def failures(self) -> tuple[OracleComparison, ...]:
        """The comparisons that found a divergence."""
        return tuple(c for c in self.comparisons if not c.passed)


def _compare_trace(name: str, reference: GismoWorkload,
                   candidate: GismoWorkload) -> OracleComparison:
    """Bit-compare two workloads' traces and session attributions."""
    ref, cand = reference.trace, candidate.trace
    columns = (
        ("client_index", ref.client_index, cand.client_index),
        ("object_id", ref.object_id, cand.object_id),
        ("start", ref.start, cand.start),
        ("duration", ref.duration, cand.duration),
        ("bandwidth_bps", ref.bandwidth_bps, cand.bandwidth_bps),
        ("transfer_session", reference.transfer_session,
         candidate.transfer_session),
    )
    for column, a, b in columns:
        if a.shape != b.shape:
            return OracleComparison(
                name, False,
                f"{column}: shape {b.shape} != reference {a.shape}")
        if a.dtype != b.dtype:
            return OracleComparison(
                name, False,
                f"{column}: dtype {b.dtype} != reference {a.dtype}")
        if not np.array_equal(a, b):
            i = int(np.flatnonzero(a != b)[0])
            return OracleComparison(
                name, False,
                f"{column}[{i}]: {b[i]!r} != reference {a[i]!r}")
    if ref.extent != cand.extent:
        return OracleComparison(
            name, False, f"extent: {cand.extent} != reference {ref.extent}")
    return OracleComparison(
        name, True, f"{ref.n_transfers} transfers bit-identical")


def _compare_files(name: str, reference: Path,
                   candidate: Path) -> OracleComparison:
    """Byte-compare two files, reporting the first diverging line."""
    ref_bytes = reference.read_bytes()
    cand_bytes = candidate.read_bytes()
    if ref_bytes == cand_bytes:
        return OracleComparison(
            name, True, f"{len(ref_bytes)} bytes byte-identical")
    limit = min(len(ref_bytes), len(cand_bytes))
    view_a = np.frombuffer(ref_bytes, dtype=np.uint8, count=limit)
    view_b = np.frombuffer(cand_bytes, dtype=np.uint8, count=limit)
    diffs = np.flatnonzero(view_a != view_b)
    offset = int(diffs[0]) if diffs.size else limit
    line = ref_bytes[:offset].count(b"\n") + 1
    return OracleComparison(
        name, False,
        f"first divergence at byte {offset} (line {line}); sizes "
        f"{len(cand_bytes)} vs reference {len(ref_bytes)}")


def _compare_sessions(name: str, reference, candidate) -> OracleComparison:
    """Bit-compare ``(client, start, end, count)`` session columns."""
    labels = ("client_index", "start", "end", "n_transfers")
    for label, a, b in zip(labels, reference, candidate, strict=True):
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            return OracleComparison(
                name, False,
                f"sessions.{label}: shape {b.shape} != reference {a.shape}")
        if not np.array_equal(a, b):
            i = int(np.flatnonzero(a != b)[0])
            return OracleComparison(
                name, False,
                f"sessions.{label}[{i}]: {b[i]!r} != reference {a[i]!r}")
    return OracleComparison(
        name, True,
        f"{np.asarray(reference[0]).size} sessions bit-identical")


def _compare_decoded(name: str, reference, candidate) -> OracleComparison:
    """Bit-compare two fully decoded traces, client tables included.

    Unlike :func:`_compare_trace` (generator output), this covers every
    persisted column — the quantized loss/cpu/status fields and the
    client identity strings — because codec interchangeability is a
    claim about the *decoded artifact*, not just the generator state.
    """
    columns = [(column, getattr(reference, column), getattr(candidate, column))
               for column in ("client_index", "object_id", "start",
                              "duration", "bandwidth_bps", "packet_loss",
                              "server_cpu", "status")]
    columns += [(f"clients.{column}",
                 getattr(reference.clients, column),
                 getattr(candidate.clients, column))
                for column in ("player_ids", "ips", "os_names")]
    for column, a, b in columns:
        if a.shape != b.shape:
            return OracleComparison(
                name, False,
                f"{column}: shape {b.shape} != reference {a.shape}")
        if not np.array_equal(a, b):
            i = int(np.flatnonzero(a != b)[0])
            return OracleComparison(
                name, False,
                f"{column}[{i}]: {b[i]!r} != reference {a[i]!r}")
    if reference.extent != candidate.extent:
        return OracleComparison(
            name, False,
            f"extent: {candidate.extent} != reference {reference.extent}")
    return OracleComparison(
        name, True,
        f"{reference.n_transfers} transfers + {len(reference.clients)} "
        f"clients bit-identical after decode")


def _compare_entry_streams(name: str, text_log: Path,
                           binary_path: Path) -> OracleComparison:
    """Re-format the binary entry stream and compare to the text log.

    Every entry of every binary segment, walked in file order and pushed
    through the text formatter with the binary file's own client
    identities, must reproduce the text log's data lines byte for byte.
    This pins the quantization contract (truncated timestamps, half-even
    rounding, 4-decimal ratios) to the text format itself rather than to
    whatever both decoders happen to agree on.
    """
    with open(text_log, "r", encoding="ascii") as stream:
        text_lines = [line.rstrip("\n") for line in stream
                      if not line.startswith("#")]
    formatted: list[str] = []
    with BinaryTraceReader(binary_path) as reader:
        identity = reader.identity_lookup()
        for quantized in reader.iter_quantized():
            rows = int(quantized["timestamp"].shape[0])
            formatted.extend(
                format_quantized_entry(quantized, row, identity)
                for row in range(rows))
    if len(formatted) != len(text_lines):
        return OracleComparison(
            name, False,
            f"entry count {len(formatted)} != text data lines "
            f"{len(text_lines)}")
    for i, (got, want) in enumerate(zip(formatted, text_lines,
                                        strict=True)):
        if got != want:
            return OracleComparison(
                name, False,
                f"entry {i}: formatted {got!r} != text line {want!r}")
    return OracleComparison(
        name, True,
        f"{len(formatted)} binary entries re-format to the exact text "
        f"data lines")


def run_differential_oracle(
        spec: WorkloadSpec, workdir: str | Path, *,
        shard_configs: tuple[tuple[int, int], ...] = DEFAULT_SHARD_CONFIGS,
        chunk_sizes: tuple[int, ...] = DEFAULT_CHUNK_SIZES,
        resume_split: bool = True,
        binary_codec: bool = True,
        reference: GismoWorkload | None = None,
        scenario: str | None = None) -> OracleReport:
    """Run the full differential matrix for one canonical workload.

    Parameters
    ----------
    spec:
        The canonical workload.
    workdir:
        Scratch directory for log files and checkpoints.
    shard_configs:
        ``(shards, jobs)`` pairs for the parallel engine.
    chunk_sizes:
        Streaming batch sizes; the smallest must split at least one
        canonical block into sibling batches (verified), or intra-block
        horizon handling would go untested.
    resume_split:
        Also run the streaming pipeline with a mid-run checkpoint
        abandon/resume and compare the stitched artifacts.
    binary_codec:
        Also run the streaming pipeline with the columnar binary codec
        and prove decode bit-identity, entry-stream byte identity
        against the text log, and binary kill/resume byte identity.
    reference:
        Reuse an already generated batch workload.
    scenario:
        Optional scenario spec applied to *every* leg of the matrix —
        the scenario determinism contract says the perturbed workload
        must stay bit-identical across engines too.
    """
    workdir = Path(workdir)
    model = spec.model()
    comparisons: list[OracleComparison] = []

    if reference is None:
        reference = LiveWorkloadGenerator(model).generate(
            spec.days, seed=spec.seed, scenario=scenario)
    ref_log = workdir / "reference.log"
    write_wms_log(reference.trace, ref_log)
    ref_sessions = sessionize(reference.trace).session_columns()

    for shards, jobs in shard_configs:
        candidate = generate_sharded(model, spec.days, seed=spec.seed,
                                     shards=shards, jobs=jobs,
                                     scenario=scenario)
        comparisons.append(_compare_trace(
            f"parallel[shards={shards},jobs={jobs}].trace",
            reference, candidate))

    min_chunk = min(chunk_sizes)
    probe = GenerationStream(model, spec.days, seed=spec.seed,
                             chunk_size=min_chunk, scenario=scenario)
    splits = max(len(step) for step in probe.block_steps())
    comparisons.append(OracleComparison(
        f"stream[chunk={min_chunk}].splits-blocks", splits > 1,
        f"largest block emitted {splits} sibling batches "
        f"(need >1 to exercise intra-block horizons)"))

    for chunk in chunk_sizes:
        log_path = workdir / f"stream_chunk{chunk}.log"
        result = run_streaming_generation(
            model, spec.days, seed=spec.seed, log_path=log_path,
            chunk_size=chunk, scenario=scenario)
        comparisons.append(_compare_files(
            f"stream[chunk={chunk}].log", ref_log, log_path))
        comparisons.append(_compare_sessions(
            f"stream[chunk={chunk}].sessions", ref_sessions,
            (result.sessions.client_index, result.sessions.start,
             result.sessions.end, result.sessions.n_transfers)))

    if resume_split:
        chunk = min_chunk
        split = max(1, int(probe.n_blocks * RESUME_SPLIT_FRACTION))
        log_path = workdir / "stream_resume.log"
        ck_path = workdir / "stream_resume.ck.npz"
        first = run_streaming_generation(
            model, spec.days, seed=spec.seed, log_path=log_path,
            chunk_size=chunk, checkpoint_path=ck_path, resume=True,
            max_blocks=split, scenario=scenario)
        comparisons.append(OracleComparison(
            f"stream[resume@{split}].interrupted", not first.completed,
            f"first leg stopped after {first.blocks_run} of "
            f"{probe.n_blocks} blocks"))
        second = run_streaming_generation(
            model, spec.days, seed=spec.seed, log_path=log_path,
            chunk_size=chunk, checkpoint_path=ck_path, resume=True,
            scenario=scenario)
        comparisons.append(OracleComparison(
            f"stream[resume@{split}].completed", second.completed,
            "resumed leg ran to the end of the window"))
        comparisons.append(_compare_files(
            f"stream[resume@{split}].log", ref_log, log_path))
        comparisons.append(_compare_sessions(
            f"stream[resume@{split}].sessions", ref_sessions,
            (second.sessions.client_index, second.sessions.start,
             second.sessions.end, second.sessions.n_transfers)))

    if binary_codec:
        chunk = min_chunk
        bin_path = workdir / f"binary_chunk{chunk}.rtb"
        bin_result = run_streaming_generation(
            model, spec.days, seed=spec.seed, log_path=bin_path,
            chunk_size=chunk, codec="binary", scenario=scenario)
        comparisons.append(_compare_sessions(
            f"binary[chunk={chunk}].sessions", ref_sessions,
            (bin_result.sessions.client_index, bin_result.sessions.start,
             bin_result.sessions.end, bin_result.sessions.n_transfers)))
        comparisons.append(_compare_decoded(
            f"binary[chunk={chunk}].decode",
            read_wms_log(ref_log), read_binary_trace(bin_path)))
        comparisons.append(_compare_entry_streams(
            f"binary[chunk={chunk}].entry-stream", ref_log, bin_path))

        if resume_split:
            split = max(1, int(probe.n_blocks * RESUME_SPLIT_FRACTION))
            resume_path = workdir / "binary_resume.rtb"
            ck_path = workdir / "binary_resume.ck.npz"
            first = run_streaming_generation(
                model, spec.days, seed=spec.seed, log_path=resume_path,
                chunk_size=chunk, codec="binary", checkpoint_path=ck_path,
                resume=True, max_blocks=split, scenario=scenario)
            comparisons.append(OracleComparison(
                f"binary[resume@{split}].interrupted", not first.completed,
                f"first leg stopped after {first.blocks_run} of "
                f"{probe.n_blocks} blocks"))
            run_streaming_generation(
                model, spec.days, seed=spec.seed, log_path=resume_path,
                chunk_size=chunk, codec="binary", checkpoint_path=ck_path,
                resume=True, scenario=scenario)
            comparisons.append(_compare_files(
                f"binary[resume@{split}].file", bin_path, resume_path))

    return OracleReport(workload=spec.name, comparisons=tuple(comparisons))
